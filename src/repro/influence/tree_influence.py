"""Influence of training points on gradient boosted trees
[Sharchilev et al. 2018, "Finding Influential Training Samples for
Gradient Boosted Decision Trees"].

Influence functions need a twice-differentiable parametric loss, which
GBDTs lack. Sharchilev et al.'s key move: *fix the learned tree
structures* and treat only the leaf values as parameters. With our
Newton-style leaves v_l = Σ_{i∈l} g_i / (Σ_{i∈l} h_i + λ), removing
training point j changes the leaf it falls into at every stage:

    v_l^{−j} = (Σ g − g_j) / (Σ h − h_j + λ),

and the prediction change at x is the sum over stages of
lr · (v^{−j} − v) for the stages where x and j share a leaf.

This reproduces the paper's *FastLeafInfluence* approximation: the
per-stage gradients g, h are kept at their original trajectory (the full
LeafInfluence propagates the change through later stages; DESIGN.md
records the simplification). Stage-wise (g, h) are recovered by replaying
the boosting on the stored training data.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import DataAttribution
from ..models.boosting import GradientBoostingClassifier
from ..models.logistic import sigmoid

__all__ = ["LeafInfluence"]


class LeafInfluence:
    """FastLeafInfluence for :class:`GradientBoostingClassifier`."""

    def __init__(
        self,
        model: GradientBoostingClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
    ) -> None:
        if model.subsample < 1.0:
            raise ValueError(
                "LeafInfluence requires subsample=1.0 (every stage must "
                "have seen every training point)"
            )
        self.model = model
        self.X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
        self.y_train = np.asarray(y_train).ravel()
        self._replay()

    def _replay(self) -> None:
        """Recompute per-stage (g, h) and leaf assignments on the train set."""
        t = np.zeros(self.y_train.shape[0])
        t[self.y_train == self.model.classes_[1]] = 1.0
        raw = np.full(t.shape[0], self.model.init_raw_)
        self._stage_g: list[np.ndarray] = []
        self._stage_h: list[np.ndarray] = []
        self._stage_leaves: list[np.ndarray] = []
        self._stage_sums: list[dict[int, tuple[float, float]]] = []
        for tree in self.model.estimators_:
            p = sigmoid(raw)
            g = t - p
            h = np.maximum(p * (1.0 - p), 1e-12)
            leaves = tree.tree_.apply(self.X_train)
            sums: dict[int, tuple[float, float]] = {}
            for leaf in np.unique(leaves):
                mask = leaves == leaf
                sums[int(leaf)] = (float(g[mask].sum()), float(h[mask].sum()))
            self._stage_g.append(g)
            self._stage_h.append(h)
            self._stage_leaves.append(leaves)
            self._stage_sums.append(sums)
            raw += self.model.learning_rate * tree.predict(self.X_train)

    def prediction_influence(self, x: np.ndarray) -> DataAttribution:
        """Effect of removing each training point on the raw score at x.

        ``values[j]`` estimates score(model retrained without j) −
        score(model), with structures fixed.
        """
        x = np.asarray(x, dtype=float).ravel()
        lam = self.model.leaf_l2
        lr = self.model.learning_rate
        values = np.zeros(self.X_train.shape[0])
        for stage, tree in enumerate(self.model.estimators_):
            x_leaf = int(tree.tree_.apply(x[None, :])[0])
            sum_g, sum_h = self._stage_sums[stage][x_leaf]
            current = sum_g / (sum_h + lam)
            shared = self._stage_leaves[stage] == x_leaf
            g = self._stage_g[stage][shared]
            h = self._stage_h[stage][shared]
            denom = sum_h - h + lam
            new_value = np.where(denom > 1e-12, (sum_g - g) / denom, 0.0)
            values[shared] += lr * (new_value - current)
        return DataAttribution(
            values=values,
            method="leaf_influence",
            meta={"n_stages": len(self.model.estimators_)},
        )

    def loss_influence(self, X_test: np.ndarray, y_test: np.ndarray
                       ) -> DataAttribution:
        """Effect of removing each point on total test log-loss.

        First-order in the raw score: d loss/d raw = (p − y), accumulated
        over test points.
        """
        X_test = np.atleast_2d(np.asarray(X_test, dtype=float))
        y_test = np.asarray(y_test).ravel()
        t = np.zeros(y_test.shape[0])
        t[y_test == self.model.classes_[1]] = 1.0
        p = sigmoid(self.model.decision_function(X_test))
        dldraw = p - t
        values = np.zeros(self.X_train.shape[0])
        for row, x in enumerate(X_test):
            values += dldraw[row] * self.prediction_influence(x).values
        return DataAttribution(values=values, method="leaf_influence_loss")
