"""Influence functions for parametric models [Koh & Liang 2017].

For a model with parameters θ̂ minimizing a twice-differentiable training
objective L(θ) = Σ_i ℓ(z_i; θ) + R(θ), the effect of removing training
point z is approximated without retraining via the implicit-function
theorem:

    θ̂_{−z} − θ̂  ≈  H⁻¹ ∇_θ ℓ(z; θ̂),          H = ∇²_θ L(θ̂),

and the influence of z on the loss at a test point z_t is

    I(z, z_t) = ∇_θ ℓ(z_t; θ̂)ᵀ H⁻¹ ∇_θ ℓ(z; θ̂)
              ≈ ℓ(z_t; θ̂_{−z}) − ℓ(z_t; θ̂)

(positive I: removing z would *raise* the test loss, i.e. z is helpful;
negative I flags harmful points). Works with any
:class:`repro.models.base.DifferentiableModel`.
The linear system is solved directly (our parameter counts are small) or
by conjugate gradients, the paper's scalable variant.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import LinearOperator, cg

from ..core.explanation import DataAttribution
from ..models.base import DifferentiableModel

__all__ = ["InfluenceFunctions"]


class InfluenceFunctions:
    """Influence computations against a fitted differentiable model.

    Parameters
    ----------
    model:
        Fitted model exposing ``grad``/``hessian``/``params``.
    X_train, y_train:
        The training set the model was fitted on (defines H).
    damping:
        Ridge term added to H; keeps near-singular Hessians invertible
        (Koh & Liang's damping trick).
    solver:
        ``"direct"`` (dense solve) or ``"cg"`` (conjugate gradients).
    """

    def __init__(
        self,
        model: DifferentiableModel,
        X_train: np.ndarray,
        y_train: np.ndarray,
        damping: float = 0.0,
        solver: str = "direct",
    ) -> None:
        if solver not in ("direct", "cg"):
            raise ValueError(f"unknown solver {solver!r}")
        self.model = model
        self.X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
        self.y_train = np.asarray(y_train).ravel()
        self.solver = solver
        self._H = model.hessian(self.X_train, self.y_train)
        if damping > 0:
            self._H = self._H + damping * np.eye(self._H.shape[0])
        self._train_grads = model.grad(self.X_train, self.y_train)

    def inverse_hvp(self, v: np.ndarray) -> np.ndarray:
        """Solve H s = v."""
        v = np.asarray(v, dtype=float).ravel()
        if self.solver == "direct":
            return np.linalg.solve(self._H, v)
        op = LinearOperator(self._H.shape, matvec=lambda u: self._H @ u)
        solution, info = cg(op, v, rtol=1e-10, atol=0.0, maxiter=1000)
        if info != 0:
            raise RuntimeError(f"CG failed to converge (info={info})")
        return solution

    def parameter_influence(self, train_index: int) -> np.ndarray:
        """Estimated parameter change from removing one training point."""
        return self.inverse_hvp(self._train_grads[train_index])

    def influence_on_loss(
        self, X_test: np.ndarray, y_test: np.ndarray
    ) -> DataAttribution:
        """Influence of every training point on total test loss.

        ``values[i]`` estimates loss(retrained without i) − loss(full):
        positive means point i was *helping* (its removal hurts), negative
        flags harmful/mislabeled points — the ranking used for debugging.
        """
        test_grad = self.model.grad(
            np.atleast_2d(X_test), np.asarray(y_test).ravel()
        ).sum(axis=0)
        s = self.inverse_hvp(test_grad)
        return DataAttribution(
            values=self._train_grads @ s,
            method="influence_function",
            meta={"solver": self.solver},
        )

    def influence_on_prediction(
        self, x: np.ndarray, prediction_grad: np.ndarray | None = None
    ) -> DataAttribution:
        """Influence of every training point on the raw score at ``x``.

        For models with a linear decision function the score gradient is
        [x, 1]; pass ``prediction_grad`` explicitly for anything else.
        ``values[i]`` estimates the score *decrease* from removing i.
        """
        x = np.asarray(x, dtype=float).ravel()
        if prediction_grad is None:
            prediction_grad = np.append(x, 1.0)
        s = self.inverse_hvp(prediction_grad)
        return DataAttribution(
            values=self._train_grads @ s,
            method="influence_function_prediction",
        )

    def actual_retrain_deltas(
        self,
        model_factory,
        X_test: np.ndarray,
        y_test: np.ndarray,
        indices: np.ndarray,
        loss_fn,
    ) -> np.ndarray:
        """Ground truth for E8: true loss change from removing each point.

        Retrains with ``model_factory`` for each index in ``indices`` and
        returns loss(without i) − loss(full), matching the sign convention
        of :meth:`influence_on_loss`.
        """
        X_test = np.atleast_2d(X_test)
        full_model = model_factory().fit(self.X_train, self.y_train)
        full_loss = loss_fn(full_model, X_test, y_test)
        deltas = np.zeros(len(indices))
        everything = np.arange(self.X_train.shape[0])
        for row, i in enumerate(indices):
            keep = np.delete(everything, i)
            retrained = model_factory().fit(self.X_train[keep], self.y_train[keep])
            deltas[row] = loss_fn(retrained, X_test, y_test) - full_loss
        return deltas
