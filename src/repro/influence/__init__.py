"""Influence-based training-data explanations (§2.3.2)."""

from .group import GroupInfluence
from .influence_functions import InfluenceFunctions
from .tree_influence import LeafInfluence

__all__ = ["InfluenceFunctions", "GroupInfluence", "LeafInfluence"]
