"""The serialization protocol: type-tag envelopes over a class registry.

Modeled on BayBE's serialization engine: every participating class is
*unstructured* into JSON basic types and reassembled afterward as an
**equivalent copy** — an object that behaves identically to the
original while ephemeral state (caches, spans, locks, open scopes) is
deliberately dropped and lazily rebuilt on first use.

A class joins the protocol with the decorator::

    @register_serializable("models.LogisticRegression")
    class LogisticRegression(...):
        def to_dict(self) -> dict: ...          # payload of basic types
        @classmethod
        def from_dict(cls, payload) -> "...": ...

and its instances then round-trip through the **envelope**::

    {"_type": "models.LogisticRegression", "_version": 1, "state": {...}}

``to_envelope``/``from_envelope`` (and the string/file conveniences
``dumps``/``loads``/``save``/``load``) recurse through
:mod:`repro.persist.codec`, so payloads may nest arrays, plain
containers and other registered objects freely. Unknown ``_type`` tags
raise :class:`~repro.persist.errors.UnknownTypeError`; a ``_version``
newer than the running code raises
:class:`~repro.persist.errors.UnsupportedVersionError`; older versions
pass through the class's optional ``migrate(payload, version)`` hook.

The registry also powers ``scripts/check_serializable.py``: every
registered class must define (or inherit) *both* halves of the pair —
a one-sided implementation is a latent deserialization outage.
"""

from __future__ import annotations

import json
import os
import threading

from .errors import PayloadError, PersistError, UnknownTypeError, \
    UnsupportedVersionError

__all__ = [
    "Serializable",
    "register_serializable",
    "registered_types",
    "registered_class",
    "is_registered_instance",
    "is_envelope",
    "to_envelope",
    "from_envelope",
    "dumps",
    "loads",
    "save",
    "load",
]

_TYPE_KEY = "_type"
_VERSION_KEY = "_version"
_STATE_KEY = "state"

_LOCK = threading.Lock()
_REGISTRY: dict[str, type] = {}


def register_serializable(tag: str, version: int = 1):
    """Class decorator: join the persistence protocol under ``tag``.

    ``tag`` is the stable wire name (it outlives module refactors —
    renaming the class must not orphan artifacts on disk); ``version``
    stamps every envelope the class writes. The decorated class must
    provide ``to_dict``/``from_dict`` (own or inherited); registration
    fails fast otherwise so a half-registered class cannot ship.
    """

    def decorate(cls: type) -> type:
        for method in ("to_dict", "from_dict"):
            if not callable(getattr(cls, method, None)):
                raise TypeError(
                    f"@register_serializable({tag!r}): {cls.__name__} "
                    f"must define or inherit {method}()"
                )
        with _LOCK:
            existing = _REGISTRY.get(tag)
            if existing is not None and existing is not cls:
                raise ValueError(
                    f"serialization tag {tag!r} already registered by "
                    f"{existing.__name__}"
                )
            _REGISTRY[tag] = cls
        cls.__persist_tag__ = tag
        cls.__persist_version__ = int(version)
        return cls

    return decorate


class Serializable:
    """Attribute-table ``to_dict``/``from_dict`` for the common shape.

    Most participating classes split cleanly into *constructor
    arguments* (hyperparameters, listed in ``__persist_init__``) and
    *optional post-construction state* (fitted attributes, listed in
    ``__persist_state__`` and captured only when present — an unfitted
    model round-trips unfitted). Reassembly calls
    ``cls(**init_args)`` and then sets the captured state back, which
    is exactly the equivalent-copy contract: anything not in either
    table (caches, spans, locks) is dropped and lazily rebuilt.

    Classes whose state does not fit the two-table shape (e.g.
    :class:`repro.models.tree.TreeStructure`'s parallel arrays) define
    their own pair instead of mixing this in.
    """

    __persist_init__: tuple = ()
    __persist_state__: tuple = ()

    def to_dict(self) -> dict:
        payload = {name: getattr(self, name) for name in self.__persist_init__}
        fitted = {
            name: getattr(self, name)
            for name in self.__persist_state__
            if hasattr(self, name)
        }
        if fitted:
            payload["fitted"] = fitted
        return payload

    @classmethod
    def from_dict(cls, payload: dict):
        payload = dict(payload)
        fitted = payload.pop("fitted", {})
        obj = cls(**payload)
        for name, value in fitted.items():
            setattr(obj, name, value)
        return obj


def registered_types() -> dict[str, type]:
    """Snapshot of the tag → class registry."""
    with _LOCK:
        return dict(_REGISTRY)


def registered_class(tag: str) -> type:
    with _LOCK:
        cls = _REGISTRY.get(tag)
    if cls is None:
        raise UnknownTypeError(
            f"no serializable class registered under {tag!r}; "
            "is its defining module imported?"
        )
    return cls


def is_registered_instance(obj) -> bool:
    """Whether ``obj``'s class joined the protocol (tag on its own MRO)."""
    return getattr(type(obj), "__persist_tag__", None) is not None


def is_envelope(value) -> bool:
    return (
        isinstance(value, dict)
        and isinstance(value.get(_TYPE_KEY), str)
        and _VERSION_KEY in value
    )


def to_envelope(obj, mode: str = "b64") -> dict:
    """Unstructure one registered object into its tagged envelope."""
    cls = type(obj)
    tag = getattr(cls, "__persist_tag__", None)
    if tag is None:
        raise PayloadError(
            f"{cls.__name__} is not registered with @register_serializable"
        )
    from .codec import encode_value

    payload = obj.to_dict()
    if not isinstance(payload, dict):
        raise PayloadError(
            f"{cls.__name__}.to_dict() must return a dict, "
            f"got {type(payload).__name__}"
        )
    return {
        _TYPE_KEY: tag,
        _VERSION_KEY: int(cls.__persist_version__),
        _STATE_KEY: encode_value(payload, mode=mode),
    }


def from_envelope(envelope: dict):
    """Reassemble the equivalent copy an envelope describes."""
    if not is_envelope(envelope):
        raise PayloadError(
            "not a persist envelope (missing _type/_version keys)"
        )
    cls = registered_class(envelope[_TYPE_KEY])
    try:
        version = int(envelope[_VERSION_KEY])
    except (TypeError, ValueError):
        raise PayloadError(
            f"envelope _version must be an integer, "
            f"got {envelope[_VERSION_KEY]!r}"
        ) from None
    current = int(cls.__persist_version__)
    if version > current:
        raise UnsupportedVersionError(
            f"{envelope[_TYPE_KEY]} envelope is version {version}, but this "
            f"build reads up to version {current}"
        )
    from .codec import decode_value

    payload = decode_value(envelope.get(_STATE_KEY, {}))
    if version < current:
        migrate = getattr(cls, "migrate", None)
        if migrate is None:
            raise UnsupportedVersionError(
                f"{envelope[_TYPE_KEY]} version {version} predates "
                f"version {current} and the class has no migrate() hook"
            )
        payload = migrate(payload, version)
    return cls.from_dict(payload)


# -- string / file conveniences ----------------------------------------------


def dumps(obj, mode: str = "b64", indent: int | None = None) -> str:
    """Canonical JSON text for any encodable value (envelopes included).

    Top-level registered objects become envelopes; bare containers and
    arrays encode directly. ``sort_keys`` keeps the byte stream stable,
    which is what the registry's content addressing hashes.
    """
    from .codec import encode_value

    return json.dumps(encode_value(obj, mode=mode), sort_keys=True,
                      indent=indent)


def loads(text: str):
    from .codec import decode_value

    try:
        raw = json.loads(text)
    except ValueError as e:
        raise PayloadError(f"not valid JSON: {e}") from e
    return decode_value(raw)


def save(obj, path: str, mode: str = "b64", indent: int | None = 2) -> str:
    """Serialize ``obj`` to ``path`` atomically; returns the path."""
    from ..obs.bench import atomic_write_text

    atomic_write_text(path, dumps(obj, mode=mode, indent=indent) + "\n")
    return path


def load(path: str):
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as e:
        raise PersistError(f"cannot read artifact file {path!r}: {e}") from e
    if not os.path.basename(path):
        raise PersistError(f"not a file path: {path!r}")
    return loads(text)
