"""Coalition-cache snapshots: persist packed-bit value caches, pre-warm runs.

A :class:`repro.core.coalition_engine.CoalitionValueCache` memoizes
``v(S)`` per ``(instance, value function)`` pair. Re-runs of the same
explanation (and fresh worker processes under the ``process``/``spawn``
backends) historically rebuilt it from zero every time; a snapshot lets
them start warm instead.

Correctness hinges on the **scope token**: cached values are only valid
for the exact instance × background (× model) that produced them, so
every snapshot carries ``scope_token(x, background)`` — a sha256 over
the canonical bytes of both arrays — and pre-warming silently no-ops on
a mismatch rather than poisoning the cache with a different instance's
values. A snapshot saved with ``scope=None`` is an explicit wildcard
(caller asserts validity; the bench harness uses it only with one fixed
workload).

``REPRO_CACHE_SNAPSHOT=<path>`` points the engine at a snapshot file;
:meth:`CoalitionEngine.value_function` calls :func:`maybe_prewarm` on
each fresh cache. Hits land on the ``persist.cache.prewarmed`` counter.
"""

from __future__ import annotations

import base64
import hashlib
import os

import numpy as np

from ..obs import metrics
from .errors import PayloadError, PersistError

__all__ = [
    "scope_token",
    "snapshot_cache",
    "restore_cache",
    "save_cache_snapshot",
    "load_cache_snapshot",
    "prewarm_cache",
    "resolve_snapshot_path",
    "maybe_prewarm",
]

_PREWARMED = "persist.cache.prewarmed"
_SKIPPED = "persist.cache.snapshot_scope_skips"


def scope_token(x, background) -> str:
    """Identity of the ``(instance, background)`` pair a cache belongs to."""
    h = hashlib.sha256()
    for arr in (x, background):
        a = np.ascontiguousarray(np.asarray(arr, dtype=float))
        h.update(str(a.shape).encode("ascii"))
        h.update(a.tobytes())
    return h.hexdigest()[:32]


def snapshot_cache(cache, scope: str | None) -> dict:
    """Snapshot one cache's entries as a JSON-safe payload.

    Keys (packed-bit mask bytes) go to base64; values stay Python
    floats — JSON's repr round-trip keeps them bitwise for float64.
    Hit/miss counters are ephemeral and deliberately not captured.
    """
    entries = {
        base64.b64encode(key).decode("ascii"): float(value)
        for key, value in cache.values.items()
    }
    return {"scope": scope, "n_entries": len(entries), "entries": entries}


def restore_cache(cache, payload: dict) -> int:
    """Merge snapshot entries into ``cache``; returns entries added."""
    try:
        entries = payload["entries"]
    except (TypeError, KeyError) as e:
        raise PayloadError(f"malformed cache snapshot: {e}") from e
    added = 0
    for key_b64, value in entries.items():
        try:
            key = base64.b64decode(key_b64.encode("ascii"))
        except (ValueError, AttributeError) as e:
            raise PayloadError(
                f"malformed cache snapshot key {key_b64!r}: {e}"
            ) from e
        if key not in cache.values:
            cache.values[key] = float(value)
            added += 1
    return added


def save_cache_snapshot(path: str, cache, scope: str | None) -> str:
    from .protocol import dumps
    from ..obs.bench import atomic_write_text

    atomic_write_text(path, dumps(snapshot_cache(cache, scope), indent=2)
                      + "\n")
    return path


def load_cache_snapshot(path: str) -> dict:
    from .protocol import loads

    try:
        with open(path, encoding="utf-8") as fh:
            payload = loads(fh.read())
    except OSError as e:
        raise PersistError(f"cannot read cache snapshot {path!r}: {e}") from e
    if not isinstance(payload, dict) or "entries" not in payload:
        raise PayloadError(f"{path!r} is not a cache snapshot")
    return payload


def prewarm_cache(cache, payload: dict, scope: str | None) -> int:
    """Apply a snapshot to a fresh cache iff the scope matches.

    Returns entries added (0 on scope mismatch — a mismatch is a
    no-op by design, never an error: the env var may point at a
    snapshot for a different workload).
    """
    snap_scope = payload.get("scope")
    if snap_scope is not None and scope is not None and snap_scope != scope:
        metrics.counter(_SKIPPED).inc()
        return 0
    added = restore_cache(cache, payload)
    if added:
        metrics.counter(_PREWARMED).inc(added)
    return added


def resolve_snapshot_path() -> str | None:
    """The ``REPRO_CACHE_SNAPSHOT`` target, if set and existing."""
    path = os.environ.get("REPRO_CACHE_SNAPSHOT", "").strip()
    if not path:
        return None
    return path if os.path.exists(path) else None


def maybe_prewarm(cache, scope: str | None) -> int:
    """Env-driven pre-warm hook for freshly created caches."""
    path = resolve_snapshot_path()
    if path is None or cache is None:
        return 0
    try:
        payload = load_cache_snapshot(path)
    except PersistError:
        return 0  # a broken snapshot must never fail the explanation
    return prewarm_cache(cache, payload, scope)
