"""Canonical JSON encoding for numpy values.

The persistence protocol reduces every payload to JSON basic types; this
module owns the one non-trivial case — numpy arrays — plus the recursive
``encode_value`` / ``decode_value`` pair the envelope layer applies to
whole payloads.

Arrays encode as a tagged object::

    {"__ndarray__": true, "dtype": "<f8", "shape": [3, 2],
     "data_b64": "..."}            # default: base64 of canonical bytes
    {"__ndarray__": true, "dtype": "<f8", "shape": [4],
     "data": [0.1, ...]}           # mode="list": human-readable goldens

Both modes round-trip **bitwise** for float64: the base64 form stores
the raw little-endian bytes, and the list form relies on CPython's
``repr`` float round-trip guarantee (``float(repr(x)) == x``), which
``json`` inherits. The stored dtype is always the little-endian
canonical spelling, and decoding always lands on the platform's native
byte order — a big-endian array round-trips to an equal, natively
usable array rather than resurrecting its original endianness.

Scalars of numpy types (``np.float64(…)``, ``np.int64(…)``, ``np.bool_``)
are demoted to plain Python scalars — exact for float64, int and bool.
"""

from __future__ import annotations

import base64

import numpy as np

from .errors import PayloadError

__all__ = ["encode_array", "decode_array", "encode_value", "decode_value",
           "is_encoded_array"]

_ARRAY_TAG = "__ndarray__"


def _canonical_dtype(dtype: np.dtype) -> np.dtype:
    """The little-endian (or order-free) spelling persisted to disk."""
    return dtype.newbyteorder("<") if dtype.byteorder == ">" else dtype


def encode_array(arr: np.ndarray, mode: str = "b64") -> dict:
    """One array as a JSON-safe tagged object (see module docstring)."""
    arr = np.asarray(arr)
    if arr.dtype == object:
        raise PayloadError("object-dtype arrays are not serializable")
    if mode not in ("b64", "list"):
        raise PayloadError(f"array mode must be b64|list, got {mode!r}")
    canonical = np.ascontiguousarray(arr.astype(_canonical_dtype(arr.dtype),
                                                copy=False))
    out = {
        _ARRAY_TAG: True,
        "dtype": canonical.dtype.str,
        "shape": list(arr.shape),
    }
    if mode == "b64":
        out["data_b64"] = base64.b64encode(canonical.tobytes()).decode("ascii")
    else:
        out["data"] = canonical.tolist()
    return out


def is_encoded_array(value) -> bool:
    return isinstance(value, dict) and value.get(_ARRAY_TAG) is True


def decode_array(payload: dict) -> np.ndarray:
    """Invert :func:`encode_array`; always native byte order out."""
    try:
        dtype = np.dtype(payload["dtype"])
        shape = tuple(int(s) for s in payload["shape"])
    except (KeyError, TypeError, ValueError) as e:
        raise PayloadError(f"malformed array payload: {e}") from e
    if "data_b64" in payload:
        try:
            raw = base64.b64decode(payload["data_b64"].encode("ascii"))
            arr = np.frombuffer(raw, dtype=dtype).reshape(shape)
        except (ValueError, TypeError) as e:
            raise PayloadError(f"malformed array bytes: {e}") from e
    elif "data" in payload:
        arr = np.asarray(payload["data"], dtype=dtype).reshape(shape)
    else:
        raise PayloadError("array payload carries neither data_b64 nor data")
    native = dtype.newbyteorder("=")
    # frombuffer views are read-only; copy to a mutable native array.
    return np.ascontiguousarray(arr.astype(native, copy=True))


def encode_value(value, mode: str = "b64"):
    """Recursively reduce a payload value to JSON basic types.

    Handles dicts (string keys only), lists/tuples (both land as JSON
    arrays), numpy arrays and scalars, plain scalars and ``None``.
    Registered serializable objects are the envelope layer's business —
    it intercepts them *before* delegating here.
    """
    # Deferred import: protocol imports this module.
    from .protocol import is_registered_instance, to_envelope

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return encode_array(value, mode=mode)
    if is_registered_instance(value):
        return to_envelope(value, mode=mode)
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise PayloadError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            out[key] = encode_value(item, mode=mode)
        return out
    if isinstance(value, (list, tuple)):
        return [encode_value(item, mode=mode) for item in value]
    raise PayloadError(
        f"{type(value).__name__} is not serializable; register it with "
        "@register_serializable or reduce it to basic types"
    )


def decode_value(value):
    """Invert :func:`encode_value` (envelopes revive via the registry)."""
    from .protocol import from_envelope, is_envelope

    if isinstance(value, dict):
        if is_encoded_array(value):
            return decode_array(value)
        if is_envelope(value):
            return from_envelope(value)
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value
