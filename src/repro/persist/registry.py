"""Versioned, content-addressed artifact registry on the filesystem.

Layout under the registry root (``REPRO_REGISTRY_DIR``, default
``.repro_registry/``)::

    objects/<sha256>.json     # canonical envelope JSON, content-addressed
    manifest.json             # {"artifacts": {name: {"versions":
                              #   {version: {"digest", "pushed_at", "note"}},
                              #   "latest": version}}}
    .lock                     # advisory lockfile for manifest updates

Properties the serve layer and tests lean on:

* **Content addressing** — an object file's name is the sha256 of its
  canonical JSON (sorted keys, no indent), so identical artifacts
  dedupe and a digest fully identifies content.
* **Immutable versions** — re-pushing a ``(name, version)`` with the
  same digest is an idempotent no-op; pushing different content under
  an existing version raises
  :class:`~repro.persist.errors.ArtifactConflictError`. Serve caches
  key on ``(name, version)``; silently swapping bytes under that key
  would poison them without any signal.
* **Atomic, crash-safe writes** — objects and manifest go through
  :func:`repro.obs.bench.atomic_write_text` (same-dir temp +
  ``os.replace``); cross-process manifest updates serialize on an
  ``O_CREAT | O_EXCL`` lockfile, so concurrent pushers interleave
  cleanly instead of tearing the index.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import threading
import time

from .errors import ArtifactConflictError, ArtifactNotFoundError, PersistError
from .protocol import dumps, loads

__all__ = [
    "DEFAULT_REGISTRY_DIR",
    "resolve_registry_dir",
    "ArtifactRegistry",
]

DEFAULT_REGISTRY_DIR = ".repro_registry"
_LOCK_TIMEOUT_S = 10.0
_LOCK_POLL_S = 0.005


def resolve_registry_dir(root: str | None = None) -> str:
    """Registry root: explicit arg > ``REPRO_REGISTRY_DIR`` > default."""
    if root:
        return root
    env = os.environ.get("REPRO_REGISTRY_DIR", "").strip()
    return env or DEFAULT_REGISTRY_DIR


class _FileLock:
    """Advisory cross-process lock via ``O_CREAT | O_EXCL`` lockfile.

    Stale locks (a pusher that died mid-update) are broken after the
    timeout rather than deadlocking every later writer forever.
    """

    def __init__(self, path: str, timeout_s: float = _LOCK_TIMEOUT_S) -> None:
        self.path = path
        self.timeout_s = timeout_s

    def __enter__(self) -> "_FileLock":
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                return self
            except OSError as e:
                if e.errno != errno.EEXIST:
                    raise PersistError(
                        f"cannot acquire registry lock {self.path!r}: {e}"
                    ) from e
                if time.monotonic() >= deadline:
                    try:  # break the (presumed stale) lock and take it
                        os.unlink(self.path)
                    except OSError:
                        pass
                    deadline = time.monotonic() + self.timeout_s
                time.sleep(_LOCK_POLL_S)

    def __exit__(self, *exc) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


class ArtifactRegistry:
    """Named + versioned artifacts over a content-addressed object store."""

    def __init__(self, root: str | None = None) -> None:
        self.root = os.path.abspath(resolve_registry_dir(root))
        self.objects_dir = os.path.join(self.root, "objects")
        self.manifest_path = os.path.join(self.root, "manifest.json")
        self._lock_path = os.path.join(self.root, ".lock")
        self._thread_lock = threading.Lock()

    # -- manifest ------------------------------------------------------------

    def _read_manifest(self) -> dict:
        try:
            with open(self.manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except OSError:
            return {"artifacts": {}}
        except ValueError as e:
            raise PersistError(
                f"registry manifest {self.manifest_path!r} is corrupt: {e}"
            ) from e
        if not isinstance(manifest, dict):
            raise PersistError(
                f"registry manifest {self.manifest_path!r} is not an object"
            )
        manifest.setdefault("artifacts", {})
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        from ..obs.bench import atomic_write_text

        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )

    # -- queries -------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._read_manifest()["artifacts"])

    def versions(self, name: str) -> list[str]:
        """Registered versions of ``name``, push order preserved."""
        entry = self._read_manifest()["artifacts"].get(name)
        return list(entry["versions"]) if entry else []

    def latest_version(self, name: str) -> str:
        entry = self._read_manifest()["artifacts"].get(name)
        if not entry or not entry.get("versions"):
            raise ArtifactNotFoundError(
                f"no artifact registered under {name!r}", name=name
            )
        return entry.get("latest") or next(reversed(entry["versions"]))

    def describe(self, name: str, version: str | None = None) -> dict:
        """Manifest record for one version (digest, pushed_at, note)."""
        entry = self._read_manifest()["artifacts"].get(name)
        if not entry or not entry.get("versions"):
            raise ArtifactNotFoundError(
                f"no artifact registered under {name!r}", name=name
            )
        versions = entry["versions"]
        version = version or entry.get("latest") or next(reversed(versions))
        record = versions.get(version)
        if record is None:
            raise ArtifactNotFoundError(
                f"artifact {name!r} has no version {version!r}; "
                f"available: {', '.join(versions)}",
                name=name,
                available=list(versions),
            )
        return {"name": name, "version": version, **record}

    # -- object store --------------------------------------------------------

    def _object_path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, f"{digest}.json")

    def _store_object(self, text: str) -> str:
        from ..obs.bench import atomic_write_text

        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        path = self._object_path(digest)
        if not os.path.exists(path):  # content-addressed: write-once
            atomic_write_text(path, text)
        return digest

    def load_digest(self, digest: str):
        path = self._object_path(digest)
        try:
            with open(path, encoding="utf-8") as fh:
                return loads(fh.read())
        except OSError as e:
            raise ArtifactNotFoundError(
                f"registry object {digest} is missing from {self.objects_dir}"
            ) from e

    # -- push / get ----------------------------------------------------------

    def push(self, name: str, obj, version: str | None = None,
             note: str = "") -> dict:
        """Register ``obj`` under ``name``; returns the manifest record.

        ``version=None`` auto-assigns the next integer version ("1",
        "2", …). Explicit versions are immutable (see class docstring).
        """
        if not name or "/" in name or name.startswith("."):
            raise PersistError(f"invalid artifact name {name!r}")
        text = dumps(obj, indent=None) + "\n"
        os.makedirs(self.objects_dir, exist_ok=True)
        with self._thread_lock, _FileLock(self._lock_path):
            digest = self._store_object(text)
            manifest = self._read_manifest()
            entry = manifest["artifacts"].setdefault(
                name, {"versions": {}, "latest": None}
            )
            versions = entry["versions"]
            if version is None:
                numeric = [int(v) for v in versions if v.isdigit()]
                version = str(max(numeric, default=0) + 1)
            existing = versions.get(version)
            if existing is not None:
                if existing["digest"] == digest:
                    return {"name": name, "version": version, **existing}
                raise ArtifactConflictError(
                    f"artifact {name!r} version {version!r} already exists "
                    f"with digest {existing['digest'][:12]}…; registry "
                    "versions are immutable — push a new version instead"
                )
            from ..obs.bench import utc_timestamp

            record = {
                "digest": digest,
                "pushed_at": utc_timestamp(),
                "note": note,
            }
            versions[version] = record
            entry["latest"] = version
            self._write_manifest(manifest)
        return {"name": name, "version": version, **record}

    def get(self, name: str, version: str | None = None):
        """Load the artifact object for ``(name, version)`` (latest if None)."""
        record = self.describe(name, version)
        return self.load_digest(record["digest"])
