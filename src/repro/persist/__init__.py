"""``repro.persist`` — dependency-free serialization + artifact registry.

Three layers (see DESIGN.md "Persistence & artifact registry"):

* :mod:`~repro.persist.protocol` / :mod:`~repro.persist.codec` — the
  ``@register_serializable`` type-tag envelope protocol with canonical
  (bitwise for float64) numpy encoding and equivalent-copy semantics;
* :mod:`~repro.persist.registry` — the content-addressed, versioned
  on-disk artifact store behind ``REPRO_REGISTRY_DIR`` that feeds the
  serve layer and the ``python -m repro registry`` CLI;
* :mod:`~repro.persist.snapshot` — coalition-cache snapshots
  (``REPRO_CACHE_SNAPSHOT``) for pre-warming repeat runs and workers.
"""

from .codec import decode_array, decode_value, encode_array, encode_value
from .errors import (
    ArtifactConflictError,
    ArtifactNotFoundError,
    PayloadError,
    PersistError,
    UnknownTypeError,
    UnsupportedVersionError,
)
from .protocol import (
    Serializable,
    dumps,
    from_envelope,
    is_envelope,
    is_registered_instance,
    load,
    loads,
    register_serializable,
    registered_class,
    registered_types,
    save,
    to_envelope,
)
from .registry import ArtifactRegistry, resolve_registry_dir
from .snapshot import (
    load_cache_snapshot,
    maybe_prewarm,
    prewarm_cache,
    restore_cache,
    save_cache_snapshot,
    scope_token,
    snapshot_cache,
)

__all__ = [
    "encode_array",
    "decode_array",
    "encode_value",
    "decode_value",
    "PersistError",
    "PayloadError",
    "UnknownTypeError",
    "UnsupportedVersionError",
    "ArtifactNotFoundError",
    "ArtifactConflictError",
    "Serializable",
    "register_serializable",
    "registered_types",
    "registered_class",
    "is_registered_instance",
    "is_envelope",
    "to_envelope",
    "from_envelope",
    "dumps",
    "loads",
    "save",
    "load",
    "ArtifactRegistry",
    "resolve_registry_dir",
    "scope_token",
    "snapshot_cache",
    "restore_cache",
    "save_cache_snapshot",
    "load_cache_snapshot",
    "prewarm_cache",
    "maybe_prewarm",
]
