"""Typed persistence errors, rooted at the :mod:`repro.robust` hierarchy.

Everything the (de)serialization engine and the artifact registry refuse
to do raises one of these — callers (tests, the serve layer, the CLI)
catch them by type, and the serve protocol maps them onto its status
table like any other :class:`~repro.robust.ReproError`.
"""

from __future__ import annotations

from ..robust.errors import ReproError

__all__ = [
    "PersistError",
    "PayloadError",
    "UnknownTypeError",
    "UnsupportedVersionError",
    "ArtifactNotFoundError",
    "ArtifactConflictError",
]


class PersistError(ReproError):
    """Base class for serialization/registry failures."""


class PayloadError(PersistError):
    """A payload is malformed or contains unserializable values."""


class UnknownTypeError(PersistError):
    """An envelope names a ``_type`` no registered class claims."""


class UnsupportedVersionError(PersistError):
    """An envelope's ``_version`` is newer than the registered class.

    Older versions migrate through the class's ``migrate`` hook when it
    has one; a *newer* version always refuses — this build cannot know
    fields from the future.
    """


class ArtifactNotFoundError(PersistError):
    """The registry holds no artifact under the requested name/version."""

    def __init__(self, message: str, name: str = "",
                 available: list[str] | None = None) -> None:
        super().__init__(message)
        self.name = name
        self.available = list(available or [])


class ArtifactConflictError(PersistError):
    """A push names an existing version with different content.

    Registry versions are immutable: re-pushing identical content is an
    idempotent no-op, but silently replacing a version's bytes would
    invalidate every cache keyed on it without any signal.
    """
