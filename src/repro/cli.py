"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package inventory: subpackages, experiment ids, example scripts.
``demo``
    A self-contained 10-second demo: trains a model on the loan data and
    prints three renderings (SHAP bars, an anchor rule, a counterfactual).
``experiments``
    List the benchmark experiments (E1…) with their claims.
``examples``
    List the runnable example scripts.
``trace``
    Run any other command with observability forced on; writes the span
    stream as JSONL and prints the per-explainer cost summary. The same
    effect is available on every command via the global ``--trace OUT``
    flag, e.g. ``python -m repro --trace demo.jsonl demo``. Exits
    nonzero (with a warning footer) if the run swallowed
    instrumentation failures (``obs.internal_errors``).
``metrics``
    Telemetry utilities: ``metrics serve`` starts the live exposition
    endpoint (``/metrics`` Prometheus text, ``/health``,
    ``/ledger/tail``) and blocks until interrupted.
``serve``
    The explanation service (``repro.serve``): hosts the demo loan
    model behind ``POST /explain`` with admission control, request
    coalescing, a warm cache, the degradation ladder, and per-model
    circuit breakers. Tunable via ``REPRO_SERVE_*`` env knobs.
``profile``
    Render a trace JSONL file as a phase-level wall/CPU profile, or as
    folded stacks (``--folded``) for flamegraph tooling.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

__all__ = ["main"]

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))


def _iter_benchmarks():
    bench_dir = os.path.join(_ROOT, "benchmarks")
    if not os.path.isdir(bench_dir):
        return
    for name in sorted(os.listdir(bench_dir)):
        match = re.match(r"bench_(e\d+)_(.+)\.py$", name)
        if not match:
            continue
        path = os.path.join(bench_dir, name)
        with open(path) as f:
            first = f.read().split('"""')
        claim = first[1].strip().splitlines()[0] if len(first) > 1 else ""
        yield match.group(1).upper(), match.group(2), claim


def cmd_info(args) -> int:
    import repro

    print(f"repro {repro.__version__} — from-scratch XAI toolkit")
    print("\nsubpackages:")
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        module = getattr(repro, name, None)
        doc = (module.__doc__ or "").strip().splitlines()
        print(f"  repro.{name:<15} {doc[0] if doc else ''}")
    benches = list(_iter_benchmarks())
    examples_dir = os.path.join(_ROOT, "examples")
    n_examples = len([
        f for f in os.listdir(examples_dir) if f.endswith(".py")
    ]) if os.path.isdir(examples_dir) else 0
    print(f"\n{len(benches)} experiments (see `python -m repro experiments`),"
          f" {n_examples} example scripts")
    return 0


def cmd_experiments(args) -> int:
    benches = list(_iter_benchmarks())
    if not benches:
        print("no benchmarks directory found next to the package "
              "(installed without the repository checkout)")
        return 1
    for experiment, slug, claim in benches:
        print(f"{experiment:<5} {slug:<24} {claim}")
    print("\nrun them with: pytest benchmarks/ --benchmark-only")
    return 0


def cmd_examples(args) -> int:
    examples_dir = os.path.join(_ROOT, "examples")
    if not os.path.isdir(examples_dir):
        print("no examples directory found next to the package")
        return 1
    for name in sorted(os.listdir(examples_dir)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(examples_dir, name)) as f:
            content = f.read().split('"""')
        summary = content[1].strip().splitlines()[0] if len(content) > 1 else ""
        print(f"examples/{name:<36} {summary}")
    return 0


def cmd_demo(args) -> int:
    from .counterfactual import GecoExplainer
    from .datasets import make_loan_dataset
    from .models import GradientBoostingClassifier
    from .render import render
    from .rules import AnchorExplainer
    from .shapley import TreeShapExplainer

    data = make_loan_dataset(500, seed=0)
    model = GradientBoostingClassifier(
        n_estimators=25, max_depth=3, seed=0
    ).fit(data.X, data.y)
    x = data.X[int(args.instance)]
    print(f"instance {args.instance}: {data.render_row(x)}\n")
    attribution = TreeShapExplainer(model).explain(
        x, feature_names=data.feature_names
    )
    print(render(attribution, top=5))
    print()
    rule = AnchorExplainer(model, data, precision_target=0.9,
                           seed=0).explain(x)
    print(render(rule))
    print()
    cf = GecoExplainer(model, data, seed=0).explain(x)
    print(render(cf))
    return 0


def cmd_trace(args) -> int:
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest or rest[0] == "trace":
        print("usage: repro trace [--out OUT.jsonl] <command> [args...]")
        return 2
    return _run_traced(rest, args.out)


def _run_traced(argv: list[str], out_path: str) -> int:
    """Run ``main(argv)`` with tracing forced on, exporting JSONL spans."""
    from . import obs

    obs.set_enabled(True)
    tracer = obs.get_tracer()
    mark = tracer.mark()
    errors_before = obs.counter("obs.internal_errors").value
    tracer.start_export(out_path)
    try:
        rc = main(argv)
    finally:
        tracer.stop_export()
    print()
    print("---- observability summary ----")
    print(obs.summary(tracer.spans_since(mark)))
    calls = obs.counter("model.calls").value
    rows = obs.counter("model.rows").value
    print(f"model evals (process totals): {calls} calls, {rows} rows")
    print(f"trace written to {out_path}")
    swallowed = obs.counter("obs.internal_errors").value - errors_before
    if swallowed:
        print(
            f"WARNING: {swallowed} instrumentation failure(s) swallowed "
            "during this run (obs.internal_errors) — the trace and the "
            "summary above may undercount"
        )
        if rc == 0:
            rc = 1
    return rc


def cmd_metrics(args) -> int:
    from . import obs

    if args.metrics_command != "serve":
        print("usage: repro metrics serve [--port PORT]")
        return 2
    host, port = obs.start_metrics_server(port=args.port)
    print(f"serving /metrics, /health, /ledger/tail on http://{host}:{port}")
    print("press Ctrl-C to stop")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        obs.stop_metrics_server()
        print("stopped")
    return 0


def cmd_serve(args) -> int:
    from .datasets import make_loan_dataset
    from .models import GradientBoostingClassifier
    from .serve import ExplainServer, ServeConfig

    data = make_loan_dataset(500, seed=0)
    model = GradientBoostingClassifier(
        n_estimators=25, max_depth=3, seed=0
    ).fit(data.X, data.y)
    server = ExplainServer(ServeConfig(), port=args.port)
    server.add_endpoint(
        "loan", model, data.X[:100], feature_names=data.feature_names
    )
    host, port = server.start()
    print(f"explanation service on http://{host}:{port}")
    print("  POST /explain                {model, instance, tier?, params?, "
          "deadline_ms?}")
    print("  GET  /healthz                liveness + breaker states")
    print("  GET  /serve/stats            admission/cache/coalesce/pressure")
    print("  POST /models/<name>/version  {version} — bump + invalidate")
    print(f"hosted models: {', '.join(server.registry.names())}")
    print("press Ctrl-C to stop")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        server.stop()
        print("stopped")
    return 0


def cmd_registry(args) -> int:
    from .persist import dumps, loads
    from .persist.errors import PersistError
    from .persist.registry import ArtifactRegistry

    store = ArtifactRegistry(args.dir)
    action = args.registry_command
    try:
        if action == "push":
            with open(args.file, encoding="utf-8") as fh:
                obj = loads(fh.read())
            record = store.push(
                args.name, obj, version=args.version, note=args.note
            )
            print(f"pushed {record['name']}@{record['version']} "
                  f"(digest {record['digest'][:12]}) to {store.root}")
        elif action == "list":
            names = [args.name] if args.name else store.names()
            if not names:
                print(f"registry {store.root} is empty")
            for name in names:
                latest = store.latest_version(name)
                for version in store.versions(name):
                    record = store.describe(name, version)
                    marker = "*" if version == latest else " "
                    line = (f"{marker} {name}@{version}  "
                            f"{record['digest'][:12]}  {record['pushed_at']}")
                    if record.get("note"):
                        line += f"  {record['note']}"
                    print(line)
        else:  # get
            obj = store.get(args.name, args.version)
            text = dumps(obj, indent=2)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
                print(f"wrote {args.out}")
            else:
                print(text)
    except (PersistError, OSError) as e:
        print(f"registry error: {e}")
        return 2
    return 0


def cmd_profile(args) -> int:
    from . import obs

    if not os.path.isfile(args.trace_file):
        print(f"no such trace file: {args.trace_file}")
        return 2
    if args.folded:
        print(obs.folded_from_jsonl(args.trace_file, weight=args.weight))
        return 0
    import json as _json

    records = []
    with open(args.trace_file, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(_json.loads(line))
    print(obs.phase_table(records))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="from-scratch reproduction of the SIGMOD'22 XAI tutorial",
    )
    parser.add_argument(
        "--trace", metavar="OUT", default=None,
        help="export a JSONL span trace of the command and print the "
             "cost summary (same as the `trace` subcommand)",
    )
    parser.add_argument(
        "--retries", metavar="N", default=None, type=int,
        help="transient model-failure retries per call "
             "(sets REPRO_RETRIES for this run)",
    )
    parser.add_argument(
        "--backoff", metavar="SECONDS", default=None, type=float,
        help="base retry backoff, doubled per attempt "
             "(sets REPRO_BACKOFF)",
    )
    parser.add_argument(
        "--deadline-s", metavar="SECONDS", default=None, type=float,
        help="wall-clock deadline per explanation "
             "(sets REPRO_DEADLINE_S)",
    )
    parser.add_argument(
        "--query-budget", metavar="ROWS", default=None, type=int,
        help="model-query budget per explanation, in rows "
             "(sets REPRO_QUERY_BUDGET)",
    )
    parser.add_argument(
        "--backend", metavar="NAME", default=None,
        choices=("serial", "thread", "process", "spawn"),
        help="execution backend for estimators and explain_batch "
             "(sets REPRO_BACKEND; results are bitwise-identical "
             "whichever backend runs them)",
    )
    parser.add_argument(
        "--n-procs", metavar="N", default=None, type=int,
        help="worker count for the thread/process backends, -1 = all "
             "cores (sets REPRO_N_PROCS)",
    )
    parser.add_argument(
        "--no-coalition-cache", action="store_true",
        help="disable the packed-bit coalition value caches in the games "
             "evaluator and coalition engine (sets REPRO_COALITION_CACHE=0)",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="package inventory")
    sub.add_parser("experiments", help="list experiments E1…")
    sub.add_parser("examples", help="list example scripts")
    demo = sub.add_parser("demo", help="explain one loan decision 3 ways")
    demo.add_argument("--instance", default=0, type=int,
                      help="row of the loan dataset to explain")
    trace_p = sub.add_parser(
        "trace", help="run another command with tracing + JSONL export"
    )
    trace_p.add_argument("--out", "-o", default="trace.jsonl",
                         help="JSONL output path (default: trace.jsonl)")
    trace_p.add_argument("rest", nargs=argparse.REMAINDER,
                         help="command (and arguments) to run traced")
    metrics_p = sub.add_parser(
        "metrics", help="telemetry utilities (metrics serve)"
    )
    metrics_p.add_argument(
        "metrics_command", nargs="?", default="serve",
        help="subcommand (only `serve` for now)",
    )
    metrics_p.add_argument(
        "--port", default=int(os.environ.get("REPRO_METRICS_PORT") or 0),
        type=int,
        help="port to bind (default: REPRO_METRICS_PORT, else an "
             "OS-assigned free port)",
    )
    serve_p = sub.add_parser(
        "serve", help="explanation service hosting the demo loan model"
    )
    serve_p.add_argument(
        "--port", default=int(os.environ.get("REPRO_SERVE_PORT") or 0),
        type=int,
        help="port to bind (default: REPRO_SERVE_PORT, else an "
             "OS-assigned free port)",
    )
    registry_p = sub.add_parser(
        "registry", help="persist artifact registry (push / list / get)"
    )
    registry_sub = registry_p.add_subparsers(dest="registry_command")
    push_p = registry_sub.add_parser(
        "push", help="register a persist-envelope JSON file as an artifact"
    )
    push_p.add_argument("name", help="artifact name")
    push_p.add_argument("file", help="persist envelope JSON to register")
    push_p.add_argument("--version", default=None,
                        help="version string (default: next integer)")
    push_p.add_argument("--note", default="", help="manifest note")
    list_p = registry_sub.add_parser(
        "list", help="list registered artifacts and versions (* = latest)"
    )
    list_p.add_argument("name", nargs="?", default=None,
                        help="limit to one artifact name")
    get_p = registry_sub.add_parser(
        "get", help="print (or write) one artifact's envelope JSON"
    )
    get_p.add_argument("name", help="artifact name")
    get_p.add_argument("--version", default=None,
                       help="version to fetch (default: latest)")
    get_p.add_argument("--out", "-o", default=None,
                       help="write to this path instead of stdout")
    for registry_cmd in (push_p, list_p, get_p):
        registry_cmd.add_argument(
            "--dir", default=None,
            help="registry root (default: REPRO_REGISTRY_DIR, else "
                 ".repro_registry/)",
        )
    profile_p = sub.add_parser(
        "profile", help="phase profile / folded stacks from a trace JSONL"
    )
    profile_p.add_argument("trace_file", help="trace JSONL path")
    profile_p.add_argument(
        "--folded", action="store_true",
        help="emit collapsed flamegraph stacks instead of the phase table",
    )
    profile_p.add_argument(
        "--weight", default="wall_ms", choices=("wall_ms", "cpu_ms"),
        help="clock used for folded-stack weights",
    )
    args = parser.parse_args(argv)
    # Budget/retry flags become env knobs so the guard composed inside
    # every as_predict_fn picks them up, whatever the command constructs.
    for flag, env in (
        ("retries", "REPRO_RETRIES"),
        ("backoff", "REPRO_BACKOFF"),
        ("deadline_s", "REPRO_DEADLINE_S"),
        ("query_budget", "REPRO_QUERY_BUDGET"),
        ("backend", "REPRO_BACKEND"),
        ("n_procs", "REPRO_N_PROCS"),
    ):
        value = getattr(args, flag)
        if value is not None:
            os.environ[env] = str(value)
    if args.no_coalition_cache:
        os.environ["REPRO_COALITION_CACHE"] = "0"
    handlers = {
        "info": cmd_info,
        "experiments": cmd_experiments,
        "examples": cmd_examples,
        "demo": cmd_demo,
        "trace": cmd_trace,
        "metrics": cmd_metrics,
        "serve": cmd_serve,
        "registry": cmd_registry,
        "profile": cmd_profile,
    }
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "registry" and args.registry_command is None:
        registry_p.print_help()
        return 2
    if args.trace and args.command != "trace":
        sub_argv = [args.command]
        if args.command == "demo":
            sub_argv += ["--instance", str(args.instance)]
        return _run_traced(sub_argv, args.trace)
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
