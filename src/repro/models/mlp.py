"""Small multilayer perceptron with manual backpropagation.

The MLP exists so the gradient-based attribution methods of the tutorial's
Section 2.4 (saliency maps, integrated gradients, SmoothGrad, sanity
checks) have a differentiable model to explain. Accordingly it exposes

* ``input_gradient(x)`` — ∂ output / ∂ input, the saliency primitive,
* ``randomize_layer(i)`` — re-initialize one layer in place, the
  model-randomization operation of the saliency sanity checks [Adebayo+18].

Training is plain mini-batch SGD with momentum on either squared error
(regression) or sigmoid cross-entropy (binary classification).
"""

from __future__ import annotations

import numpy as np

from .base import BaseModel, ClassifierMixin
from .logistic import sigmoid

__all__ = ["MLPClassifier"]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


class MLPClassifier(ClassifierMixin, BaseModel):
    """Binary classifier: ReLU hidden layers, sigmoid output.

    Parameters
    ----------
    hidden:
        Hidden layer widths, e.g. ``(32, 16)``.
    epochs, batch_size, lr, momentum:
        SGD hyperparameters.
    l2:
        Weight decay coefficient.
    """

    def __init__(
        self,
        hidden: tuple[int, ...] = (32,),
        epochs: int = 200,
        batch_size: int = 32,
        lr: float = 0.05,
        momentum: float = 0.9,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.momentum = momentum
        self.l2 = l2
        self.seed = seed

    # -- initialization ---------------------------------------------------------

    def _init_layers(self, d: int, rng: np.random.Generator) -> None:
        sizes = [d, *self.hidden, 1]
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialization for ReLU
            self.weights_.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    @property
    def n_layers(self) -> int:
        return len(self.weights_)

    def randomize_layer(self, layer: int, seed: int = 0) -> None:
        """Re-initialize one layer's weights (saliency sanity checks)."""
        self._check_fitted("weights_")
        rng = np.random.default_rng(seed)
        fan_in, fan_out = self.weights_[layer].shape
        self.weights_[layer] = rng.normal(
            0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out)
        )
        self.biases_[layer] = np.zeros(fan_out)

    # -- forward / backward -------------------------------------------------------

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Raw output and pre-activations of every layer (for backprop)."""
        activations = [X]
        h = X
        for i in range(self.n_layers - 1):
            h = _relu(h @ self.weights_[i] + self.biases_[i])
            activations.append(h)
        raw = (h @ self.weights_[-1] + self.biases_[-1]).ravel()
        return raw, activations

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = self._check_Xy(X, y)
        self.classes_, encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("MLPClassifier is binary")
        t = encoded.astype(float)
        rng = np.random.default_rng(self.seed)
        self._init_layers(X.shape[1], rng)
        velocity_w = [np.zeros_like(w) for w in self.weights_]
        velocity_b = [np.zeros_like(b) for b in self.biases_]
        n = X.shape[0]
        for __ in range(self.epochs):
            perm = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = perm[start : start + self.batch_size]
                grads_w, grads_b = self._backward(X[batch], t[batch])
                for i in range(self.n_layers):
                    grads_w[i] += self.l2 * self.weights_[i]
                    velocity_w[i] = self.momentum * velocity_w[i] - self.lr * grads_w[i]
                    velocity_b[i] = self.momentum * velocity_b[i] - self.lr * grads_b[i]
                    self.weights_[i] += velocity_w[i]
                    self.biases_[i] += velocity_b[i]
        return self

    def _backward(self, X: np.ndarray, t: np.ndarray):
        raw, activations = self._forward(X)
        p = sigmoid(raw)
        batch = X.shape[0]
        delta = ((p - t) / batch)[:, None]  # dL/draw for cross-entropy
        grads_w = [np.zeros_like(w) for w in self.weights_]
        grads_b = [np.zeros_like(b) for b in self.biases_]
        for i in range(self.n_layers - 1, -1, -1):
            grads_w[i] = activations[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.weights_[i].T) * (activations[i] > 0)
        return grads_w, grads_b

    # -- prediction ----------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("weights_")
        raw, __ = self._forward(self._check_X(X))
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    # -- attribution primitive --------------------------------------------------------

    def input_gradient(self, X: np.ndarray, of: str = "raw") -> np.ndarray:
        """Gradient of the output w.r.t. each input feature.

        Parameters
        ----------
        of:
            ``"raw"`` — gradient of the pre-sigmoid score (standard for
            saliency methods); ``"proba"`` — gradient of P(class 1).

        Returns
        -------
        Array with the same shape as ``X``.
        """
        self._check_fitted("weights_")
        X = self._check_X(X)
        raw, activations = self._forward(X)
        delta = np.ones((X.shape[0], 1))
        if of == "proba":
            p = sigmoid(raw)
            delta = (p * (1.0 - p))[:, None]
        elif of != "raw":
            raise ValueError(f"unknown gradient target {of!r}")
        for i in range(self.n_layers - 1, 0, -1):
            delta = (delta @ self.weights_[i].T) * (activations[i] > 0)
        return delta @ self.weights_[0].T
