"""From-scratch ML substrate: models, metrics, preprocessing, selection."""

from .base import BaseModel, ClassifierMixin, DifferentiableModel, RegressorMixin
from .boosting import GradientBoostingClassifier, GradientBoostingRegressor
from .forest import RandomForestClassifier
from .gam import ExplainableBoostingClassifier
from .knn import KNeighborsClassifier
from .linear import LinearRegression, RidgeRegression
from .logistic import LogisticRegression, sigmoid
from .mlp import MLPClassifier
from .naive_bayes import GaussianNB
from .tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeStructure

__all__ = [
    "BaseModel",
    "ClassifierMixin",
    "RegressorMixin",
    "DifferentiableModel",
    "LinearRegression",
    "RidgeRegression",
    "LogisticRegression",
    "sigmoid",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "TreeStructure",
    "RandomForestClassifier",
    "ExplainableBoostingClassifier",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "KNeighborsClassifier",
    "GaussianNB",
    "MLPClassifier",
]
