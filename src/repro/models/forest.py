"""Random forest classifier: bagging + per-node feature subsampling."""

from __future__ import annotations

import numpy as np

from ..persist.protocol import Serializable, register_serializable
from .base import BaseModel, ClassifierMixin
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


@register_serializable("models.RandomForestClassifier")
class RandomForestClassifier(Serializable, ClassifierMixin, BaseModel):
    """Ensemble of CART trees on bootstrap resamples.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_features:
        Features considered per split; ``None`` defaults to ⌈√d⌉.
    bootstrap:
        Draw each tree's training set with replacement; when ``False``
        every tree sees the full data (diversity then comes only from
        feature subsampling).
    """

    __persist_init__ = ("n_estimators", "max_depth", "min_samples_leaf",
                        "max_features", "bootstrap", "seed")
    __persist_state__ = ("classes_", "estimators_", "_sample_indices")

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = self._check_Xy(X, y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        max_features = self.max_features or max(1, int(np.ceil(np.sqrt(d))))
        self.estimators_: list[DecisionTreeClassifier] = []
        self._sample_indices: list[np.ndarray] = []
        for t in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            # Refuse degenerate bootstrap draws with a single class: resample.
            attempts = 0
            while np.unique(y[idx]).size < self.classes_.size and attempts < 10:
                idx = rng.integers(0, n, size=n)
                attempts += 1
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
            self._sample_indices.append(idx)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("estimators_")
        X = self._check_X(X)
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # Align tree class order (a bootstrap sample can miss a class).
            for k, label in enumerate(tree.classes_):
                col = int(np.searchsorted(self.classes_, label))
                proba[:, col] += tree_proba[:, k]
        return proba / len(self.estimators_)
