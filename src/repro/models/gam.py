"""Generalized additive model via cyclic gradient boosting on stumps.

The tutorial's first taxonomy axis (§1) separates *intrinsic* from
*post-hoc* explainability. The library's intrinsically interpretable
members are the decision sets (§2.2) and this GAM: f(x) = β₀ + Σ_j f_j(x_j)
with each shape function f_j a sum of depth-1 regression trees fitted by
cyclic boosting (the GA²M/EBM recipe without pairwise terms). Because
the model *is* its explanation, its exact per-feature contributions are
available from :meth:`explain` without any post-hoc machinery — the
baseline every §2.1 method can be compared against.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import FeatureAttribution
from ..persist.protocol import Serializable, register_serializable
from .base import BaseModel, ClassifierMixin
from .logistic import sigmoid
from .tree import DecisionTreeRegressor

__all__ = ["ExplainableBoostingClassifier"]


@register_serializable("models.ExplainableBoostingClassifier")
class ExplainableBoostingClassifier(Serializable, ClassifierMixin, BaseModel):
    """Binary GAM classifier with per-feature shape functions.

    Parameters
    ----------
    n_rounds:
        Cyclic passes over the features; each round adds one stump per
        feature.
    learning_rate:
        Shrinkage on each stump's contribution.
    max_bins_depth:
        Depth of the per-feature stumps (1 = piecewise-constant shapes
        with a single split per round).
    """

    __persist_init__ = ("n_rounds", "learning_rate", "max_bins_depth",
                        "min_leaf_fraction", "seed")
    __persist_state__ = ("classes_", "intercept_", "n_features_",
                         "_offsets", "_stages")

    def __init__(
        self,
        n_rounds: int = 100,
        learning_rate: float = 0.1,
        max_bins_depth: int = 1,
        min_leaf_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 < min_leaf_fraction < 0.5:
            raise ValueError("min_leaf_fraction must be in (0, 0.5)")
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_bins_depth = max_bins_depth
        # Large leaves regularize the shapes: stumps cannot chase noise on
        # irrelevant features, keeping their shape functions near-flat.
        self.min_leaf_fraction = min_leaf_fraction
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ExplainableBoostingClassifier":
        X, y = self._check_Xy(X, y)
        self.classes_, encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("ExplainableBoostingClassifier is binary")
        t = encoded.astype(float)
        n, d = X.shape
        p0 = np.clip(t.mean(), 1e-6, 1 - 1e-6)
        self.intercept_ = float(np.log(p0 / (1 - p0)))
        self._stages: list[list[DecisionTreeRegressor]] = [[] for __ in range(d)]
        raw = np.full(n, self.intercept_)
        min_leaf = max(2, int(self.min_leaf_fraction * n))
        for __ in range(self.n_rounds):
            for j in range(d):
                residual = t - sigmoid(raw)
                stump = DecisionTreeRegressor(
                    max_depth=self.max_bins_depth, min_samples_leaf=min_leaf
                )
                stump.fit(X[:, j : j + 1], residual)
                raw += self.learning_rate * stump.predict(X[:, j : j + 1])
                self._stages[j].append(stump)
        self.n_features_ = d
        # Center shape functions so contributions are mean-zero on train
        # data and the intercept carries the base rate.
        contributions = self._feature_contributions(X)
        self._offsets = contributions.mean(axis=0)
        self.intercept_ += float(self._offsets.sum())
        return self

    def _feature_contributions(self, X: np.ndarray) -> np.ndarray:
        X = self._check_X(X)
        out = np.zeros((X.shape[0], self.n_features_))
        for j in range(self.n_features_):
            for stump in self._stages[j]:
                out[:, j] += self.learning_rate * stump.predict(X[:, j : j + 1])
        return out

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("_stages")
        contributions = self._feature_contributions(X) - self._offsets
        return self.intercept_ + contributions.sum(axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    # -- intrinsic explanations -----------------------------------------------

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        """The model's own exact additive decomposition at ``x``.

        No approximation: values are the centered shape-function outputs
        and sum to the raw score minus the intercept by construction.
        """
        x = np.asarray(x, dtype=float).ravel()
        contributions = (
            self._feature_contributions(x[None, :])[0] - self._offsets
        )
        names = feature_names or [f"x{i}" for i in range(self.n_features_)]
        return FeatureAttribution(
            values=contributions,
            feature_names=names,
            base_value=self.intercept_,
            prediction=float(self.decision_function(x[None, :])[0]),
            method="gam_exact",
        )

    def shape_function(self, feature: int, grid: np.ndarray) -> np.ndarray:
        """Evaluate f_j on a grid — the GAM's global explanation plot."""
        self._check_fitted("_stages")
        grid = np.asarray(grid, dtype=float).ravel()
        out = np.zeros(grid.shape[0])
        for stump in self._stages[feature]:
            out += self.learning_rate * stump.predict(grid[:, None])
        return out - self._offsets[feature]
