"""Binary logistic regression fitted by Newton's method (IRLS).

Minimizes the L2-regularized negative log-likelihood

    L(θ) = Σ_i ℓ(x_i, y_i; θ) + λ/2 ||w||²,
    ℓ = −y log σ(z) − (1−y) log(1−σ(z)),   z = x·w + b.

Per-sample gradients and the exact Hessian are exposed for influence
functions, PrIU and gradient Shapley. The intercept is the last parameter
and is not regularized.
"""

from __future__ import annotations

import numpy as np

from ..persist.protocol import Serializable, register_serializable
from .base import ClassifierMixin, DifferentiableModel

__all__ = ["LogisticRegression", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


@register_serializable("models.LogisticRegression")
class LogisticRegression(Serializable, ClassifierMixin, DifferentiableModel):
    """Binary classifier with Newton/IRLS optimization.

    Parameters
    ----------
    alpha:
        L2 penalty strength λ. A strictly positive value keeps the Hessian
        positive definite, which influence functions require.
    max_iter, tol:
        Newton iteration budget and gradient-norm stopping tolerance.
    """

    __persist_init__ = ("alpha", "max_iter", "tol")
    __persist_state__ = ("classes_", "coef_", "intercept_", "_n_features")

    def __init__(self, alpha: float = 1.0, max_iter: int = 100, tol: float = 1e-8):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        X, y = self._check_Xy(X, y)
        self.classes_, encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError(
                f"LogisticRegression is binary; got {len(self.classes_)} classes"
            )
        n, d = X.shape
        if sample_weight is None:
            sample_weight = np.ones(n)
        sw = np.asarray(sample_weight, dtype=float)
        Xb = np.hstack([X, np.ones((n, 1))])
        theta = np.zeros(d + 1)
        reg = self.alpha * np.eye(d + 1)
        reg[d, d] = 0.0
        t = encoded.astype(float)
        for _ in range(self.max_iter):
            p = sigmoid(Xb @ theta)
            g = Xb.T @ (sw * (p - t)) + reg @ theta
            if np.linalg.norm(g) < self.tol:
                break
            w_diag = sw * p * (1.0 - p)
            H = Xb.T @ (w_diag[:, None] * Xb) + reg
            # Damped Newton: a tiny jitter guards near-separable data.
            step = np.linalg.solve(H + 1e-10 * np.eye(d + 1), g)
            theta = theta - step
        self.coef_ = theta[:d]
        self.intercept_ = float(theta[d])
        self._n_features = d
        return self

    # -- prediction -----------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw margin z = x·w + b."""
        self._check_fitted("coef_")
        X = self._check_X(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    # -- DifferentiableModel interface -----------------------------------------

    @property
    def params(self) -> np.ndarray:
        self._check_fitted("coef_")
        return np.append(self.coef_, self.intercept_)

    def set_params_vector(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float).ravel()
        self.coef_ = theta[:-1].copy()
        self.intercept_ = float(theta[-1])
        self._n_features = theta.shape[0] - 1

    def _encode_targets(self, y: np.ndarray) -> np.ndarray:
        """Map labels to {0, 1} using the fitted class order."""
        y = np.asarray(y).ravel()
        t = np.zeros(y.shape[0])
        t[y == self.classes_[1]] = 1.0
        return t

    def grad(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample ∇_θ of the unregularized log-loss: (σ(z) − y)·[x, 1]."""
        X, y = self._check_Xy(X, y)
        t = self._encode_targets(y)
        p = sigmoid(self.decision_function(X))
        Xb = np.hstack([X, np.ones((X.shape[0], 1))])
        return (p - t)[:, None] * Xb

    def hessian(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Hessian of the full objective over ``(X, y)``."""
        X = self._check_X(X)
        n, d = X.shape
        Xb = np.hstack([X, np.ones((n, 1))])
        p = sigmoid(self.decision_function(X))
        w_diag = p * (1.0 - p)
        reg = self.alpha * np.eye(d + 1)
        reg[d, d] = 0.0
        return Xb.T @ (w_diag[:, None] * Xb) + reg

    def loss(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean unregularized log-loss over ``(X, y)``."""
        X, y = self._check_Xy(X, y)
        t = self._encode_targets(y)
        p = np.clip(sigmoid(self.decision_function(X)), 1e-12, 1 - 1e-12)
        return float(-np.mean(t * np.log(p) + (1 - t) * np.log(1 - p)))
