"""k-nearest-neighbor classifier.

Beyond ordinary prediction, the model exposes ``kneighbors`` because the
exact KNN-Shapley data-valuation algorithm (:mod:`repro.datavalue.knn_shapley`)
is derived directly from the sorted-distance structure of a kNN classifier.
"""

from __future__ import annotations

import numpy as np

from .base import BaseModel, ClassifierMixin

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(ClassifierMixin, BaseModel):
    """Majority-vote kNN with Euclidean distance."""

    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be positive")
        self.n_neighbors = n_neighbors

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = self._check_Xy(X, y)
        self.classes_, self._encoded = self._encode_labels(y)
        self._X = X
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds {X.shape[0]} samples"
            )
        return self

    def kneighbors(self, X: np.ndarray, n_neighbors: int | None = None):
        """Distances and training indices of each row's nearest neighbors.

        Returns ``(distances, indices)`` of shape ``(n_queries, k)``, both
        sorted by increasing distance.
        """
        self._check_fitted("_X")
        X = self._check_X(X)
        k = n_neighbors or self.n_neighbors
        # Squared Euclidean distances without materializing differences.
        d2 = (
            (X ** 2).sum(axis=1)[:, None]
            - 2.0 * X @ self._X.T
            + (self._X ** 2).sum(axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        idx = np.argsort(d2, axis=1, kind="stable")[:, :k]
        dist = np.sqrt(np.take_along_axis(d2, idx, axis=1))
        return dist, idx

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        __, idx = self.kneighbors(X)
        votes = self._encoded[idx]
        proba = np.zeros((idx.shape[0], len(self.classes_)))
        for k in range(len(self.classes_)):
            proba[:, k] = (votes == k).mean(axis=1)
        return proba
