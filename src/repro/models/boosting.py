"""Gradient boosted trees for regression and binary classification.

The classifier boosts in log-odds space with the logistic deviance loss;
each stage fits a regression tree to the negative gradient and then
re-estimates leaf values with a single Newton step (as in standard GBM).
The ensemble exposes its stages and leaf structure because both TreeSHAP
and the tree-influence explainer traverse them, and tree influence
additionally needs leaf values re-derivable from per-sample gradient and
Hessian sums.
"""

from __future__ import annotations

import numpy as np

from ..persist.protocol import Serializable, register_serializable
from .base import BaseModel, ClassifierMixin, RegressorMixin
from .logistic import sigmoid
from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor", "GradientBoostingClassifier"]


class _BaseGBM(Serializable, BaseModel):
    __persist_init__ = ("n_estimators", "learning_rate", "max_depth",
                        "min_samples_leaf", "subsample", "seed")
    __persist_state__ = ("init_raw_", "estimators_")

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed

    def _raw_predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("estimators_")
        X = self._check_X(X)
        out = np.full(X.shape[0], self.init_raw_)
        for tree in self.estimators_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_raw_predict(self, X: np.ndarray):
        """Yield the raw prediction after each boosting stage."""
        X = self._check_X(X)
        out = np.full(X.shape[0], self.init_raw_)
        for tree in self.estimators_:
            out = out + self.learning_rate * tree.predict(X)
            yield out


@register_serializable("models.GradientBoostingRegressor")
class GradientBoostingRegressor(RegressorMixin, _BaseGBM):
    """Least-squares boosting: each stage fits the current residuals."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X, y = self._check_Xy(X, y)
        y = y.astype(float)
        rng = np.random.default_rng(self.seed)
        self.init_raw_ = float(y.mean())
        raw = np.full(y.shape[0], self.init_raw_)
        self.estimators_: list[DecisionTreeRegressor] = []
        n = y.shape[0]
        for _ in range(self.n_estimators):
            residual = y - raw
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(1, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X[idx], residual[idx])
            raw += self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._raw_predict(X)


@register_serializable("models.GradientBoostingClassifier")
class GradientBoostingClassifier(ClassifierMixin, _BaseGBM):
    """Binary logistic boosting with Newton-step leaf values.

    Raw scores are log-odds; ``predict_proba`` applies the sigmoid. Leaf
    values are ``Σ g / (Σ h + λ)`` over the leaf's samples, with ``g`` the
    negative gradient (y − p) and ``h = p(1 − p)`` the Hessian — the form
    the LeafInfluence-style explainer differentiates.
    """

    __persist_init__ = _BaseGBM.__persist_init__ + ("leaf_l2",)
    __persist_state__ = _BaseGBM.__persist_state__ + ("classes_",)

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        leaf_l2: float = 1e-6,
        seed: int = 0,
    ) -> None:
        super().__init__(n_estimators, learning_rate, max_depth,
                         min_samples_leaf, subsample, seed)
        self.leaf_l2 = leaf_l2

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X, y = self._check_Xy(X, y)
        self.classes_, encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("GradientBoostingClassifier is binary")
        t = encoded.astype(float)
        rng = np.random.default_rng(self.seed)
        # Initial raw score: log-odds of the base rate (clipped).
        p0 = np.clip(t.mean(), 1e-6, 1 - 1e-6)
        self.init_raw_ = float(np.log(p0 / (1 - p0)))
        raw = np.full(t.shape[0], self.init_raw_)
        self.estimators_: list[DecisionTreeRegressor] = []
        n = t.shape[0]
        for _ in range(self.n_estimators):
            p = sigmoid(raw)
            g = t - p                  # negative gradient
            h = np.maximum(p * (1 - p), 1e-12)
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(1, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X[idx], g[idx])
            self._newton_leaf_values(tree, X[idx], g[idx], h[idx])
            raw += self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
        return self

    def _newton_leaf_values(self, tree: DecisionTreeRegressor,
                            X: np.ndarray, g: np.ndarray, h: np.ndarray) -> None:
        """Replace mean-of-gradients leaf values by Σg / (Σh + λ)."""
        leaves = tree.tree_.apply(X)
        for leaf in np.unique(leaves):
            mask = leaves == leaf
            value = g[mask].sum() / (h[mask].sum() + self.leaf_l2)
            tree.tree_.value[leaf] = np.array([value])

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw log-odds scores."""
        return self._raw_predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])
