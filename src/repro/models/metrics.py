"""Evaluation metrics for the model substrate and the benchmark harness."""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_matrix",
    "log_loss",
    "roc_auc",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "spearman_correlation",
    "pearson_correlation",
]


def _as_1d(a) -> np.ndarray:
    return np.asarray(a).ravel()


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly-matching predictions."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Counts ``C[i, j]`` of true label ``labels[i]`` predicted as ``labels[j]``."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    C = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        C[index[t], index[p]] += 1
    return C


def precision(y_true, y_pred, positive=1) -> float:
    """TP / (TP + FP); 0 when nothing is predicted positive."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    predicted_pos = y_pred == positive
    if not predicted_pos.any():
        return 0.0
    return float(np.mean(y_true[predicted_pos] == positive))


def recall(y_true, y_pred, positive=1) -> float:
    """TP / (TP + FN); 0 when there are no positives."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    actual_pos = y_true == positive
    if not actual_pos.any():
        return 0.0
    return float(np.mean(y_pred[actual_pos] == positive))


def f1_score(y_true, y_pred, positive=1) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred, positive)
    r = recall(y_true, y_pred, positive)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def log_loss(y_true, y_proba, eps: float = 1e-12) -> float:
    """Binary cross-entropy; ``y_proba`` is P(class 1)."""
    y_true = _as_1d(y_true).astype(float)
    p = np.clip(_as_1d(y_proba).astype(float), eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p)))


def roc_auc(y_true, y_score) -> float:
    """Area under the ROC curve via the rank statistic (handles ties)."""
    y_true = _as_1d(y_true).astype(int)
    y_score = _as_1d(y_score).astype(float)
    n_pos = int((y_true == 1).sum())
    n_neg = y_true.shape[0] - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs both classes present")
    # Midranks give the tie-corrected Mann-Whitney U statistic.
    order = np.argsort(y_score)
    ranks = np.empty_like(order, dtype=float)
    sorted_scores = y_score[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[y_true == 1].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def mean_squared_error(y_true, y_pred) -> float:
    y_true, y_pred = _as_1d(y_true).astype(float), _as_1d(y_pred).astype(float)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    y_true, y_pred = _as_1d(y_true).astype(float), _as_1d(y_pred).astype(float)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination."""
    y_true, y_pred = _as_1d(y_true).astype(float), _as_1d(y_pred).astype(float)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def _rankdata(a: np.ndarray) -> np.ndarray:
    """Midranks of ``a`` (average rank for ties), 1-based."""
    order = np.argsort(a)
    ranks = np.empty(len(a), dtype=float)
    sorted_a = a[order]
    i = 0
    while i < len(a):
        j = i
        while j + 1 < len(a) and sorted_a[j + 1] == sorted_a[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def pearson_correlation(a, b) -> float:
    """Pearson r; 0 when either input is constant.

    Computed on standardized values and clipped to [−1, 1]: forming the
    product of two near-denormal standard deviations first would lose all
    precision for tiny-variance inputs.
    """
    a, b = _as_1d(a).astype(float), _as_1d(b).astype(float)
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    za = (a - a.mean()) / sa
    zb = (b - b.mean()) / sb
    return float(np.clip(np.mean(za * zb), -1.0, 1.0))


def spearman_correlation(a, b) -> float:
    """Spearman rank correlation (Pearson on midranks)."""
    a, b = _as_1d(a), _as_1d(b)
    return pearson_correlation(_rankdata(a.astype(float)), _rankdata(b.astype(float)))
