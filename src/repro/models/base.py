"""Model base classes for the from-scratch ML substrate.

Every model follows the familiar fit/predict convention. Classifiers store
``classes_`` and expose ``predict_proba``; models used by influence-based
explainers additionally expose per-sample gradients and Hessians of their
training loss (see :class:`DifferentiableModel`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["BaseModel", "ClassifierMixin", "RegressorMixin", "DifferentiableModel"]


class BaseModel(ABC):
    """Minimal fit/predict contract."""

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseModel":
        """Train on ``(X, y)`` and return ``self``."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (classifiers) or values (regressors)."""

    def _check_fitted(self, attr: str) -> None:
        if not hasattr(self, attr):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    @staticmethod
    def _check_X(X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        return X

    @staticmethod
    def _check_Xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = BaseModel._check_X(X)
        y = np.asarray(y).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        return X, y


class ClassifierMixin:
    """Adds probability-based prediction and accuracy scoring."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y).ravel()))

    @staticmethod
    def _encode_labels(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map arbitrary labels to 0..K-1; returns (classes, encoded)."""
        classes, encoded = np.unique(y, return_inverse=True)
        return classes, encoded


class RegressorMixin:
    """Adds R^2 scoring."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 on ``(X, y)``."""
        y = np.asarray(y, dtype=float).ravel()
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot


class DifferentiableModel(BaseModel):
    """A model whose training loss has per-sample gradients and a Hessian.

    Influence functions, PrIU and gradient Shapley all require white-box
    access to, for parameter vector θ and training point (x, y):

    * ``grad(x, y)`` — ∇_θ ℓ(x, y; θ̂) at the fitted parameters,
    * ``hessian(X, y)`` — Σ ∇²_θ ℓ over a dataset (plus regularization),
    * ``params`` / ``set_params_vector`` — flat parameter access.
    """

    @property
    @abstractmethod
    def params(self) -> np.ndarray:
        """Flat copy of the fitted parameter vector."""

    @abstractmethod
    def set_params_vector(self, theta: np.ndarray) -> None:
        """Overwrite the fitted parameters with a flat vector."""

    @abstractmethod
    def grad(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample loss gradients, shape ``(n_samples, n_params)``."""

    @abstractmethod
    def hessian(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Total loss Hessian over ``(X, y)``, shape ``(n_params, n_params)``."""
