"""Feature preprocessing: scaling and encoding transformers.

Transformers follow fit/transform and support ``inverse_transform`` where
it is well defined, which counterfactual explainers rely on to map search
results back to the original feature space.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler", "OneHotEncoder", "LabelEncoder"]


class StandardScaler:
    """Center to zero mean and scale to unit variance, column-wise."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        self.mean_ = X.mean(axis=0)
        self.scale_ = X.std(axis=0)
        self.scale_[self.scale_ == 0.0] = 1.0
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each column to the ``[0, 1]`` range observed at fit time."""

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        self.min_ = X.min(axis=0)
        self.range_ = X.max(axis=0) - self.min_
        self.range_[self.range_ == 0.0] = 1.0
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X * self.range_ + self.min_


class OneHotEncoder:
    """Expand integer-coded categorical columns into indicator columns.

    Parameters
    ----------
    categorical_indices:
        Which columns of the input are categorical; remaining columns pass
        through unchanged, appended after the indicators in input order.
    """

    def __init__(self, categorical_indices: list[int]) -> None:
        self.categorical_indices = sorted(categorical_indices)

    def fit(self, X: np.ndarray) -> "OneHotEncoder":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        self.categories_ = {
            j: np.unique(X[:, j].astype(int)) for j in self.categorical_indices
        }
        self.n_input_features_ = X.shape[1]
        # Output layout: for each input column in order, either its block of
        # indicator columns or the single passthrough column.
        self._slices: dict[int, slice] = {}
        offset = 0
        for j in range(self.n_input_features_):
            width = len(self.categories_[j]) if j in self.categories_ else 1
            self._slices[j] = slice(offset, offset + width)
            offset += width
        self.n_output_features_ = offset
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_input_features_:
            raise ValueError(
                f"expected {self.n_input_features_} columns, got {X.shape[1]}"
            )
        out = np.zeros((X.shape[0], self.n_output_features_))
        for j in range(self.n_input_features_):
            block = self._slices[j]
            if j in self.categories_:
                cats = self.categories_[j]
                codes = X[:, j].astype(int)
                for k, cat in enumerate(cats):
                    out[:, block.start + k] = (codes == cat).astype(float)
            else:
                out[:, block.start] = X[:, j]
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.zeros((X.shape[0], self.n_input_features_))
        for j in range(self.n_input_features_):
            block = self._slices[j]
            if j in self.categories_:
                cats = self.categories_[j]
                out[:, j] = cats[np.argmax(X[:, block], axis=1)]
            else:
                out[:, j] = X[:, block.start]
        return out

    def output_feature_of(self, input_feature: int) -> slice:
        """The slice of output columns derived from an input column."""
        return self._slices[input_feature]


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers 0..K-1."""

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        self._index = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, y) -> np.ndarray:
        y = np.asarray(y).ravel()
        try:
            return np.array([self._index[label] for label in y], dtype=int)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from exc

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=int).ravel()
        return self.classes_[codes]
