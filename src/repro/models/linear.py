"""Linear regression models with white-box gradient access.

Both models minimize a (possibly L2-regularized) squared-error objective

    L(θ) = 1/2 Σ_i (x_i·w + b − y_i)² + λ/2 ||w||²

and expose per-sample gradients and the exact Hessian of L, which is what
influence functions (:mod:`repro.influence`) and PrIU incremental updates
(:mod:`repro.unlearning.priu`) differentiate through. The intercept is the
last entry of the flat parameter vector and is never regularized.
"""

from __future__ import annotations

import numpy as np

from ..persist.protocol import Serializable, register_serializable
from .base import DifferentiableModel, RegressorMixin

__all__ = ["LinearRegression", "RidgeRegression"]


@register_serializable("models.RidgeRegression")
class RidgeRegression(Serializable, RegressorMixin, DifferentiableModel):
    """Closed-form L2-regularized least squares.

    Parameters
    ----------
    alpha:
        L2 penalty strength λ (0 recovers ordinary least squares).
    sample_weight support:
        ``fit`` accepts per-sample weights, which PrIU uses to express
        deletions as down-weighting.
    """

    __persist_init__ = ("alpha",)
    __persist_state__ = ("coef_", "intercept_", "_n_features")

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "RidgeRegression":
        X, y = self._check_Xy(X, y)
        y = y.astype(float)
        n, d = X.shape
        Xb = np.hstack([X, np.ones((n, 1))])
        if sample_weight is None:
            sample_weight = np.ones(n)
        w = np.asarray(sample_weight, dtype=float)
        reg = self.alpha * np.eye(d + 1)
        reg[d, d] = 0.0  # never regularize the intercept
        A = Xb.T @ (w[:, None] * Xb) + reg
        b = Xb.T @ (w * y)
        theta = np.linalg.solve(A, b)
        self.coef_ = theta[:d]
        self.intercept_ = float(theta[d])
        self._n_features = d
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("coef_")
        X = self._check_X(X)
        return X @ self.coef_ + self.intercept_

    # -- DifferentiableModel interface ---------------------------------------

    @property
    def params(self) -> np.ndarray:
        self._check_fitted("coef_")
        return np.append(self.coef_, self.intercept_)

    def set_params_vector(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float).ravel()
        self.coef_ = theta[:-1].copy()
        self.intercept_ = float(theta[-1])
        self._n_features = theta.shape[0] - 1

    def grad(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample ∇_θ of the *unregularized* squared loss."""
        X, y = self._check_Xy(X, y)
        residual = self.predict(X) - y.astype(float)
        Xb = np.hstack([X, np.ones((X.shape[0], 1))])
        return residual[:, None] * Xb

    def hessian(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Hessian of the full objective (data term + L2 penalty)."""
        X = self._check_X(X)
        n, d = X.shape
        Xb = np.hstack([X, np.ones((n, 1))])
        H = Xb.T @ Xb
        reg = self.alpha * np.eye(d + 1)
        reg[d, d] = 0.0
        return H + reg


@register_serializable("models.LinearRegression")
class LinearRegression(RidgeRegression):
    """Ordinary least squares (ridge with λ = 0)."""

    __persist_init__ = ()

    def __init__(self) -> None:
        super().__init__(alpha=0.0)
