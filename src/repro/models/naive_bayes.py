"""Gaussian naive Bayes classifier.

Used in the tutorial-driven experiments as an extra black box whose
conditional-independence assumption makes it a clean foil for causal
attribution methods: naive Bayes ignores feature interactions entirely,
so interaction-aware explainers should assign it near-additive scores.
"""

from __future__ import annotations

import numpy as np

from .base import BaseModel, ClassifierMixin

__all__ = ["GaussianNB"]


class GaussianNB(ClassifierMixin, BaseModel):
    """Class-conditional independent Gaussians with shared smoothing."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X, y = self._check_Xy(X, y)
        self.classes_, encoded = self._encode_labels(y)
        n_classes = len(self.classes_)
        d = X.shape[1]
        self.theta_ = np.zeros((n_classes, d))
        self.var_ = np.zeros((n_classes, d))
        self.class_prior_ = np.zeros(n_classes)
        # Smoothing proportional to the largest overall feature variance
        # keeps likelihoods finite for constant columns.
        epsilon = self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        for k in range(n_classes):
            members = X[encoded == k]
            if members.shape[0] == 0:
                raise ValueError(f"class {self.classes_[k]!r} has no samples")
            self.theta_[k] = members.mean(axis=0)
            self.var_[k] = members.var(axis=0) + epsilon
            self.class_prior_[k] = members.shape[0] / X.shape[0]
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = self._check_X(X)
        n_classes = len(self.classes_)
        jll = np.zeros((X.shape[0], n_classes))
        for k in range(n_classes):
            log_det = np.sum(np.log(2.0 * np.pi * self.var_[k]))
            mahalanobis = ((X - self.theta_[k]) ** 2 / self.var_[k]).sum(axis=1)
            jll[:, k] = np.log(self.class_prior_[k]) - 0.5 * (log_det + mahalanobis)
        return jll

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("theta_")
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)
