"""CART decision trees (classifier and regressor) built from scratch.

The fitted tree is exported as flat parallel arrays (``feature``,
``threshold``, ``children_left``, ``children_right``, ``value``,
``n_node_samples``) — the representation TreeSHAP (:mod:`repro.shapley.tree`),
the logic-based explainers (:mod:`repro.logic`) and the tree-influence
method (:mod:`repro.influence.tree_influence`) all traverse.

Splits are of the form ``x[feature] <= threshold`` going left. Numeric
split search is vectorized: per candidate feature the node's rows are
sorted once and all prefix splits are scored together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..persist.protocol import Serializable, register_serializable
from .base import BaseModel, ClassifierMixin, RegressorMixin

__all__ = ["TreeStructure", "DecisionTreeClassifier", "DecisionTreeRegressor"]

_LEAF = -1


@register_serializable("models.TreeStructure")
@dataclass
class TreeStructure:
    """Flat array representation of a fitted binary tree.

    ``feature[n] == -1`` marks node ``n`` as a leaf. ``value`` holds the
    node prediction: class-probability vectors for classifiers (shape
    ``(n_nodes, n_classes)``), scalars for regressors (``(n_nodes, 1)``).
    ``n_node_samples`` is the training "cover" used by path-dependent
    TreeSHAP.
    """

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    children_left: list[int] = field(default_factory=list)
    children_right: list[int] = field(default_factory=list)
    value: list[np.ndarray] = field(default_factory=list)
    n_node_samples: list[float] = field(default_factory=list)

    def add_node(self, value: np.ndarray, n_samples: float) -> int:
        """Append a leaf node and return its id."""
        node = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.children_left.append(_LEAF)
        self.children_right.append(_LEAF)
        self.value.append(np.atleast_1d(np.asarray(value, dtype=float)))
        self.n_node_samples.append(float(n_samples))
        return node

    def make_split(self, node: int, feature: int, threshold: float,
                   left: int, right: int) -> None:
        """Turn leaf ``node`` into an internal node."""
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.children_left[node] = left
        self.children_right[node] = right

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return sum(1 for f in self.feature if f == _LEAF)

    def is_leaf(self, node: int) -> bool:
        return self.feature[node] == _LEAF

    def depth(self, node: int = 0) -> int:
        """Height of the subtree rooted at ``node`` (leaf = 0)."""
        if self.is_leaf(node):
            return 0
        return 1 + max(
            self.depth(self.children_left[node]),
            self.depth(self.children_right[node]),
        )

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id reached by each row of ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.zeros(X.shape[0], dtype=int)
        for i, x in enumerate(X):
            node = 0
            while not self.is_leaf(node):
                if x[self.feature[node]] <= self.threshold[node]:
                    node = self.children_left[node]
                else:
                    node = self.children_right[node]
            out[i] = node
        return out

    def decision_path(self, x: np.ndarray) -> list[tuple[int, int, float, bool]]:
        """Internal nodes on the root-to-leaf path of ``x``.

        Each entry is ``(node, feature, threshold, went_left)``.
        """
        x = np.asarray(x, dtype=float).ravel()
        path = []
        node = 0
        while not self.is_leaf(node):
            went_left = x[self.feature[node]] <= self.threshold[node]
            path.append((node, self.feature[node], self.threshold[node], bool(went_left)))
            node = self.children_left[node] if went_left else self.children_right[node]
        return path

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Stacked leaf values for each row of ``X``."""
        leaves = self.apply(X)
        return np.stack([self.value[n] for n in leaves])

    def used_features(self) -> set[int]:
        """Feature indices tested anywhere in the tree."""
        return {f for f in self.feature if f != _LEAF}

    def to_dict(self) -> dict:
        """Persist payload: the six parallel arrays, values stacked 2-D.

        Every node of one tree carries a value vector of the same width
        (class probabilities or a scalar), so the per-node list stacks
        losslessly into one ``(n_nodes, k)`` array.
        """
        if self.value:
            value = np.stack([np.asarray(v, dtype=float) for v in self.value])
        else:
            value = np.zeros((0, 1))
        return {
            "feature": [int(f) for f in self.feature],
            "threshold": [float(t) for t in self.threshold],
            "children_left": [int(c) for c in self.children_left],
            "children_right": [int(c) for c in self.children_right],
            "value": value,
            "n_node_samples": [float(s) for s in self.n_node_samples],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TreeStructure":
        value = np.atleast_2d(np.asarray(payload["value"], dtype=float))
        return cls(
            feature=[int(f) for f in payload["feature"]],
            threshold=[float(t) for t in payload["threshold"]],
            children_left=[int(c) for c in payload["children_left"]],
            children_right=[int(c) for c in payload["children_right"]],
            value=[np.array(row, dtype=float) for row in value[: len(payload["feature"])]],
            n_node_samples=[float(s) for s in payload["n_node_samples"]],
        )


class _BaseDecisionTree(BaseModel):
    """Shared recursive CART builder; subclasses define the impurity."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.seed = seed

    # Subclass hooks -----------------------------------------------------------

    def _node_value(self, y: np.ndarray, sw: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _impurity_reduction(
        self, y_sorted: np.ndarray, sw_sorted: np.ndarray
    ) -> np.ndarray:
        """Score every prefix split of a sorted node.

        Returns an array ``gain[k]`` for splitting after position ``k``
        (left = first k+1 rows); larger is better. Weighted by sample count.
        """
        raise NotImplementedError

    # Builder --------------------------------------------------------------------

    def _fit_tree(
        self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None
    ) -> TreeStructure:
        n, d = X.shape
        if sample_weight is None:
            sample_weight = np.ones(n)
        sw = np.asarray(sample_weight, dtype=float)
        rng = np.random.default_rng(self.seed)
        tree = TreeStructure()
        self._build(tree, X, y, sw, np.arange(n), depth=0, rng=rng)
        return tree

    def _build(
        self,
        tree: TreeStructure,
        X: np.ndarray,
        y: np.ndarray,
        sw: np.ndarray,
        idx: np.ndarray,
        depth: int,
        rng: np.random.Generator,
    ) -> int:
        node = tree.add_node(
            self._node_value(y[idx], sw[idx]), float(sw[idx].sum())
        )
        if (
            idx.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or self._is_pure(y[idx])
        ):
            return node
        split = self._best_split(X, y, sw, idx, rng)
        if split is None:
            return node
        feature, threshold = split
        left_mask = X[idx, feature] <= threshold
        left_idx, right_idx = idx[left_mask], idx[~left_mask]
        left = self._build(tree, X, y, sw, left_idx, depth + 1, rng)
        right = self._build(tree, X, y, sw, right_idx, depth + 1, rng)
        tree.make_split(node, feature, threshold, left, right)
        return node

    def _is_pure(self, y: np.ndarray) -> bool:
        return np.unique(y).size <= 1

    def _candidate_features(self, d: int, rng: np.random.Generator) -> np.ndarray:
        if self.max_features is None or self.max_features >= d:
            return np.arange(d)
        return rng.choice(d, size=self.max_features, replace=False)

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sw: np.ndarray,
        idx: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[int, float] | None:
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        for feature in self._candidate_features(X.shape[1], rng):
            col = X[idx, feature]
            order = np.argsort(col, kind="mergesort")
            col_sorted = col[order]
            # Splits are only valid between distinct consecutive values.
            distinct = col_sorted[1:] != col_sorted[:-1]
            if not distinct.any():
                continue
            gains = self._impurity_reduction(y[idx][order], sw[idx][order])
            k_count = np.arange(1, idx.size)
            valid = (
                distinct
                & (k_count >= self.min_samples_leaf)
                & (idx.size - k_count >= self.min_samples_leaf)
            )
            gains = np.where(valid, gains, -np.inf)
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                best_gain = float(gains[k])
                threshold = 0.5 * (col_sorted[k] + col_sorted[k + 1])
                best = (int(feature), float(threshold))
        return best


@register_serializable("models.DecisionTreeClassifier")
class DecisionTreeClassifier(Serializable, ClassifierMixin, _BaseDecisionTree):
    """CART classifier with gini or entropy impurity."""

    __persist_init__ = ("max_depth", "min_samples_split", "min_samples_leaf",
                        "max_features", "criterion", "seed")
    __persist_state__ = ("classes_", "n_classes_", "n_features_", "tree_")

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        criterion: str = "gini",
        seed: int = 0,
    ) -> None:
        super().__init__(max_depth, min_samples_split, min_samples_leaf,
                         max_features, seed)
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.criterion = criterion

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X, y = self._check_Xy(X, y)
        self.classes_, encoded = self._encode_labels(y)
        self.n_classes_ = len(self.classes_)
        self.n_features_ = X.shape[1]
        self.tree_ = self._fit_tree(X, encoded, sample_weight)
        return self

    def _node_value(self, y: np.ndarray, sw: np.ndarray) -> np.ndarray:
        counts = np.bincount(y.astype(int), weights=sw, minlength=self.n_classes_)
        total = counts.sum()
        return counts / total if total > 0 else np.full(self.n_classes_, 1.0 / self.n_classes_)

    def _impurity_reduction(self, y_sorted, sw_sorted) -> np.ndarray:
        n = y_sorted.shape[0]
        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), y_sorted.astype(int)] = 1.0
        onehot *= sw_sorted[:, None]
        left_counts = np.cumsum(onehot, axis=0)[:-1]  # after position k
        total_counts = left_counts[-1] + onehot[-1]
        right_counts = total_counts[None, :] - left_counts
        left_n = left_counts.sum(axis=1)
        right_n = right_counts.sum(axis=1)
        total_n = left_n + right_n

        def impurity(counts: np.ndarray, size: np.ndarray) -> np.ndarray:
            p = counts / np.maximum(size, 1e-12)[:, None]
            if self.criterion == "gini":
                return 1.0 - (p ** 2).sum(axis=1)
            safe = np.where(p > 0, p, 1.0)  # log2(1) = 0 kills the term
            return -(p * np.log2(safe)).sum(axis=1)

        parent = impurity(total_counts[None, :], total_n[:1])[0]
        child = (
            left_n * impurity(left_counts, left_n)
            + right_n * impurity(right_counts, right_n)
        ) / np.maximum(total_n, 1e-12)
        return (parent - child) * total_n

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("tree_")
        return self.tree_.predict_value(self._check_X(X))


@register_serializable("models.DecisionTreeRegressor")
class DecisionTreeRegressor(Serializable, RegressorMixin, _BaseDecisionTree):
    """CART regressor minimizing weighted squared error."""

    __persist_init__ = ("max_depth", "min_samples_split", "min_samples_leaf",
                        "max_features", "seed")
    __persist_state__ = ("n_features_", "tree_")

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        X, y = self._check_Xy(X, y)
        self.n_features_ = X.shape[1]
        self.tree_ = self._fit_tree(X, y.astype(float), sample_weight)
        return self

    def _node_value(self, y: np.ndarray, sw: np.ndarray) -> np.ndarray:
        total = sw.sum()
        mean = float((sw * y).sum() / total) if total > 0 else 0.0
        return np.array([mean])

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.ptp(y) < 1e-12) if y.size else True

    def _impurity_reduction(self, y_sorted, sw_sorted) -> np.ndarray:
        # Variance reduction via weighted prefix sums of y and y².
        wy = sw_sorted * y_sorted
        wy2 = sw_sorted * y_sorted ** 2
        cw = np.cumsum(sw_sorted)
        cwy = np.cumsum(wy)
        cwy2 = np.cumsum(wy2)
        total_w, total_wy, total_wy2 = cw[-1], cwy[-1], cwy2[-1]
        left_w, left_wy, left_wy2 = cw[:-1], cwy[:-1], cwy2[:-1]
        right_w = total_w - left_w
        right_wy = total_wy - left_wy
        right_wy2 = total_wy2 - left_wy2

        def sse(w, s1, s2):
            # Σ w y² − (Σ w y)² / Σ w, guarded against empty sides.
            return s2 - np.where(w > 0, s1 ** 2 / np.maximum(w, 1e-12), 0.0)

        parent_sse = sse(total_w, total_wy, total_wy2)
        child_sse = sse(left_w, left_wy, left_wy2) + sse(right_w, right_wy, right_wy2)
        return parent_sse - child_sse

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("tree_")
        return self.tree_.predict_value(self._check_X(X)).ravel()
