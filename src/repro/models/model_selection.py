"""Train/test splitting and cross-validation utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["train_test_split", "KFold", "cross_val_score"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.25,
    seed: int = 0,
    stratify: bool = False,
):
    """Random split into train and test partitions.

    Parameters
    ----------
    test_size:
        Fraction of rows assigned to the test partition (0 < f < 1).
    stratify:
        Preserve the class proportions of ``y`` in both partitions.

    Returns
    -------
    ``(X_train, X_test, y_train, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = X.shape[0]
    if stratify:
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.where(y == label)[0]
            members = rng.permutation(members)
            k = max(1, int(round(test_size * members.size)))
            test_idx.extend(members[:k].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        perm = rng.permutation(n)
        k = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[perm[:k]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int):
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            indices = np.random.default_rng(self.seed).permutation(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


def cross_val_score(
    model_factory,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Fit a fresh model per fold and return per-fold ``score`` values.

    ``model_factory`` is a zero-argument callable returning an unfitted
    model, so folds never share state.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train, test in KFold(n_splits=n_splits, seed=seed).split(X.shape[0]):
        model = model_factory().fit(X[train], y[train])
        scores.append(model.score(X[test], y[test]))
    return np.asarray(scores)
