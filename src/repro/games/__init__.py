"""Cooperative games: one protocol, one evaluator, one estimator suite.

The unification layer the tutorial's structure implies: SHAP/QII, Data
Shapley, Shapley of tuples, asymmetric and causal Shapley are all
Shapley values over different cooperative games, so the library defines
the game once (:mod:`repro.games.base`), evaluates every game through
the same cached/chunked/guarded pipeline (:mod:`repro.games.engine`),
estimates with a shared suite (:mod:`repro.games.estimators`), and
adapts each workload in :mod:`repro.games.adapters`.

A bespoke-loop lint (``scripts/check_no_bespoke_shapley.py``, enforced
in tier-1) keeps new permutation-accumulation loops from growing back
outside this package.
"""

from .adapters import (
    DataValueGame,
    FeatureMaskingGame,
    GradientGame,
    InterventionalGame,
    TopologicalGame,
    TupleProvenanceGame,
    sample_topological_order,
)
from .base import BaseGame, FunctionGame, Game, as_game, walk_masks
from .engine import game_value_function
from .estimators import (
    PermutationEstimate,
    all_coalitions,
    exact_enumeration,
    kernel_wls_estimator,
    permutation_estimator,
    shapley_kernel_weight,
    stratified_estimator,
)

__all__ = [
    "Game",
    "BaseGame",
    "FunctionGame",
    "as_game",
    "walk_masks",
    "game_value_function",
    "PermutationEstimate",
    "all_coalitions",
    "exact_enumeration",
    "permutation_estimator",
    "kernel_wls_estimator",
    "stratified_estimator",
    "shapley_kernel_weight",
    "FeatureMaskingGame",
    "DataValueGame",
    "TupleProvenanceGame",
    "TopologicalGame",
    "InterventionalGame",
    "GradientGame",
    "sample_topological_order",
]
