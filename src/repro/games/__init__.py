"""Cooperative games: one protocol, one evaluator, one estimator suite.

The unification layer the tutorial's structure implies: SHAP/QII, Data
Shapley, Shapley of tuples, asymmetric and causal Shapley are all
Shapley values over different cooperative games, so the library defines
the game once (:mod:`repro.games.base`), evaluates every game through
the same cached/chunked/guarded pipeline (:mod:`repro.games.engine`),
estimates with a shared suite (:mod:`repro.games.estimators`), and
adapts each workload in :mod:`repro.games.adapters`.

A bespoke-loop lint (``scripts/check_no_bespoke_shapley.py``, enforced
in tier-1) keeps new permutation-accumulation loops from growing back
outside this package.
"""

from .adapters import (
    DataValueGame,
    FeatureMaskingGame,
    GradientGame,
    InterventionalGame,
    TopologicalGame,
    TupleProvenanceGame,
    sample_topological_order,
)
from .base import BaseGame, FunctionGame, Game, as_game, walk_masks
from .engine import amortized_plan_values, game_value_function
from .estimators import (
    EstimatorState,
    PermutationEstimate,
    all_coalitions,
    exact_enumeration,
    kernel_wls_estimator,
    permutation_estimator,
    shapley_kernel_weight,
    solve_kernel_wls,
    stratified_estimator,
)
from .plan import (
    CoalitionPlan,
    kernel_plan,
    mean_walks_reduce,
    permutation_plan,
    resolve_batch_plan,
    shared_plan,
)

__all__ = [
    "Game",
    "BaseGame",
    "FunctionGame",
    "as_game",
    "walk_masks",
    "game_value_function",
    "amortized_plan_values",
    "CoalitionPlan",
    "resolve_batch_plan",
    "permutation_plan",
    "kernel_plan",
    "shared_plan",
    "mean_walks_reduce",
    "EstimatorState",
    "solve_kernel_wls",
    "PermutationEstimate",
    "all_coalitions",
    "exact_enumeration",
    "permutation_estimator",
    "kernel_wls_estimator",
    "stratified_estimator",
    "shapley_kernel_weight",
    "FeatureMaskingGame",
    "DataValueGame",
    "TupleProvenanceGame",
    "TopologicalGame",
    "InterventionalGame",
    "GradientGame",
    "sample_topological_order",
]
