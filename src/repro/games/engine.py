"""One evaluation pipeline for every cooperative game.

:func:`game_value_function` turns any :class:`repro.games.base.Game`
into a batched ``v(coalitions)`` callable that runs through the same
machinery the coalition engine gave feature attribution in PR 2 and the
guarded runtime gave it in PR 3 — now uniformly for data valuation,
tuple provenance and causal games too:

* **packed-bit value caching** via
  :class:`repro.core.coalition_engine.CoalitionValueCache` (counters
  ``coalition.cache.hits`` / ``.misses``), enabled when the game
  declares itself ``deterministic`` and not disabled globally via
  ``REPRO_COALITION_CACHE=0``;
* **memory-bounded chunking**: ``max_batch_rows`` (env
  ``REPRO_MAX_BATCH_ROWS``) divided by the game's
  ``rows_per_coalition`` bounds coalitions per evaluation call;
* **budget charging**: games that are not already ``guarded`` charge
  the ambient :class:`repro.robust.GuardScope` one
  ``rows_per_coalition`` per coalition, so deadlines and query budgets
  now stop a runaway Data Shapley exactly like they stop sampling SHAP;
* **transient retry + chunk retry**: unguarded games get the guard's
  capped-exponential retry of ``TRANSIENT_DEFAULT`` failures
  (``robust.retries``), and any chunk that still dies with
  :class:`~repro.robust.ModelEvaluationError` is retried whole
  (``robust.chunk_retries``), mirroring
  :meth:`CoalitionEngine._evaluate`;
* **span telemetry**: every call opens a ``coalition_eval`` span
  carrying the game class, chunk geometry and cache hit/miss counts.

Position-seeded games (``value_at``) are cached by ``(row, mask)``
instead of mask alone: their randomness is keyed to the batch row (the
interventional SCM value function seeds ``seed + row``), so the same
mask at the same walk position is deterministic — and cacheable —
while masks at different positions stay distinct.

The amortized ``explain_batch`` path (PR 7) evaluates a shared
:class:`repro.games.plan.CoalitionPlan` instead of re-sampling per row:
masking-family explainers go through
:meth:`repro.core.coalition_engine.CoalitionEngine.batch_value_matrix`
(one fused ``batch × coalitions`` grid), and game-shaped value
functions without an engine go through :func:`amortized_plan_values`
here — one ``coalition_eval`` span per row covering every unique mask
the whole walk schedule visits.
"""

from __future__ import annotations

import numpy as np

from ..core.coalition_engine import (
    DEFAULT_CHUNK_RETRIES,
    CoalitionValueCache,
    resolve_cache,
    resolve_max_batch_rows,
)
from ..obs import metrics
from ..obs.trace import span
from ..robust.errors import (
    BudgetExceededError,
    InputValidationError,
    ModelEvaluationError,
)
from ..robust.guard import (
    TRANSIENT_DEFAULT,
    GuardConfig,
    _backoff_sleep,
    _note_retry,
    current_scope,
    resolve_backoff,
    resolve_retries,
)
from .base import as_game

__all__ = ["game_value_function", "amortized_plan_values"]

_CHUNK_RETRIES = "robust.chunk_retries"


def amortized_plan_values(value_fn, plan) -> np.ndarray:
    """Evaluate one row's value function over a plan's unique coalitions.

    The fused counterpart of calling ``value_fn`` once per walk: every
    distinct mask the plan's walk schedule visits is evaluated in a
    single batched call (the value function's own internal batching —
    e.g. the conditional explainer's stacked neighbor blocks — then
    collapses the whole schedule into O(1) model calls). Per-mask
    values are bitwise-identical to the per-walk path because each
    mask's value never depends on what else is in the batch.
    """
    masks = plan.unique_masks
    with span(
        "coalition_eval", n_coalitions=masks.shape[0], game="plan",
        amortized=True,
    ) as sp:
        vals = np.asarray(value_fn(masks), dtype=float).ravel()
        sp.set_attr("plan_kind", plan.kind)
    return vals


def _evaluate_chunk(game, positions, masks, guarded, rows_per, chunk_retries):
    """One chunk through the game, with budgets, retries and charging."""
    n_rows = masks.shape[0] * rows_per
    scope = None if guarded else current_scope()
    retries = resolve_retries()
    backoff = resolve_backoff()
    cfg = GuardConfig()
    failures = 0
    attempts = 0
    while True:
        if scope is not None:
            scope.check(n_rows)
        try:
            if positions is not None:
                vals = game.value_at(positions, masks)
            else:
                vals = game.value(masks)
            vals = np.asarray(vals, dtype=float).ravel()
            break
        except (BudgetExceededError, InputValidationError):
            raise
        except ModelEvaluationError:
            # Chunk-level retry: a guarded game's predict function has
            # already burned its own retry allowance; one fresh pass at
            # the whole chunk re-enters it with a full allowance.
            attempts += 1
            if attempts > chunk_retries:
                raise
            metrics.counter(_CHUNK_RETRIES).inc()
        except TRANSIENT_DEFAULT as e:
            if guarded:
                raise
            failures += 1
            if failures > retries:
                raise ModelEvaluationError(
                    f"game evaluation failed after {failures} attempts "
                    f"({retries} retries): {type(e).__name__}: {e}",
                    attempts=failures,
                ) from e
            _note_retry(scope)
            _backoff_sleep(cfg, backoff, failures, scope)
    if vals.shape[0] != masks.shape[0]:
        raise ModelEvaluationError(
            f"{type(game).__name__}.value returned {vals.shape[0]} values "
            f"for {masks.shape[0]} coalitions"
        )
    if scope is not None:
        scope.rows_spent += n_rows
    return vals


def game_value_function(
    game,
    n_players: int | None = None,
    cache: bool | None = None,
    max_batch_rows: int | None = None,
    chunk_retries: int = DEFAULT_CHUNK_RETRIES,
):
    """The game's ``v(coalitions)`` with caching/chunking/budgets applied.

    ``cache=None`` defers to the game's ``deterministic`` flag (and the
    global ``REPRO_COALITION_CACHE`` kill switch); passing ``True`` for
    a non-deterministic game is the caller asserting determinism the
    adapter could not, and passing a
    :class:`~repro.core.coalition_engine.CoalitionValueCache` *instance*
    shares that store across value functions — the exec backend uses
    this to seed workers with the parent's cache and merge worker stores
    back. Self-evaluating games (the feature-masking adapter, bare
    callables wrapped by :func:`~repro.games.base.as_game`) are returned
    as-is — their value path is already engineered and wrapping it again
    would double-count telemetry.

    The returned ``v(coalitions, positions=None)`` accepts optional
    explicit *positions* for position-seeded games (``value_at``): by
    default each batch row's own index is its position, but a sharded
    caller evaluating a slice of a larger coalition matrix passes the
    rows' **global** indices so the position-keyed seeding (and the
    ``(row, mask)`` cache keys) match what the unsharded batch would
    have drawn.
    """
    game = as_game(game, n_players)
    if getattr(game, "self_evaluating", False):
        return game.value
    deterministic = getattr(game, "deterministic", False)
    guarded = getattr(game, "guarded", False)
    rows_per = max(1, int(getattr(game, "rows_per_coalition", 1)))
    if isinstance(cache, CoalitionValueCache):
        store = cache if resolve_cache(True) else None
    else:
        use_cache = resolve_cache(deterministic if cache is None else cache)
        store = CoalitionValueCache() if use_cache else None
    positional = hasattr(game, "value_at")
    per_chunk = max(1, resolve_max_batch_rows(max_batch_rows) // rows_per)
    game_name = type(game).__name__
    chunk_retries = max(0, int(chunk_retries))

    def _evaluate(
        indices: np.ndarray, coalitions: np.ndarray, pos: np.ndarray | None, sp
    ) -> np.ndarray:
        out = np.empty(indices.shape[0], dtype=float)
        n_chunks = 0
        for start in range(0, indices.shape[0], per_chunk):
            sel = indices[start : start + per_chunk]
            with metrics.observe_duration("coalition.chunk_ms"):
                out[start : start + sel.shape[0]] = _evaluate_chunk(
                    game,
                    pos[sel] if positional else None,
                    coalitions[sel],
                    guarded,
                    rows_per,
                    chunk_retries,
                )
            n_chunks += 1
        sp.set_attr("chunk_coalitions", per_chunk)
        sp.set_attr("chunk_rows", per_chunk * rows_per)
        sp.set_attr("n_chunks", n_chunks)
        return out

    def v(coalitions: np.ndarray, positions: np.ndarray | None = None
          ) -> np.ndarray:
        coalitions = np.atleast_2d(np.asarray(coalitions, dtype=bool))
        n_c = coalitions.shape[0]
        pos = None
        if positional:
            pos = (
                np.arange(n_c)
                if positions is None
                else np.asarray(positions, dtype=int).ravel()
            )
            if pos.shape[0] != n_c:
                raise InputValidationError(
                    f"positions has {pos.shape[0]} entries for "
                    f"{n_c} coalitions"
                )
        with span("coalition_eval", n_coalitions=n_c, game=game_name) as sp:
            if store is None:
                out = _evaluate(np.arange(n_c), coalitions, pos, sp)
                sp.set_attr("cache_hits", 0)
                sp.set_attr("cache_misses", n_c)
                return out
            keys = np.packbits(coalitions, axis=1)
            out = np.empty(n_c, dtype=float)
            fresh_rows: list[int] = []
            followers: dict[bytes, list[int]] = {}
            hits = 0
            for i in range(n_c):
                # Position-seeded games key the cache by (position, mask):
                # the same mask at a different walk position draws
                # different samples and must not collide. The position is
                # global (== the batch row unless the caller overrode it).
                key = (
                    int(pos[i]).to_bytes(4, "little") + keys[i].tobytes()
                    if positional
                    else keys[i].tobytes()
                )
                known = store.values.get(key)
                if known is not None:
                    out[i] = known
                    hits += 1
                elif key in followers:
                    followers[key].append(i)
                    hits += 1
                else:
                    followers[key] = [i]
                    fresh_rows.append(i)
            if fresh_rows:
                idx = np.asarray(fresh_rows)
                vals = _evaluate(idx, coalitions, pos, sp)
                # Commit only after the whole evaluation succeeded, so a
                # failed chunk can never leave corrupt values behind.
                for j, i0 in enumerate(fresh_rows):
                    key = (
                        int(pos[i0]).to_bytes(4, "little") + keys[i0].tobytes()
                        if positional
                        else keys[i0].tobytes()
                    )
                    store.values[key] = vals[j]
                    for i in followers[key]:
                        out[i] = vals[j]
            store.record(hits, len(fresh_rows))
            sp.set_attr("cache_hits", hits)
            sp.set_attr("cache_misses", len(fresh_rows))
            return out

    v.cache = store
    v.game = game
    return v
