"""The cooperative-game protocol every Shapley-style workload implements.

The tutorial's central structural observation (§2–3 of Pradhan et al.)
is that feature attribution (SHAP/QII), data valuation (Data Shapley),
database explanations (Shapley of tuples) and causal attribution are all
*one* computation — a Shapley value — over different cooperative games.
This module pins down the game side of that statement:

* a **Game** is ``n_players`` plus a vectorized characteristic function
  ``value(coalitions)`` mapping a boolean ``(n_coalitions, n_players)``
  matrix to one value per coalition (the batched convention the whole
  library already speaks);
* optional capability attributes tell the shared evaluator
  (:mod:`repro.games.engine`) and estimators
  (:mod:`repro.games.estimators`) what is safe and what is cheap:
  ``deterministic`` gates the packed-bit value cache, ``guarded`` says
  whether evaluations already pass through a guarded predict function
  (and therefore already charge the ambient
  :class:`repro.robust.GuardScope`), ``rows_per_coalition`` drives
  memory-bounded chunk geometry, ``value_at`` exposes position-seeded
  evaluation for games whose randomness is keyed to the batch row,
  ``permutation_sampler`` restricts permutation walks (asymmetric
  Shapley's topological orders), and ``walk_contributions`` lets
  path-dependent games (G-Shapley's SGD passes, causal Shapley's
  direct/indirect split) own one whole permutation walk.

Concrete adapters for the five families live in
:mod:`repro.games.adapters`; estimators accept either a :class:`Game`
or a bare ``value_fn`` callable, so existing call sites keep working.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

__all__ = ["Game", "BaseGame", "FunctionGame", "as_game", "walk_masks"]


@runtime_checkable
class Game(Protocol):
    """A cooperative game in the batched-mask convention.

    Required: ``n_players`` and ``value``. Everything else is an
    optional capability read via ``getattr`` with a conservative
    default (see :class:`BaseGame` for the defaults).
    """

    n_players: int

    def value(self, coalitions: np.ndarray) -> np.ndarray:
        """One characteristic-function value per coalition row."""
        ...


class BaseGame:
    """Default capability surface shared by the concrete adapters.

    Attributes
    ----------
    player_names:
        Optional human-readable names, index-aligned with players.
    deterministic:
        ``True`` when ``value`` is a pure function of the mask, making
        packed-bit caching sound. Stochastic games (QII-style fresh
        draws per call) must stay ``False``.
    guarded:
        ``True`` when evaluation already flows through a guarded predict
        function (:func:`repro.core.base.as_predict_fn`), which charges
        the ambient :class:`~repro.robust.GuardScope` itself. ``False``
        makes the shared evaluator charge the scope and retry transient
        failures — pure-Python games (utility refits, relational
        queries) get PR 3's fault tolerance that way.
    self_evaluating:
        ``True`` when ``value`` already *is* a fully engineered value
        function (cached, chunked, span-instrumented) that must not be
        wrapped again — the feature-masking game delegates to
        :meth:`repro.core.coalition_engine.CoalitionEngine.value_function`
        and would otherwise double-count cache telemetry.
    rows_per_coalition:
        How many model/utility rows one coalition evaluation costs; the
        evaluator divides ``max_batch_rows`` by it to pick chunk sizes
        and charges ``rows_per_coalition`` budget rows per coalition.
    shardable:
        ``True`` when independent slices of the work (permutation walks,
        coalition-matrix rows) may be evaluated by separate workers —
        i.e. evaluation carries no cross-call mutable state. Stateful
        games (a stepping seed counter, an SGD pass) set ``False`` and
        the exec backend (:mod:`repro.exec`) falls back to the serial
        path for them, which is trivially bitwise-identical. Note
        sharding is additionally gated on ``deterministic``: a game
        drawing fresh randomness per call would give different draws
        per partitioning even if it carries no state.
    """

    n_players: int = 0
    player_names: list[str] | None = None
    deterministic: bool = False
    guarded: bool = False
    self_evaluating: bool = False
    rows_per_coalition: int = 1
    shardable: bool = True

    def value(self, coalitions: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def grand_value(self) -> float:
        """v(N) — evaluated directly unless an adapter knows it cheaper."""
        mask = np.ones((1, self.n_players), dtype=bool)
        return float(np.asarray(self.value(mask), dtype=float)[0])


class FunctionGame(BaseGame):
    """Wrap a bare batched ``value_fn`` callable as a :class:`Game`.

    The wrapper is deliberately capability-free (``deterministic=False``,
    ``guarded=True``): a raw callable promises nothing, so the evaluator
    neither caches it nor double-charges budgets the callable's own
    predict function may already be charging.
    """

    deterministic = False
    guarded = True
    self_evaluating = True

    def __init__(
        self,
        value_fn: Callable[[np.ndarray], np.ndarray],
        n_players: int,
        player_names: list[str] | None = None,
    ) -> None:
        self._value_fn = value_fn
        self.n_players = int(n_players)
        self.player_names = player_names

    def value(self, coalitions: np.ndarray) -> np.ndarray:
        return self._value_fn(coalitions)


def as_game(game_or_fn, n_players: int | None = None):
    """Normalize an estimator input: a :class:`Game` passes through,
    a bare callable is wrapped in :class:`FunctionGame` (which then
    requires ``n_players``)."""
    if hasattr(game_or_fn, "value") and hasattr(game_or_fn, "n_players"):
        return game_or_fn
    if not callable(game_or_fn):
        raise TypeError(
            f"expected a Game or a batched value function, got "
            f"{type(game_or_fn).__name__}"
        )
    if n_players is None:
        raise ValueError("n_players is required when passing a bare value_fn")
    return FunctionGame(game_or_fn, n_players)


def walk_masks(perm: np.ndarray, include_empty: bool = True) -> np.ndarray:
    """Prefix-coalition masks of one permutation walk.

    Row ``k`` contains the first ``k`` players of ``perm`` (with
    ``include_empty`` the first row is ∅, giving ``n+1`` rows), so
    consecutive differences of the evaluated values are the walk's
    marginal contributions.
    """
    perm = np.asarray(perm)
    n = perm.shape[0]
    masks = np.zeros((n + 1, n), dtype=bool)
    for pos, player in enumerate(perm):
        masks[pos + 1] = masks[pos]
        masks[pos + 1, player] = True
    return masks if include_empty else masks[1:]
