"""The shared Shapley estimator suite.

Four estimators cover every Shapley-style computation in the library;
each accepts either a :class:`repro.games.base.Game` (evaluated through
:func:`repro.games.engine.game_value_function`, i.e. with caching,
chunking, budgets and telemetry) or a bare batched ``value_fn``
(evaluated as-is, preserving the exact behaviour of the pre-games call
sites):

* :func:`exact_enumeration` — all ``2^n`` coalitions with factorial
  weights; the ground-truth oracle (moved here from
  ``shapley/exact.py``).
* :func:`permutation_estimator` — Castro-style permutation sampling,
  generalized to subsume every bespoke loop the repo used to carry:
  antithetic pairing (sampling SHAP), TMC truncation (Data Shapley),
  Beta(α, β) position weights (Beta Shapley), restricted permutation
  samplers (asymmetric Shapley's topological orders), and whole-walk
  delegation for path-dependent games (G-Shapley, causal Shapley).
* :func:`kernel_wls_estimator` — the Kernel SHAP weighted least squares
  solve (moved here from ``shapley/kernel.py``).
* :func:`stratified_estimator` — one player's value via stratified
  cardinality draws (distributional Shapley's one-sample estimator).

Two accumulation modes keep seeded **bitwise parity** with the legacy
loops: ``aggregate="mean_walks"`` stacks per-walk contribution vectors
and reports mean ± standard error exactly like
``shapley/sampling.py`` did; ``aggregate="sum_counts"`` keeps running
weighted sums and per-player counts exactly like the datavalue/causal
loops did (their accumulation order differs from stack-then-mean in the
last ulp, so the mode is part of the contract, not a cosmetic choice).

Execution backends (:mod:`repro.exec`): the permutation, exact and
kernel estimators accept ``backend=`` (default: ``REPRO_BACKEND``, then
serial) plus ``n_shards=``/``n_procs=``. Sharding follows the
shard/seed/reduce contract — all randomness is drawn in the parent from
the canonical stream before dispatch, workers evaluate contiguous
slices (permutation walks, or coalition-matrix rows with their *global*
positions for position-seeded games), and the parent re-accumulates
per-item results in global order — so any backend and shard count
yields **bitwise-identical** attributions to serial. Games that are
stochastic or stateful (``deterministic=False`` or ``shardable=False``)
and whole-walk games (``walk_contributions``) silently fall back to the
serial path, which satisfies the same identity trivially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from itertools import combinations
from math import comb, factorial

import numpy as np

from ..exec import in_worker, map_shards, plan_shards, resolve_backend, \
    resolve_n_procs
from ..obs import metrics
from ..obs.trace import enabled as _obs_enabled
from ..persist.protocol import register_serializable
from ..robust.errors import BudgetExceededError
from .base import as_game, walk_masks
from .engine import game_value_function

__all__ = [
    "EstimatorState",
    "PermutationEstimate",
    "all_coalitions",
    "exact_enumeration",
    "permutation_estimator",
    "kernel_wls_estimator",
    "solve_kernel_wls",
    "stratified_estimator",
    "shapley_kernel_weight",
]


def _resolve(game_or_fn, n_players, cache=None, max_batch_rows=None):
    """``(value_fn, n, game)`` for either input convention."""
    game = as_game(game_or_fn, n_players)
    v = game_value_function(game, cache=cache, max_batch_rows=max_batch_rows)
    return v, game.n_players, game


# -- sharded execution helpers ------------------------------------------------


def _shard_eligible(game, backend_name: str, n_items: int) -> bool:
    """Whether this work may be sharded without changing its outputs.

    The gate is conservative: only games that declare both
    ``deterministic`` (same mask → same value, whatever the partition)
    and ``shardable`` (no cross-call mutable state) qualify; everything
    else takes the serial path, which is the bitwise reference by
    definition. Bare ``FunctionGame`` wrappers promise neither, so
    legacy value-fn call sites are untouched.
    """
    return (
        backend_name != "serial"
        and n_items >= 2
        and getattr(game, "deterministic", False)
        and getattr(game, "shardable", True)
    )


def _mergeable_state(value_fn, game):
    """``(store, stateful)``: the runtime state workers must ship back.

    ``store`` is the packed-bit coalition cache behind the value
    function (either the games-evaluator store or a self-evaluating
    adapter's engine cache); ``stateful`` flags games exposing the
    ``export_shard_state``/``merge_shard_state`` pair (the data-value
    utility memo and its counters).
    """
    store = getattr(value_fn, "cache", None)
    if store is None:
        store = getattr(game, "cache", None)
    return store, hasattr(game, "export_shard_state")


def _capture_worker_state(payload, store, baseline_keys, game, stateful):
    """Worker-side: attach mergeable state to the shard payload.

    Only forked workers marshal anything — under the thread backend the
    store and the game are the parent's own objects and every mutation
    already landed. Cache entries ship as a delta against the keys the
    worker inherited at fork (idempotent to merge: deterministic games
    map each key to one value).
    """
    if not in_worker():
        return payload
    if store is not None:
        payload["cache_new"] = {
            k: v for k, v in store.values.items() if k not in baseline_keys
        }
    if stateful:
        payload["state_after"] = game.export_shard_state()
    return payload


def _merge_worker_state(payload, store, game, stateful, state_before):
    """Parent-side: fold one ok shard's marshalled state back in."""
    if payload.get("cache_new"):
        store.values.update(payload["cache_new"])
    if stateful and payload.get("state_after") is not None:
        game.merge_shard_state(state_before, payload["state_after"])


class _MatrixShardRunner:
    """Picklable shard runner: evaluate a row block of a coalition matrix.

    A module-level class (not a closure) so the spawn backend can pickle
    it: the game travels via its own ``__getstate__`` recipe and the
    value function — a bound method on the *same* game for
    self-evaluating adapters — rides the pickle memo, so the worker
    rebuilds exactly one game. The mergeable store is re-derived from
    the live objects inside :meth:`__call__`, never captured at
    construction: under spawn the rebuilt game's fresh cache is the one
    worker mutations must land on for the ``cache_new`` delta to ship
    back (a parent-side store reference would be an orphaned copy).
    """

    def __init__(self, value_fn, game, masks, positional):
        self.value_fn = value_fn
        self.game = game
        self.masks = masks
        self.positional = positional

    def __call__(self, bounds):
        lo, hi = bounds
        store, stateful = _mergeable_state(self.value_fn, self.game)
        baseline = (
            frozenset(store.values)
            if store is not None and in_worker()
            else ()
        )
        if self.positional:
            vals = self.value_fn(
                self.masks[lo:hi], positions=np.arange(lo, hi)
            )
        else:
            vals = self.value_fn(self.masks[lo:hi])
        payload = {"values": np.asarray(vals, dtype=float)}
        return _capture_worker_state(
            payload, store, baseline, self.game, stateful
        )


def _sharded_values(
    value_fn, game, masks, backend_name, n_shards, n_procs, seed=0
):
    """Evaluate a coalition matrix, sharded by contiguous row blocks.

    Workers for position-seeded games receive their rows' **global**
    indices as explicit positions, so the ``seed + position`` draws (and
    the ``(position, mask)`` cache keys) match what the unsharded batch
    would have produced — the reduce is then a plain concatenation in
    shard order. Falls back to one serial call when the game is not
    shard-eligible or the plan degenerates to a single shard.
    """
    if not _shard_eligible(game, backend_name, masks.shape[0]):
        return np.asarray(value_fn(masks), dtype=float)
    plan = plan_shards(
        masks.shape[0],
        n_shards if n_shards is not None else resolve_n_procs(n_procs),
        seed=seed,
    )
    if plan.n_shards < 2:
        return np.asarray(value_fn(masks), dtype=float)
    positional = hasattr(game, "value_at") and not getattr(
        game, "self_evaluating", False
    )
    store, stateful = _mergeable_state(value_fn, game)
    state_before = game.export_shard_state() if stateful else None
    run_shard = _MatrixShardRunner(value_fn, game, masks, positional)

    outcomes = map_shards(
        run_shard, list(plan.slices), backend=backend_name, n_procs=n_procs
    )
    chunks = []
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
        _merge_worker_state(outcome.value, store, game, stateful, state_before)
        chunks.append(outcome.value["values"])
    return np.concatenate(chunks)


# -- exact enumeration --------------------------------------------------------


def all_coalitions(n: int) -> list[tuple[int, ...]]:
    """Every subset of {0..n−1}, ordered by size then lexicographically."""
    out: list[tuple[int, ...]] = []
    for size in range(n + 1):
        out.extend(combinations(range(n), size))
    return out


def exact_enumeration(
    game_or_fn,
    n_players: int | None = None,
    cache: bool | None = None,
    backend: str | None = None,
    n_shards: int | None = None,
    n_procs: int | None = None,
) -> np.ndarray:
    """Exact Shapley values of a cooperative game.

    φ_i = Σ_{S ⊆ N∖{i}} |S|!(n−|S|−1)!/n! · (v(S ∪ {i}) − v(S)),
    computed literally over all 2^n coalitions. Exponential by design —
    this is the oracle the approximation experiments compare against.
    Under a non-serial ``backend`` the coalition matrix is evaluated in
    sharded row blocks (bitwise-identical values; see
    :func:`_sharded_values`); the factorial-weighted reduction is always
    parent-side.
    """
    value_fn, n_players, game = _resolve(game_or_fn, n_players, cache=cache)
    if n_players > 20:
        raise ValueError(
            f"exact Shapley over {n_players} players needs 2^{n_players} "
            "evaluations; use sampling or Kernel SHAP instead"
        )
    subsets = all_coalitions(n_players)
    masks = np.zeros((len(subsets), n_players), dtype=bool)
    for row, subset in enumerate(subsets):
        masks[row, list(subset)] = True
    values = _sharded_values(
        value_fn, game, masks, resolve_backend(backend), n_shards, n_procs
    )
    value_of = {subset: values[row] for row, subset in enumerate(subsets)}

    phi = np.zeros(n_players)
    n_fact = factorial(n_players)
    for i in range(n_players):
        others = [j for j in range(n_players) if j != i]
        for size in range(n_players):
            weight = factorial(size) * factorial(n_players - size - 1) / n_fact
            for subset in combinations(others, size):
                with_i = tuple(sorted(subset + (i,)))
                phi[i] += weight * (value_of[with_i] - value_of[subset])
    return phi


# -- permutation sampling -----------------------------------------------------


@register_serializable("games.EstimatorState")
@dataclass
class EstimatorState:
    """Resumable accumulation state of :func:`permutation_estimator`.

    An anytime-estimation handle: every estimate carries the state it
    ended in (``PermutationEstimate.state``), and passing it back via
    ``permutation_estimator(resume_state=...)`` continues the walk
    sequence from ``n_walks`` instead of restarting — the already-drawn
    permutations are re-drawn from the same seeded stream (cheap) and
    skipped, so a budget-exhausted partial estimate topped up to the
    full walk budget is **bitwise-identical** to an uninterrupted run.

    ``params`` pins what must match on resume (player count, seed,
    antithetic pairing, aggregation mode, position/truncation flavour);
    a mismatch raises ``ValueError`` rather than silently mixing
    incompatible walk streams. ``to_dict``/``from_dict`` round-trip the
    state through JSON-safe plain types for persistence across
    processes or runs.
    """

    n_walks: int
    aggregate: str
    contributions: list = field(default_factory=list)
    sums: np.ndarray | None = None
    counts: np.ndarray | None = None
    truncated_at: list = field(default_factory=list)
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "n_walks": int(self.n_walks),
            "aggregate": self.aggregate,
            "contributions": [np.asarray(c).tolist() for c in self.contributions],
            "sums": None if self.sums is None else np.asarray(self.sums).tolist(),
            "counts": (
                None if self.counts is None else np.asarray(self.counts).tolist()
            ),
            "truncated_at": [int(t) for t in self.truncated_at],
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EstimatorState":
        return cls(
            n_walks=int(d["n_walks"]),
            aggregate=d["aggregate"],
            contributions=[np.asarray(c, dtype=float)
                           for c in d.get("contributions", [])],
            sums=(
                None if d.get("sums") is None
                else np.asarray(d["sums"], dtype=float)
            ),
            counts=(
                None if d.get("counts") is None
                else np.asarray(d["counts"], dtype=float)
            ),
            truncated_at=list(d.get("truncated_at", [])),
            params=dict(d.get("params", {})),
        )


@dataclass
class PermutationEstimate:
    """Result of :func:`permutation_estimator`.

    ``std_err`` is per-player standard error over walks in
    ``mean_walks`` mode and ``None`` in ``sum_counts`` mode (where
    weighted/truncated walks are not identically distributed).
    ``diagnostics`` always carries the PR 3 convergence contract
    (``converged``/``n_walks_completed``/``n_walks_requested``/
    ``budget_error``) plus ``mean_truncation_position`` when truncation
    was active. ``state`` is the resumable accumulation handle —
    feed it back as ``resume_state=`` (typically after a budget
    interruption, with a larger or replenished budget) to continue.
    """

    values: np.ndarray
    std_err: np.ndarray | None
    diagnostics: dict = field(default_factory=dict)
    state: EstimatorState | None = None


def permutation_estimator(
    game_or_fn,
    n_players: int | None = None,
    n_permutations: int = 100,
    antithetic: bool = True,
    seed: int = 0,
    rng: np.random.Generator | None = None,
    permutation_sampler=None,
    position_weights: np.ndarray | None = None,
    truncation_tolerance: float | None = None,
    truncation_target: float | None = None,
    empty_value: float | None = None,
    aggregate: str = "mean_walks",
    min_count: float = 1.0,
    cache: bool | None = None,
    max_batch_rows: int | None = None,
    backend: str | None = None,
    n_shards: int | None = None,
    n_procs: int | None = None,
    resume_state: EstimatorState | dict | None = None,
) -> PermutationEstimate:
    """Estimate Shapley values (or semivalues) from permutation walks.

    Parameters
    ----------
    antithetic:
        Pair each permutation with its reverse (variance reduction for
        roughly symmetric games).
    permutation_sampler:
        ``sampler(rng) -> perm`` overriding uniform sampling; defaults
        to the game's own ``permutation_sampler`` when it has one
        (asymmetric Shapley restricts walks to topological orders).
    position_weights:
        Per-position weights ``w[k]`` applied to the marginal
        contribution made at walk position ``k`` (Beta Shapley);
        ``None`` means uniform Shapley.
    truncation_tolerance:
        When set, walks are scanned sequentially and stop early once
        ``|truncation_target − v(prefix)|`` falls below the tolerance
        (TMC-Shapley); the unscanned tail receives zero marginal
        contribution but still counts. ``truncation_target`` defaults
        to the grand-coalition value, evaluated once.
    empty_value:
        Known v(∅). When given, walks never evaluate the empty
        coalition (the datavalue convention); otherwise each walk's
        mask batch includes ∅ as its first row.
    aggregate:
        ``"mean_walks"`` (stack walks, mean ± stderr — the sampling-SHAP
        convention) or ``"sum_counts"`` (running weighted sums divided
        by per-player counts clamped at ``min_count`` — the
        datavalue/causal convention).
    min_count:
        Clamp for the ``sum_counts`` denominator (1.0 for TMC counts,
        1e-12 for Beta weight totals).
    backend:
        Execution backend (``serial``/``thread``/``process``/``spawn``;
        default ``REPRO_BACKEND``, then serial). Non-serial backends
        shard the walk batches across workers — the permutations
        themselves are all drawn in the parent first, and the per-walk
        contribution vectors are re-accumulated in global walk order,
        so the estimate is bitwise-identical to serial. Whole-walk,
        stochastic or stateful games fall back to serial silently;
        under ``spawn`` a runner whose game cannot pickle degrades to
        the thread pool with the same results.

    Budget exhaustion (:class:`~repro.robust.BudgetExceededError`)
    mid-estimate keeps the completed walks as a partial estimate
    (``diagnostics["converged"] = False``); a walk interrupted midway
    is discarded whole. If no walk completed, the error propagates.
    Under a sharded backend the parent's remaining budget is split per
    shard; on exhaustion the estimate keeps the global *prefix* of
    walks up to the first exhausted shard (serial-style prefix
    semantics — walks a later shard completed are dropped rather than
    leaving holes in the accumulation order).

    Resumption: ``resume_state=`` (an :class:`EstimatorState` or its
    ``to_dict`` form, usually taken from a previous call's
    ``PermutationEstimate.state``) restores the accumulated walks and
    continues the *same* seeded walk sequence — completed batches are
    re-drawn from the stream and skipped, a half-finished antithetic
    pair resumes at its second walk, and the final estimate is
    bitwise-identical to an uninterrupted run with the same total walk
    budget, on serial and sharded backends alike. Resuming requires the
    same design parameters (players, seed, antithetic, aggregate,
    weighting/truncation flavour); a mismatch raises ``ValueError``.
    Resume is only meaningful with the seeded stream — passing an
    explicit ``rng`` together with ``resume_state`` is rejected because
    the skipped draws could not be replayed from it.
    """
    if aggregate not in ("mean_walks", "sum_counts"):
        raise ValueError(
            f"aggregate must be mean_walks|sum_counts, got {aggregate!r}"
        )
    game = as_game(game_or_fn, n_players)
    n = game.n_players
    walk_fn = getattr(game, "walk_contributions", None)
    value_fn = (
        None
        if walk_fn is not None
        else game_value_function(game, cache=cache, max_batch_rows=max_batch_rows)
    )
    if rng is not None and resume_state is not None:
        raise ValueError(
            "resume_state requires the seeded stream; an explicit rng "
            "cannot replay the draws the completed walks consumed"
        )
    rng = rng if rng is not None else np.random.default_rng(seed)
    sampler = permutation_sampler or getattr(game, "permutation_sampler", None)
    if sampler is None:
        def sampler(r):
            return r.permutation(n)
    if position_weights is not None:
        position_weights = np.asarray(position_weights, dtype=float)
        if position_weights.shape[0] != n:
            raise ValueError("position_weights must have one entry per player")
    truncating = truncation_tolerance is not None and walk_fn is None
    if truncating and truncation_target is None:
        truncation_target = float(
            value_fn(np.ones((1, n), dtype=bool))[0]
        )

    pair = antithetic and n_permutations > 1
    n_batches = n_permutations // 2 if pair else n_permutations
    walks_per_batch = 2 if pair else 1

    params = {
        "n_players": n,
        "seed": seed,
        "antithetic": bool(antithetic),
        "aggregate": aggregate,
        "weighted": position_weights is not None,
        "truncating": bool(truncating),
    }
    if isinstance(resume_state, dict):
        resume_state = EstimatorState.from_dict(resume_state)
    if resume_state is not None:
        if resume_state.params and resume_state.params != params:
            raise ValueError(
                f"resume_state was produced under {resume_state.params}, "
                f"cannot continue with {params}"
            )

    def run_walk(p):
        """One walk → ``(contrib, local_counts, scanned)`` — the exact
        operations of the serial loop, shared with the shard runners
        (``scanned`` is ``None`` unless truncation was active)."""
        if walk_fn is not None:
            return np.asarray(walk_fn(p), dtype=float), np.ones(n), None
        return _run_one_walk(
            value_fn, p, empty_value, position_weights,
            truncating, truncation_target, truncation_tolerance,
        )

    contributions: list[np.ndarray] = []
    sums = np.zeros(n)
    counts = np.zeros(n)
    truncated_at: list[int] = []
    n_walks = 0
    start_walks = 0
    if resume_state is not None:
        start_walks = n_walks = int(resume_state.n_walks)
        contributions = [np.asarray(c, dtype=float)
                         for c in resume_state.contributions]
        if resume_state.sums is not None:
            sums = np.asarray(resume_state.sums, dtype=float).copy()
        if resume_state.counts is not None:
            counts = np.asarray(resume_state.counts, dtype=float).copy()
        truncated_at = list(resume_state.truncated_at)
    budget_error: BudgetExceededError | None = None
    # Per-walk convergence stream: each accumulated walk observes the
    # largest per-player shift of the running estimate into the
    # ``games.step_delta`` histogram (and bumps ``games.walks``), so the
    # exposition endpoint and the run ledger can see *how settled* an
    # estimate was, not just how long it took. Purely passive — the
    # estimate itself never reads these — and skipped when observability
    # is off.
    telemetry = _obs_enabled()
    running = np.zeros(n)
    if telemetry and n_walks:
        # Resumed estimates re-enter the step-delta stream at the
        # estimate they left off with, not at zero.
        running = (
            np.stack(contributions).mean(axis=0)
            if aggregate == "mean_walks"
            else sums / np.maximum(counts, min_count)
        )
    if telemetry:
        # Resolve the metric objects once, outside the per-walk path: the
        # registry lookup takes a lock, and accumulate runs per walk.
        walks_counter = metrics.counter("games.walks")
        step_histogram = metrics.histogram("games.step_delta")

    def accumulate(contrib, local_counts, scanned):
        nonlocal n_walks, sums, counts, running
        if scanned is not None:
            truncated_at.append(scanned)
        if aggregate == "mean_walks":
            contributions.append(contrib)
        else:
            sums += contrib
            counts += local_counts
        n_walks += 1
        if telemetry:
            if aggregate == "mean_walks":
                estimate = running + (contrib - running) / n_walks
            else:
                estimate = sums / np.maximum(counts, min_count)
            walks_counter.inc()
            step_histogram.observe(float(np.max(np.abs(estimate - running))))
            running = estimate

    backend_name = resolve_backend(backend)
    # Actual walks per executed batch (a lone antithetic permutation
    # still runs both directions, whatever the diagnostics contract
    # calls a "requested" walk), so resume lands on the right batch.
    skip_batches, mid_walks = divmod(start_walks, 2 if antithetic else 1)
    sharded = walk_fn is None and _shard_eligible(
        game, backend_name, n_batches - skip_batches
    )
    if sharded:
        budget_error = _run_sharded_walks(
            accumulate, sampler, rng, game, value_fn,
            n_batches, antithetic, backend_name, n_shards, n_procs, seed,
            empty_value, position_weights, truncating, truncation_target,
            truncation_tolerance, start_walks=start_walks,
        )
        if budget_error is not None and n_walks == 0:
            raise budget_error
    else:
        for b in range(n_batches):
            # Draw every batch's permutation — including ones a resumed
            # state already completed — so the stream stays in the exact
            # serial order; only the walk evaluation is skipped.
            perm = sampler(rng)
            if b < skip_batches:
                continue
            perms = [perm, perm[::-1]] if antithetic else [perm]
            if b == skip_batches and mid_walks:
                # A half-finished antithetic pair: its first walk is
                # already accumulated, resume at the reverse.
                perms = perms[mid_walks:]
            try:
                for p in perms:
                    accumulate(*run_walk(p))
            except BudgetExceededError as e:
                if n_walks == 0:
                    raise
                budget_error = e
                break

    diagnostics = {
        "converged": budget_error is None,
        "n_walks_completed": n_walks,
        "n_walks_requested": n_batches * walks_per_batch,
        "budget_error": None if budget_error is None else str(budget_error),
    }
    if truncated_at:
        diagnostics["mean_truncation_position"] = float(np.mean(truncated_at))
    state = EstimatorState(
        n_walks=n_walks,
        aggregate=aggregate,
        contributions=list(contributions),
        sums=sums if aggregate == "sum_counts" else None,
        counts=counts if aggregate == "sum_counts" else None,
        truncated_at=list(truncated_at),
        params=params,
    )
    if aggregate == "mean_walks":
        stacked = np.stack(contributions)
        phi = stacked.mean(axis=0)
        std_err = stacked.std(axis=0, ddof=1) / np.sqrt(stacked.shape[0]) \
            if stacked.shape[0] > 1 else np.zeros(n)
        return PermutationEstimate(phi, std_err, diagnostics, state)
    phi = sums / np.maximum(counts, min_count)
    return PermutationEstimate(phi, None, diagnostics, state)


def _run_one_walk(
    value_fn, p, empty_value, position_weights,
    truncating, truncation_target, truncation_tolerance,
):
    """One value-fn walk → ``(contrib, local_counts, scanned)``.

    The exact per-walk operations of the serial loop, extracted to
    module level so the picklable shard runner and the in-process
    ``run_walk`` closure share one body (whole-walk games never reach
    here — their walks stay serial behind ``walk_contributions``).
    """
    n = p.shape[0]
    if truncating:
        return _truncated_walk(
            value_fn, p, empty_value, position_weights,
            truncation_target, truncation_tolerance,
        )
    masks = walk_masks(p, include_empty=empty_value is None)
    values = np.asarray(value_fn(masks), dtype=float)
    if empty_value is None:
        diffs = values[1:] - values[:-1]
    else:
        diffs = np.empty(n)
        diffs[0] = values[0] - empty_value
        diffs[1:] = values[1:] - values[:-1]
    contrib = np.zeros(n)
    if position_weights is None:
        contrib[p] = diffs
        local_counts = np.ones(n)
    else:
        contrib[p] = position_weights * diffs
        local_counts = np.zeros(n)
        local_counts[p] = position_weights
    return contrib, local_counts, None


class _WalkShardRunner:
    """Picklable shard runner: evaluate a contiguous block of walks.

    Module-level for the same reason as :class:`_MatrixShardRunner` —
    the spawn backend pickles the runner, rebuilding the game (and the
    bound value function on it) in a fresh worker. All permutations are
    pre-drawn parent-side and ship as data; the mergeable store is
    re-derived from the live objects inside :meth:`__call__` so worker
    cache mutations land on the rebuilt cache that ships back.
    """

    def __init__(self, value_fn, game, perms, skip_batches, mid_walks,
                 antithetic, empty_value, position_weights, truncating,
                 truncation_target, truncation_tolerance):
        self.value_fn = value_fn
        self.game = game
        self.perms = perms
        self.skip_batches = skip_batches
        self.mid_walks = mid_walks
        self.antithetic = antithetic
        self.empty_value = empty_value
        self.position_weights = position_weights
        self.truncating = truncating
        self.truncation_target = truncation_target
        self.truncation_tolerance = truncation_tolerance

    def __call__(self, bounds):
        lo, hi = bounds
        store, stateful = _mergeable_state(self.value_fn, self.game)
        baseline = (
            frozenset(store.values)
            if store is not None and in_worker()
            else ()
        )
        walks, err = [], None
        try:
            for b in range(self.skip_batches + lo, self.skip_batches + hi):
                perm = self.perms[b]
                # `antithetic`, not the pair flag: n_permutations=1 with
                # antithetic=True runs 2 walks serially, and must here.
                batch = [perm, perm[::-1]] if self.antithetic else [perm]
                if b == self.skip_batches and self.mid_walks:
                    batch = batch[self.mid_walks:]
                for p in batch:
                    walks.append(_run_one_walk(
                        self.value_fn, p, self.empty_value,
                        self.position_weights, self.truncating,
                        self.truncation_target, self.truncation_tolerance,
                    ))
        except BudgetExceededError as e:
            err = {
                "message": str(e), "kind": e.kind,
                "spent": e.spent, "budget": e.budget,
            }
        payload = {"walks": walks, "error": err}
        return _capture_worker_state(
            payload, store, baseline, self.game, stateful
        )


def _run_sharded_walks(
    accumulate, sampler, rng, game, value_fn,
    n_batches, antithetic, backend_name, n_shards, n_procs, seed,
    empty_value, position_weights, truncating, truncation_target,
    truncation_tolerance, start_walks=0,
):
    """Shard the permutation walks; returns the budget error, if any.

    Seed parity: *every* permutation is drawn here, in the parent, from
    the caller's stream — the same ``sampler(rng)`` sequence the serial
    loop would consume — before anything is dispatched. Workers receive
    explicit permutations, never a generator. Reduce parity: shard
    payloads carry per-walk ``(contrib, local_counts, scanned)`` tuples
    and ``accumulate`` replays them in global walk order, so even the
    running-sum (``sum_counts``) association order matches serial
    exactly. Budget exhaustion inside a shard is marshalled as data;
    accumulation stops at the first exhausted shard (prefix semantics),
    but cache/utility state from *all* completed shards still merges —
    that work really happened and the counters should say so.

    Resume (``start_walks`` > 0): the full permutation stream is still
    drawn, but only the batches after the resumed walk count are
    sharded and evaluated — a half-finished antithetic pair's remaining
    walk runs in the first shard. Per-walk results are independent of
    the shard partition, so resuming re-joins the serial walk order
    bitwise no matter how the remaining batches split.
    """
    walks_per_batch = 2 if antithetic else 1
    skip_batches, mid_walks = divmod(start_walks, walks_per_batch)
    perms = [sampler(rng) for __ in range(n_batches)]
    remaining = n_batches - skip_batches
    if remaining <= 0:
        return None
    plan = plan_shards(
        remaining,
        n_shards if n_shards is not None else resolve_n_procs(n_procs),
        seed=seed,
    )
    store, stateful = _mergeable_state(value_fn, game)
    state_before = game.export_shard_state() if stateful else None
    run_shard = _WalkShardRunner(
        value_fn, game, perms, skip_batches, mid_walks, antithetic,
        empty_value, position_weights, truncating, truncation_target,
        truncation_tolerance,
    )

    def rebuild(err):
        return BudgetExceededError(
            err["message"], kind=err["kind"],
            spent=err["spent"], budget=err["budget"],
        )

    if plan.n_shards < 2:
        payload = run_shard((0, remaining))
        for walk in payload["walks"]:
            accumulate(*walk)
        return None if payload["error"] is None else rebuild(payload["error"])

    outcomes = map_shards(
        run_shard, list(plan.slices), backend=backend_name, n_procs=n_procs
    )
    budget_error = None
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
        payload = outcome.value
        _merge_worker_state(payload, store, game, stateful, state_before)
        if budget_error is None:
            for walk in payload["walks"]:
                accumulate(*walk)
            if payload["error"] is not None:
                budget_error = rebuild(payload["error"])
    return budget_error


def _truncated_walk(
    value_fn, perm, empty_value, position_weights, target, tolerance
):
    """One sequential walk with TMC early stopping.

    Evaluates prefixes one at a time (truncation decides after each),
    accumulating into walk-local buffers so an interrupted walk can be
    discarded whole. Each player is touched exactly once, so committing
    the buffers reproduces the legacy in-place accumulation bitwise.
    """
    n = perm.shape[0]
    contrib = np.zeros(n)
    local_counts = np.zeros(n)
    previous = empty_value
    if previous is None:
        previous = float(value_fn(np.zeros((1, n), dtype=bool))[0])
    mask = np.zeros(n, dtype=bool)
    scanned = n
    for position, player in enumerate(perm):
        mask[player] = True
        current = float(value_fn(mask[None, :])[0])
        if position_weights is None:
            contrib[player] = current - previous
            local_counts[player] = 1.0
        else:
            contrib[player] = position_weights[position] * (current - previous)
            local_counts[player] = position_weights[position]
        previous = current
        if abs(target - current) < tolerance:
            scanned = position + 1
            break
    # The unscanned tail contributes zero but still counts — truncation
    # is an estimate of ~0 marginals, not missing data.
    tail = perm[scanned:]
    if position_weights is None:
        local_counts[tail] = 1.0
    else:
        local_counts[tail] = position_weights[scanned:]
    return contrib, local_counts, scanned


# -- Kernel SHAP (weighted least squares) -------------------------------------

# Coalition enumeration asks for the same C(n, s) several times per size
# (budget check, weight, sampling probabilities); memoize both lookups.
_comb = lru_cache(maxsize=None)(comb)


@lru_cache(maxsize=None)
def shapley_kernel_weight(n: int, size: int) -> float:
    """The Shapley kernel π(S) for |S| = size (infinite at 0 and n)."""
    if size == 0 or size == n:
        return float("inf")
    return (n - 1) / (_comb(n, size) * size * (n - size))


def _enumerate_coalitions(
    n: int, budget: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Choose coalition rows and kernel weights under an evaluation budget.

    Returns ``(masks, weights)`` excluding the empty and grand coalitions.
    """
    masks: list[np.ndarray] = []
    weights: list[float] = []
    remaining = budget
    # Pair sizes (1, n−1), (2, n−2), ...; each pair shares a kernel weight.
    sizes = []
    for s in range(1, n // 2 + 1):
        sizes.append(s)
        if s != n - s:
            sizes.append(n - s)
    fully_enumerated: set[int] = set()
    for s in sizes:
        count = _comb(n, s)
        if count <= remaining:
            for subset in combinations(range(n), s):
                row = np.zeros(n, dtype=bool)
                row[list(subset)] = True
                masks.append(row)
                weights.append(shapley_kernel_weight(n, s))
            remaining -= count
            fully_enumerated.add(s)
        else:
            break
    leftover_sizes = [s for s in sizes if s not in fully_enumerated]
    if leftover_sizes and remaining > 0:
        probs = np.array([shapley_kernel_weight(n, s) * _comb(n, s)
                          for s in leftover_sizes])
        probs /= probs.sum()
        drawn = rng.choice(len(leftover_sizes), size=remaining, p=probs)
        for k in drawn:
            s = leftover_sizes[k]
            subset = rng.choice(n, size=s, replace=False)
            row = np.zeros(n, dtype=bool)
            row[subset] = True
            masks.append(row)
            # Sampled rows share equal weight within the leftover pool: the
            # sampling distribution already encodes the kernel.
            weights.append(1.0)
    return np.array(masks, dtype=bool), np.asarray(weights, dtype=float)


def solve_kernel_wls(
    masks: np.ndarray,
    weights: np.ndarray,
    values: np.ndarray,
    v_empty: float,
    v_full: float,
) -> np.ndarray:
    """The Kernel SHAP weighted least-squares solve, design → ``phi``.

    Exactly the estimator's closed-form step, factored out so the
    amortized batch path (one shared coalition design, many rows of
    values) can reuse it bitwise: imposes Σφ = v_full − v_empty by
    eliminating the last player, then solves the kernel-weighted normal
    equations with the same 1e-12 ridge.
    """
    n_players = masks.shape[1]
    # Impose Σφ = v_full − v_empty by eliminating the last player:
    # model y − z_last·(v_full − v_empty) = (Z_front − z_last)·φ_front.
    Z = masks.astype(float)
    y = values - v_empty
    total = v_full - v_empty
    z_last = Z[:, -1]
    A = Z[:, :-1] - z_last[:, None]
    b = y - z_last * total
    W = weights
    lhs = A.T @ (W[:, None] * A)
    rhs = A.T @ (W * b)
    phi_front = np.linalg.solve(lhs + 1e-12 * np.eye(n_players - 1), rhs)
    return np.append(phi_front, total - phi_front.sum())


def kernel_wls_estimator(
    game_or_fn,
    n_players: int | None = None,
    n_samples: int = 2048,
    seed: int = 0,
    cache: bool | None = None,
    backend: str | None = None,
    n_shards: int | None = None,
    n_procs: int | None = None,
) -> tuple[np.ndarray, float]:
    """Kernel SHAP estimate; returns ``(phi, base_value)``.

    Solves the Shapley-kernel weighted least squares problem with the
    efficiency constraint imposed exactly by variable elimination.
    ``n_samples`` bounds the number of coalition evaluations (in
    addition to the empty and grand coalitions, always evaluated).
    Under a non-serial ``backend`` the sampled coalition rows are
    evaluated in sharded blocks (coalition choice and the WLS solve stay
    parent-side, so the estimate is bitwise-identical to serial).
    """
    value_fn, n_players, game = _resolve(game_or_fn, n_players, cache=cache)
    rng = np.random.default_rng(seed)
    if n_players == 1:
        ends = value_fn(np.array([[False], [True]]))
        return np.array([float(ends[1] - ends[0])]), float(ends[0])
    masks, weights = _enumerate_coalitions(n_players, n_samples, rng)
    ends = value_fn(
        np.vstack([np.zeros(n_players, dtype=bool), np.ones(n_players, dtype=bool)])
    )
    v_empty, v_full = float(ends[0]), float(ends[1])
    values = _sharded_values(
        value_fn, game, masks, resolve_backend(backend), n_shards, n_procs,
        seed=seed,
    )
    phi = solve_kernel_wls(masks, weights, values, v_empty, v_full)
    return phi, v_empty


# -- stratified cardinality sampling ------------------------------------------


def stratified_estimator(
    game_or_fn,
    player: int,
    n_players: int | None = None,
    n_draws: int = 100,
    max_cardinality: int | None = None,
    seed: int = 0,
    rng: np.random.Generator | None = None,
    cache: bool | None = None,
) -> tuple[float, float]:
    """One player's Shapley value by stratified cardinality draws.

    Each draw picks a random coalition size m, a random m-subset of the
    other players, and records the player's marginal contribution to it
    — distributional Shapley's one-sample estimator of the average over
    cardinalities. Returns ``(value, standard_error)``.
    """
    value_fn, n, __ = _resolve(game_or_fn, n_players, cache=cache)
    if not 0 <= player < n:
        raise IndexError(player)
    rng = rng if rng is not None else np.random.default_rng(seed)
    others = np.array([i for i in range(n) if i != player])
    max_cardinality = max_cardinality or others.size
    contributions = np.zeros(n_draws)
    for t in range(n_draws):
        m = int(rng.integers(0, max_cardinality + 1))
        subset = rng.choice(others, size=m, replace=False)
        masks = np.zeros((2, n), dtype=bool)
        masks[0, subset] = True
        masks[0, player] = True
        masks[1, subset] = True
        vals = np.asarray(value_fn(masks), dtype=float)
        contributions[t] = vals[0] - vals[1]
    value = float(contributions.mean())
    stderr = float(contributions.std(ddof=1) / np.sqrt(n_draws)) \
        if n_draws > 1 else 0.0
    return value, stderr
