"""Shared coalition plans: draw the sampling design once per batch.

``explain_batch`` used to pay the full per-explanation setup for every
row — re-drawing the same seeded permutations, re-enumerating the same
Kernel SHAP coalitions, re-deduplicating the same walk masks — because
each row's ``explain`` started cold. A :class:`CoalitionPlan` hoists
everything that depends only on ``(n_players, budget, seed)`` out of the
per-row loop:

* the permutation walks (antithetic pairs included, in the exact order
  the serial estimator would consume them from ``default_rng(seed)``);
* the coalition masks those walks visit, deduplicated by packed-bit key
  in first-occurrence order (the same dedup the coalition value cache
  performs per row, so per-mask values are bitwise-identical);
* the walk → unique-mask index matrix that turns one fused value vector
  back into per-walk value sequences;
* for Kernel SHAP, the enumerated/sampled coalition rows and their
  kernel weights.

Plans are immutable after construction and contain no per-instance
state, so one plan serves every row of a batch *and* every shard of a
process-backend batch (forked workers inherit it read-only — it ships
once, not per shard). Amortization is observable: building a plan bumps
``coalition.plan.built``, and every row served from an existing plan
bumps ``coalition.plan.reused`` — the E42 bench and the ``/metrics``
endpoint report the hit rate as ``reused / (built + reused)``.

``REPRO_BATCH_PLAN=0`` kills the amortized path globally (explain_batch
falls back to the per-row loop), mirroring ``REPRO_COALITION_CACHE``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics
from .base import walk_masks

__all__ = [
    "CoalitionPlan",
    "resolve_batch_plan",
    "permutation_plan",
    "kernel_plan",
    "shared_plan",
    "mean_walks_reduce",
]

_BUILT = "coalition.plan.built"
_REUSED = "coalition.plan.reused"


def resolve_batch_plan(value: bool = True) -> bool:
    """Whether amortized batch planning is enabled.

    ``REPRO_BATCH_PLAN=0`` (or ``false``/``off``/``no``) force-disables
    the shared-plan path so ``explain_batch`` runs the per-row loop —
    the A/B lever the E42 benchmark and parity tests need. An explicit
    ``value=False`` at a call site always wins.
    """
    if not value:
        return False
    env = os.environ.get("REPRO_BATCH_PLAN", "").strip().lower()
    return env not in ("0", "false", "off", "no")


@dataclass(frozen=True)
class CoalitionPlan:
    """One batch's frozen sampling design, shared across rows and shards.

    Attributes
    ----------
    kind:
        ``"permutation"`` or ``"kernel"``.
    n_players:
        Feature count the plan was drawn for.
    unique_masks:
        ``(n_unique, n_players)`` boolean matrix of every distinct
        coalition the plan visits, in first-occurrence order.
    value_index:
        Integer matrix mapping the plan's logical evaluations onto rows
        of ``unique_masks``: shape ``(n_walks, n_players + 1)`` for
        permutation plans (each walk's ∅-to-grand mask sequence), shape
        ``(n_coalitions,)`` for kernel plans (``[∅, N, *sampled]``).
    walk_perms:
        Permutation plans only: ``(n_walks, n_players)`` player orders,
        antithetic reversals already interleaved in serial walk order.
    masks, weights:
        Kernel plans only: the enumerated/sampled coalition rows (the
        WLS design matrix, excluding ∅ and N) and their kernel weights.
    empty_index:
        Row of ``unique_masks`` holding the empty coalition.
    """

    kind: str
    n_players: int
    unique_masks: np.ndarray
    value_index: np.ndarray
    empty_index: int
    walk_perms: np.ndarray | None = None
    masks: np.ndarray | None = None
    weights: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    @property
    def n_unique(self) -> int:
        return int(self.unique_masks.shape[0])

    @property
    def n_walks(self) -> int:
        return 0 if self.walk_perms is None else int(self.walk_perms.shape[0])

    def mark_reused(self, n_rows: int) -> None:
        """Record ``n_rows`` explanations served from this shared plan."""
        if n_rows > 0:
            metrics.counter(_REUSED).inc(n_rows)


def _dedup_masks(
    mask_blocks: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate stacked masks by packed-bit key, first occurrence wins.

    Returns ``(unique_masks, index)`` where ``index`` maps each input
    row (in input order) to its row in ``unique_masks`` — exactly the
    follower bookkeeping the per-row coalition value cache performs, so
    evaluating ``unique_masks`` once and gathering through ``index``
    reproduces the cached per-row values bitwise.
    """
    stacked = np.concatenate(mask_blocks, axis=0)
    keys = np.packbits(stacked, axis=1)
    seen: dict[bytes, int] = {}
    unique_rows: list[int] = []
    index = np.empty(stacked.shape[0], dtype=np.intp)
    for i in range(stacked.shape[0]):
        key = keys[i].tobytes()
        slot = seen.get(key)
        if slot is None:
            slot = len(unique_rows)
            seen[key] = slot
            unique_rows.append(i)
        index[i] = slot
    return stacked[unique_rows], index


def permutation_plan(
    n_players: int,
    n_permutations: int = 100,
    antithetic: bool = True,
    seed: int = 0,
) -> CoalitionPlan:
    """Draw the permutation-sampling design once.

    The walks (and therefore the masks) are exactly what
    :func:`repro.games.estimators.permutation_estimator` consumes from
    ``default_rng(seed)`` in serial order: per batch one fresh
    permutation, followed by its reverse when ``antithetic``.
    """
    n = int(n_players)
    rng = np.random.default_rng(seed)
    pair = antithetic and n_permutations > 1
    n_batches = n_permutations // 2 if pair else n_permutations
    walks: list[np.ndarray] = []
    for __ in range(n_batches):
        perm = rng.permutation(n)
        walks.append(perm)
        if antithetic:
            walks.append(perm[::-1])
    blocks = [walk_masks(p) for p in walks]
    unique, index = _dedup_masks(blocks)
    value_index = index.reshape(len(walks), n + 1)
    metrics.counter(_BUILT).inc()
    return CoalitionPlan(
        kind="permutation",
        n_players=n,
        unique_masks=unique,
        value_index=value_index,
        empty_index=int(value_index[0, 0]),
        walk_perms=np.array(walks, dtype=np.intp),
        meta={"n_permutations": n_permutations, "antithetic": antithetic,
              "seed": seed},
    )


def kernel_plan(n_players: int, n_samples: int = 2048, seed: int = 0
                ) -> CoalitionPlan:
    """Draw the Kernel SHAP coalition design once.

    Coalition rows and weights come from the same
    ``_enumerate_coalitions(n, budget, default_rng(seed))`` stream the
    per-row estimator consumes, so the WLS design is identical for
    every row of the batch. ``value_index`` is laid out
    ``[∅, N, *masks]`` to match the estimator's evaluation order.
    """
    # Local import: estimators imports the engine machinery this module
    # must stay independent of (plans are pure data).
    from .estimators import _enumerate_coalitions

    n = int(n_players)
    rng = np.random.default_rng(seed)
    masks, weights = _enumerate_coalitions(n, n_samples, rng)
    ends = np.vstack([np.zeros(n, dtype=bool), np.ones(n, dtype=bool)])
    unique, index = _dedup_masks([ends, masks])
    metrics.counter(_BUILT).inc()
    return CoalitionPlan(
        kind="kernel",
        n_players=n,
        unique_masks=unique,
        value_index=index,
        empty_index=int(index[0]),
        masks=masks,
        weights=weights,
        meta={"n_samples": n_samples, "seed": seed},
    )


def shared_plan(owner, key: tuple, builder, n_rows: int) -> CoalitionPlan:
    """Fetch/build a plan in ``owner``'s plan store and count amortization.

    One explainer instance keeps one plan per parameter key, so
    consecutive ``explain_batch`` calls (and the aggregation helpers on
    top of them) never re-draw the design. The first row of a batch that
    *builds* the plan is the build; every other row is a reuse.
    """
    store = owner.__dict__.setdefault("_plan_store", {})
    plan = store.get(key)
    if plan is None:
        plan = builder()
        store[key] = plan
        plan.mark_reused(n_rows - 1)
    else:
        plan.mark_reused(n_rows)
    return plan


def mean_walks_reduce(
    walk_values: np.ndarray, walk_perms: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-walk value sequences → ``(phi, std_err)``, bitwise-stable.

    ``walk_values`` is ``(n_walks, n + 1)`` — each walk's ∅-to-grand
    coalition values; ``walk_perms`` is ``(n_walks, n)``. Builds the
    identical ``(n_walks, n)`` contribution matrix the serial estimator
    stacks walk-by-walk, then applies the same mean/stderr reduction,
    so the result matches ``aggregate="mean_walks"`` bit for bit.
    """
    n_walks, n = walk_perms.shape
    diffs = walk_values[:, 1:] - walk_values[:, :-1]
    contrib = np.zeros((n_walks, n))
    contrib[np.arange(n_walks)[:, None], walk_perms] = diffs
    phi = contrib.mean(axis=0)
    std_err = (
        contrib.std(axis=0, ddof=1) / np.sqrt(n_walks)
        if n_walks > 1
        else np.zeros(n)
    )
    return phi, std_err
