"""Game adapters: the five Shapley families as cooperative games.

Each adapter reduces one of the repo's workloads to the
:class:`repro.games.base.Game` protocol so the shared estimators in
:mod:`repro.games.estimators` (and through them the caching, chunking,
budget and telemetry machinery of :mod:`repro.games.engine`) apply
uniformly:

=======================  ====================================================
Adapter                  Players / value of a coalition S
=======================  ====================================================
FeatureMaskingGame       features / E_b[f(x_S, b_{N∖S})] over a background
                         sample (kernel, sampling, QII and conditional SHAP)
DataValueGame            training points / validation score of a model
                         retrained on S (Data, Beta, distributional Shapley)
TupleProvenanceGame      endogenous tuples / query answer on S plus the
                         exogenous context (Shapley of tuples, repairs)
TopologicalGame          features / E[f(X) | do(X_S = x_S)] under an SCM,
                         walks restricted to topological orders (ASV)
InterventionalGame       features / do()-interventional value with the
                         direct/indirect decomposition (causal Shapley)
GradientGame             training points / path-dependent SGD walk value
                         (G-Shapley)
=======================  ====================================================

Games over guarded predict functions declare ``guarded=True`` (budgets
are charged at the model layer); pure-Python games (utility refits,
relational queries, SGD passes) leave it ``False`` and get budget
charging and transient retries from the shared evaluator instead.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.coalition_engine import CoalitionEngine
from ..models.metrics import accuracy
from ..persist.protocol import register_serializable
from .base import BaseGame

__all__ = [
    "FeatureMaskingGame",
    "DataValueGame",
    "TupleProvenanceGame",
    "TopologicalGame",
    "InterventionalGame",
    "GradientGame",
    "sample_topological_order",
]


@register_serializable("games.FeatureMaskingGame")
class FeatureMaskingGame(BaseGame):
    """Features vs. the interventional masking value function.

    Thin, deliberately: coalition evaluation delegates to
    :meth:`repro.core.coalition_engine.CoalitionEngine.value_function`,
    which already owns broadcast masking, chunking, the packed-bit cache
    and span telemetry — so the game is ``self_evaluating`` and the
    games evaluator passes it through untouched (wrapping it again would
    double-count cache counters).

    Transport: ``__getstate__`` reduces the game to its rebuild recipe —
    the underlying *model* (via the predict function's
    ``__repro_spec__``), the instance, the already-subsampled background
    and the engine knobs. ``__setstate__`` re-normalizes the model and
    rebuilds the engine and value function, so a spawn worker (or a
    persisted copy) gets an equivalent game whose fresh, empty cache is
    rebuilt lazily — values are deterministic, so worker evaluations are
    bitwise-identical and new cache entries ship back as deltas. A raw
    predict callable without a spec rides along as-is; if it cannot
    pickle, the spawn backend degrades to threads.
    """

    deterministic = True
    guarded = True
    self_evaluating = True

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        x: np.ndarray,
        background: np.ndarray | None = None,
        engine: CoalitionEngine | None = None,
        max_background: int = 100,
        max_batch_rows: int | None = None,
        cache: bool = True,
    ) -> None:
        if engine is None:
            if background is None:
                raise ValueError(
                    "FeatureMaskingGame needs a background sample or an engine"
                )
            engine = CoalitionEngine(
                background,
                max_background=max_background,
                max_batch_rows=max_batch_rows,
            )
        self.engine = engine
        self.x = np.asarray(x, dtype=float).ravel()
        self.n_players = self.x.shape[0]
        self.rows_per_coalition = engine.n_background
        self._predict_fn = predict_fn
        self._cache_flag = cache
        self._v = engine.value_function(predict_fn, self.x, cache=cache)

    @property
    def cache(self):
        return self._v.cache

    def value(self, coalitions: np.ndarray) -> np.ndarray:
        return self._v(coalitions)

    def __getstate__(self) -> dict:
        spec = getattr(self._predict_fn, "__repro_spec__", None)
        return {
            "model": spec["model"] if spec else self._predict_fn,
            "output": spec["output"] if spec else "auto",
            "guard": spec["guard"] if spec else None,
            "x": self.x,
            "background": self.engine.background,
            "max_batch_rows": self.engine.max_batch_rows,
            "chunk_retries": self.engine.chunk_retries,
            "cache": self._cache_flag,
        }

    def __setstate__(self, state: dict) -> None:
        # Deferred import: core.base imports the exec layer at module
        # init, which would cycle through games at package-import time.
        from ..core.base import as_predict_fn

        background = np.atleast_2d(np.asarray(state["background"],
                                              dtype=float))
        engine = CoalitionEngine(
            background,
            # Already subsampled at original construction; keep verbatim.
            max_background=background.shape[0],
            max_batch_rows=state["max_batch_rows"],
            chunk_retries=state["chunk_retries"],
        )
        predict_fn = as_predict_fn(
            state["model"], state["output"], guard=state["guard"]
        )
        self.__init__(predict_fn, state["x"], engine=engine,
                      cache=state["cache"])

    def to_dict(self) -> dict:
        """Persist the rebuild recipe; needs a registered model.

        A game over a bare closure has no serializable model — the
        encode layer rejects it with a :class:`PayloadError` naming the
        offending type.
        """
        return self.__getstate__()

    @classmethod
    def from_dict(cls, payload: dict) -> "FeatureMaskingGame":
        obj = cls.__new__(cls)
        obj.__setstate__(payload)
        return obj


class DataValueGame(BaseGame):
    """Training points vs. the retraining utility U(S).

    Wraps a :class:`repro.datavalue.utility.UtilityFunction` (or any
    callable taking an index array). The utility's own prefix memo and
    the evaluator's packed-bit mask cache stack: the memo deduplicates
    across estimators sharing one utility, the mask cache short-circuits
    the index conversion entirely.
    """

    deterministic = True
    guarded = False

    def __init__(self, utility) -> None:
        self.utility = utility
        self.n_players = int(utility.n_points)

    @property
    def empty_value(self) -> float:
        return self.utility.empty_score

    def grand_value(self) -> float:
        return self.utility.full_score()

    def export_shard_state(self):
        """Snapshot the utility's memo + counters for a shard-merge.

        The parent captures this *before* dispatch; each worker captures
        it again *after* running its shard. :meth:`merge_shard_state`
        then folds the worker's memo entries in (idempotent — values are
        deterministic per index set) and re-counts the evaluation/cache
        counters as deltas against the pre-dispatch baseline, so
        ``datavalue.cache.hits`` / ``.misses`` and ``n_evaluations``
        aggregate instead of staying process-local (the PR 5 undercount
        fix).
        """
        u = self.utility
        return {
            "memo": dict(getattr(u, "_cache", {})),
            "n_evaluations": int(getattr(u, "n_evaluations", 0)),
            "cache_hits": int(getattr(u, "cache_hits", 0)),
            "cache_misses": int(getattr(u, "cache_misses", 0)),
        }

    def merge_shard_state(self, before, after) -> None:
        """Fold one worker's utility state back in (see export)."""
        u = self.utility
        if hasattr(u, "_cache"):
            u._cache.update(after["memo"])
        for attr in ("n_evaluations", "cache_hits", "cache_misses"):
            delta = after[attr] - before[attr]
            if delta > 0 and hasattr(u, attr):
                setattr(u, attr, getattr(u, attr) + delta)

    def value(self, coalitions: np.ndarray) -> np.ndarray:
        coalitions = np.atleast_2d(np.asarray(coalitions, dtype=bool))
        out = np.zeros(coalitions.shape[0])
        for row, mask in enumerate(coalitions):
            out[row] = self.utility(np.flatnonzero(mask))
        return out


class TupleProvenanceGame(BaseGame):
    """Endogenous tuples vs. the query answer on the sub-database.

    The value of S is ``query`` evaluated on the relation containing S
    plus every exogenous tuple — the cooperative game of Livshits et
    al.'s Shapley-of-tuples and of Deutch et al.'s repair-responsibility
    (where ``query`` counts FD violations).
    """

    deterministic = True
    guarded = False

    def __init__(self, relation, query, endogenous: list[int] | None = None
                 ) -> None:
        if endogenous is None:
            endogenous = list(range(len(relation)))
        self.relation = relation
        self.query = query
        self.endogenous = list(endogenous)
        endo = set(self.endogenous)
        self.exogenous = [i for i in range(len(relation)) if i not in endo]
        self.n_players = len(self.endogenous)
        self.player_names = [f"t{i}" for i in self.endogenous]

    def value(self, masks: np.ndarray) -> np.ndarray:
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        out = np.zeros(masks.shape[0])
        relation = self.relation
        for row, mask in enumerate(masks):
            keep = sorted(
                self.exogenous
                + [self.endogenous[j] for j in range(self.n_players)
                   if mask[j]]
            )
            # subset() shares the schema/semiring and skips per-row
            # validation — the hot allocation of coalition evaluation.
            out[row] = float(self.query(relation.subset(keep)))
        return out


def sample_topological_order(
    parents_of: Callable[[str], list[str]],
    feature_order: list[str],
    rng: np.random.Generator,
) -> np.ndarray:
    """A random linear extension of a DAG over the listed features.

    Kahn's algorithm with uniform random tie-breaking; only edges among
    the listed features constrain the order.
    """
    index = {name: j for j, name in enumerate(feature_order)}
    remaining_parents = {
        name: {p for p in parents_of(name) if p in index}
        for name in feature_order
    }
    available = [name for name, ps in remaining_parents.items() if not ps]
    order: list[int] = []
    placed: set[str] = set()
    while available:
        pick = available.pop(rng.integers(0, len(available)))
        order.append(index[pick])
        placed.add(pick)
        for name in feature_order:
            if name in placed or name in available:
                continue
            if remaining_parents[name] <= placed:
                available.append(name)
    if len(order) != len(feature_order):
        raise RuntimeError("DAG over the features is not acyclic")
    return np.asarray(order)


class TopologicalGame(BaseGame):
    """Features vs. an SCM value function, walks in topological order.

    Asymmetric Shapley values are the uniform-Shapley estimator with the
    permutation distribution restricted to linear extensions of the
    causal DAG — expressed here as a ``permutation_sampler`` the shared
    estimator picks up automatically.

    When the value function is position-seeded (the default
    interventional one draws with ``seed + row``), the game exposes
    ``value_at`` and declares itself deterministic, so the evaluator
    caches by ``(walk position, mask)`` — every walk re-evaluates ∅ and
    the short prefixes, and those now hit the cache with values bitwise
    identical to the legacy loop's. A custom ``value_fn`` without
    position support stays uncached and is evaluated per walk exactly
    as before.
    """

    guarded = True

    def __init__(
        self,
        scm,
        predict_fn: Callable[[np.ndarray], np.ndarray] | None,
        feature_order: list[str],
        x: np.ndarray,
        n_samples: int = 400,
        seed: int = 0,
        value_fn=None,
    ) -> None:
        self.scm = scm
        self.feature_order = list(feature_order)
        self.x = np.asarray(x, dtype=float).ravel()
        self.n_players = len(self.feature_order)
        self.player_names = list(self.feature_order)
        self.seed = seed
        if value_fn is None:
            from ..causal.values import interventional_value_function

            value_fn = interventional_value_function(
                scm, predict_fn, self.feature_order, self.x,
                n_samples=n_samples, seed=seed,
            )
        self._v = value_fn
        if getattr(value_fn, "supports_positions", False):
            self.deterministic = True
            self.value_at = self._value_at

    def permutation_sampler(self, rng: np.random.Generator) -> np.ndarray:
        return sample_topological_order(
            self.scm.parents, self.feature_order, rng
        )

    def value(self, coalitions: np.ndarray) -> np.ndarray:
        return self._v(coalitions)

    def _value_at(self, positions: np.ndarray, coalitions: np.ndarray
                  ) -> np.ndarray:
        return self._v(coalitions, positions=positions)


class InterventionalGame(BaseGame):
    """Causal Shapley's game, owning the direct/indirect decomposition.

    Heskes et al. split each marginal contribution into a direct part
    (plug x_i into the model under the old intervention) and an indirect
    part (the do(X_i = x_i) shift of i's descendants). Both need *two*
    SCM expectations per walk step with a global seed counter, so the
    game implements ``walk_contributions`` — the shared estimator hands
    it whole permutations and the game accumulates ``direct_sums`` /
    ``indirect_sums`` exactly as the legacy loop did.

    The stepping seed counter makes evaluation order *part of the
    semantics*, so the game is not shardable: workers evaluating
    disjoint walks would each start from their own counter copy and
    diverge from the serial draw sequence. The exec backend serial-falls
    back (bitwise-identical by construction).
    """

    guarded = True
    deterministic = False
    shardable = False

    def __init__(
        self,
        scm,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        feature_order: list[str],
        x: np.ndarray,
        n_samples: int = 400,
        seed: int = 0,
    ) -> None:
        self.scm = scm
        self.predict_fn = predict_fn
        self.feature_order = list(feature_order)
        self.x = np.asarray(x, dtype=float).ravel()
        self.n_players = len(self.feature_order)
        self.player_names = list(self.feature_order)
        self.n_samples = n_samples
        self.seed = seed
        self._counter = 0
        self.direct_sums = np.zeros(self.n_players)
        self.indirect_sums = np.zeros(self.n_players)
        self.n_walks = 0

    def _expectation(
        self,
        interventions: dict[str, float],
        plug_in: dict[int, float],
        seed: int,
    ) -> float:
        """E[f(X̃)] where X ~ do(interventions) and X̃ overrides columns."""
        values = self.scm.sample(self.n_samples, seed=seed,
                                 interventions=interventions)
        X = np.column_stack([values[name] for name in self.feature_order])
        for j, value in plug_in.items():
            X[:, j] = value
        return float(np.mean(self.predict_fn(X)))

    def value(self, coalitions: np.ndarray) -> np.ndarray:
        """Plain interventional v(S) (consumes seed-counter draws)."""
        coalitions = np.atleast_2d(np.asarray(coalitions, dtype=bool))
        out = np.zeros(coalitions.shape[0])
        for row, mask in enumerate(coalitions):
            interventions = {
                self.feature_order[j]: float(self.x[j])
                for j in range(self.n_players)
                if mask[j]
            }
            out[row] = self._expectation(
                interventions, {}, seed=self.seed + self._counter
            )
            self._counter += 1
        return out

    def walk_contributions(self, perm: np.ndarray) -> np.ndarray:
        contrib = np.zeros(self.n_players)
        coalition: dict[str, float] = {}
        plugged: dict[int, float] = {}
        v_prev = self._expectation(
            coalition, plugged, seed=self.seed + self._counter
        )
        self._counter += 1
        for player in perm:
            name = self.feature_order[player]
            # Direct: plug x_i into the model under the old intervention.
            v_direct = self._expectation(
                coalition, {**plugged, player: float(self.x[player])},
                seed=self.seed + self._counter,
            )
            self._counter += 1
            # Full: actually intervene, shifting descendants too.
            coalition[name] = float(self.x[player])
            plugged[player] = float(self.x[player])
            v_full = self._expectation(
                coalition, plugged, seed=self.seed + self._counter
            )
            self._counter += 1
            self.direct_sums[player] += v_direct - v_prev
            self.indirect_sums[player] += v_full - v_direct
            contrib[player] = v_full - v_prev
            v_prev = v_full
        self.n_walks += 1
        return contrib

    def base_value(self) -> float:
        """v(∅) at the *current* seed counter (the legacy convention:
        the base is drawn after all walks, so its draws depend on the
        number of expectations consumed)."""
        return self._expectation({}, {}, seed=self.seed + self._counter)


class GradientGame(BaseGame):
    """G-Shapley's path-dependent game over training points.

    One permutation walk is one online-SGD epoch: each point's marginal
    contribution is the validation-metric change caused by its own
    gradient step. The walk is inherently sequential and stateful, so
    the game owns it via ``walk_contributions`` — and is not shardable
    for the same reason (the exec backend serial-falls back).
    """

    guarded = False
    deterministic = False
    shardable = False

    def __init__(
        self,
        model_factory,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        learning_rate: float = 0.05,
        metric=accuracy,
    ) -> None:
        self.model_factory = model_factory
        self.X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
        self.y_train = np.asarray(y_train).ravel()
        self.X_val = X_val
        self.y_val = y_val
        self.learning_rate = learning_rate
        self.metric = metric
        self.n_players = self.X_train.shape[0]
        self.classes = np.unique(self.y_train)
        if self.classes.size != 2:
            raise ValueError("gradient_shapley supports binary classification")
        # A throwaway fit fixes the parameter dimensionality and class order.
        n = self.n_players
        template = model_factory()
        template.fit(self.X_train[:10] if n >= 10 else self.X_train,
                     self.y_train[:10] if n >= 10 else self.y_train)
        self.n_params = template.params.shape[0]

    def value(self, coalitions: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            "G-Shapley's value is path-dependent (one SGD step per point "
            "in walk order); use walk_contributions via the permutation "
            "estimator"
        )

    def walk_contributions(self, perm: np.ndarray) -> np.ndarray:
        contrib = np.zeros(self.n_players)
        # Start each pass from zero parameters without an initial fit.
        model = self.model_factory()
        model.classes_ = self.classes
        model.set_params_vector(np.zeros(self.n_params))
        previous = float(self.metric(self.y_val, model.predict(self.X_val)))
        for point in perm:
            g = model.grad(self.X_train[point : point + 1],
                           self.y_train[point : point + 1])[0]
            model.set_params_vector(model.params - self.learning_rate * g)
            current = float(self.metric(self.y_val, model.predict(self.X_val)))
            contrib[point] = current - previous
            previous = current
        return contrib
