"""Fault tolerance: typed errors, guarded execution, fault injection.

The tutorial's post-hoc explainers are services that hammer an opaque
``predict_fn`` — the component that actually fails under load (flaky
endpoints, NaN blowups, latency spikes). This package makes the
explanation runtime survive that instead of crashing:

``errors``
    Typed exception hierarchy (:class:`ReproError` down to
    :class:`PartialBatchError`) replacing bare numpy blowups.
``guard``
    :func:`guard_predict_fn`, composed inside
    :func:`repro.core.base.as_predict_fn`: output validation
    (shape/finiteness policies), capped-exponential retry of transient
    failures, and per-explanation wall-clock deadlines + model-query
    budgets (``REPRO_RETRIES``, ``REPRO_BACKOFF``, ``REPRO_DEADLINE_S``,
    ``REPRO_QUERY_BUDGET``). On budget exhaustion, sampling-based
    explainers degrade to partial, convergence-flagged estimates.
``faults``
    :class:`FaultyModel`, a deterministic seeded fault injector
    (exceptions, NaN/Inf, wrong shapes, latency) for tests and the E38
    benchmark.

Counters ``robust.retries``, ``robust.rows_failed``,
``robust.budget_exhausted`` (and friends) export through
:mod:`repro.obs.metrics`; retries also roll up through spans.
"""

from .errors import (
    BatchRowError,
    BudgetExceededError,
    InputValidationError,
    ModelEvaluationError,
    NonFiniteOutputError,
    OutputShapeError,
    PartialBatchError,
    ReproError,
    TransientModelError,
)
from .guard import (
    GuardConfig,
    GuardScope,
    check_instance,
    compose_deadline,
    current_scope,
    envelope_remaining_s,
    guard_predict_fn,
    guard_scope,
    remaining_s,
    request_envelope,
    resolve_backoff,
    resolve_deadline_s,
    resolve_query_budget,
    resolve_retries,
    seed_backoff_jitter,
)
from .faults import FaultyModel

__all__ = [
    "ReproError",
    "InputValidationError",
    "ModelEvaluationError",
    "NonFiniteOutputError",
    "OutputShapeError",
    "BudgetExceededError",
    "PartialBatchError",
    "TransientModelError",
    "BatchRowError",
    "GuardConfig",
    "GuardScope",
    "guard_predict_fn",
    "guard_scope",
    "current_scope",
    "remaining_s",
    "request_envelope",
    "envelope_remaining_s",
    "compose_deadline",
    "seed_backoff_jitter",
    "check_instance",
    "resolve_retries",
    "resolve_backoff",
    "resolve_deadline_s",
    "resolve_query_budget",
    "FaultyModel",
]
