"""Deterministic fault injection for models under test and benchmark.

:class:`FaultyModel` wraps any model (or predict callable) and injects
the production failure modes the guarded runtime must survive, at
configurable per-call rates:

* **exceptions** — :class:`TransientModelError`, the guard's retryable
  marker (a flaky endpoint that 500s);
* **NaN/Inf outputs** — a random subset of the returned entries is
  corrupted (numerical blowups, bad feature pipelines);
* **wrong-shape returns** — the last output row is dropped (a batch
  endpoint that truncates);
* **synthetic latency** — a sleep before answering (tail-latency
  spikes, for deadline tests).

Everything is driven by one seeded :class:`numpy.random.Generator`, so
the *sequence* of faults is a pure function of the seed and the call
order — the determinism the E38 benchmark and the seeded tests rely on.
A retried call advances the stream, which is exactly the behaviour of a
flaky service: the retry is a fresh draw.

The wrapper is itself a bare callable marked ``__repro_metered__``
(its inner model is normalized *with* the meter), so
``as_predict_fn(FaultyModel(...))`` composes only the guard on top and
model-query accounting stays single-counted.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from .errors import TransientModelError
from .guard import seed_backoff_jitter

__all__ = ["FaultyModel"]

_FAULT_KINDS = ("error", "nan", "shape", "latency")


class FaultyModel:
    """Seeded fault-injecting wrapper around a model or predict callable.

    Parameters
    ----------
    model:
        Anything :func:`repro.core.base.as_predict_fn` accepts.
    error_rate / nan_rate / shape_rate / latency_rate:
        Per-call probabilities of each fault kind (disjoint: one draw
        decides the call's fate, so the total fault rate is their sum,
        which must be ≤ 1).
    nan_fraction:
        Fraction of output entries corrupted on a ``nan`` fault (at
        least one entry).
    latency_s:
        Sleep duration on a ``latency`` fault (the call still answers
        correctly afterwards).
    seed:
        Seeds the fault stream; same seed + same call sequence = same
        faults.

    Attributes
    ----------
    calls:
        Total calls observed.
    fault_counts:
        ``{kind: count}`` of injected faults.
    fault_log:
        ``(call_index, kind)`` tuples, in order — the seeded tests
        assert this is reproducible.
    """

    def __init__(
        self,
        model,
        error_rate: float = 0.0,
        nan_rate: float = 0.0,
        shape_rate: float = 0.0,
        latency_rate: float = 0.0,
        nan_fraction: float = 0.25,
        latency_s: float = 0.01,
        seed: int = 0,
        output: str = "auto",
    ) -> None:
        rates = (error_rate, nan_rate, shape_rate, latency_rate)
        if any(r < 0 for r in rates) or sum(rates) > 1.0 + 1e-12:
            raise ValueError(
                "fault rates must be non-negative and sum to at most 1, "
                f"got {dict(zip(_FAULT_KINDS, rates))}"
            )
        # Lazy import: robust must stay importable before repro.core
        # (core.base itself imports this package).
        from ..core.base import as_predict_fn

        # Inner fn is metered but NOT guarded: the guard belongs to the
        # consumer that wraps this FaultyModel.
        self._inner = as_predict_fn(model, output, guard=False)
        self.rates = dict(zip(_FAULT_KINDS, rates))
        self.nan_fraction = float(nan_fraction)
        self.latency_s = float(latency_s)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self.calls = 0
        self.fault_counts = {kind: 0 for kind in _FAULT_KINDS}
        self.fault_log: list[tuple[int, str]] = []
        # as_predict_fn must not stack a second meter on this wrapper.
        self.__repro_metered__ = True
        # Fault injection is active: make retry backoff jitter a pure
        # function of the seed so fault-injected runs stay reproducible.
        seed_backoff_jitter(seed)

    def _draw_fault(self, n_out: int) -> tuple[str | None, np.ndarray | None]:
        """Decide this call's fate; one uniform draw keeps the stream flat."""
        with self._lock:
            index = self.calls
            self.calls += 1
            u = float(self._rng.random())
            edge = 0.0
            kind = None
            for name in _FAULT_KINDS:
                edge += self.rates[name]
                if u < edge:
                    kind = name
                    break
            corrupt = None
            if kind == "nan":
                n_bad = max(1, int(round(self.nan_fraction * n_out)))
                corrupt = self._rng.choice(n_out, size=min(n_bad, n_out),
                                           replace=False)
            if kind is not None:
                self.fault_counts[kind] += 1
                self.fault_log.append((index, kind))
        return kind, corrupt

    def __call__(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        kind, corrupt = self._draw_fault(X.shape[0])
        if kind == "error":
            raise TransientModelError(
                f"injected transient failure (call {self.calls - 1}, "
                f"seed {self.seed})"
            )
        if kind == "latency":
            time.sleep(self.latency_s)
        out = np.asarray(self._inner(X), dtype=float).ravel()
        if kind == "nan":
            out = out.copy()
            out[corrupt] = np.nan
            return out
        if kind == "shape" and out.shape[0] > 0:
            return out[:-1]
        return out

    def reset(self) -> None:
        """Rewind the fault stream to the seeded origin (and clear stats)."""
        with self._lock:
            self._rng = np.random.default_rng(self.seed)
            self.calls = 0
            self.fault_counts = {kind: 0 for kind in _FAULT_KINDS}
            self.fault_log.clear()
        seed_backoff_jitter(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rates = {k: v for k, v in self.rates.items() if v}
        return f"FaultyModel(seed={self.seed}, rates={rates}, calls={self.calls})"
