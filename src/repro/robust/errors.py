"""Typed exceptions for the fault-tolerant explanation runtime.

The tutorial frames post-hoc explainers as services that repeatedly
query an opaque model — exactly the component that fails in production.
Before this hierarchy existed a flaky ``predict_fn`` surfaced as a bare
``RuntimeError`` deep inside a numpy reshape, a NaN output silently
corrupted a Shapley regression, and one poisoned row in
``explain_batch`` threw away every completed explanation. Every failure
mode now has a type a caller can catch and a payload that preserves the
work already done:

``ReproError``
    Root of everything the library raises on purpose.
``InputValidationError``
    The *caller's* data is malformed (wrong-width instance, empty batch,
    non-finite feature values). Subclasses :class:`ValueError` so
    pre-existing ``except ValueError`` call sites keep working.
``ModelEvaluationError``
    The black-box model failed after the guard exhausted its retries;
    carries the attempt count and chains the final cause.
``NonFiniteOutputError`` / ``OutputShapeError``
    The model *returned* instead of raising, but the output is unusable
    (NaN/Inf entries, wrong row count). Both are evaluation failures.
``BudgetExceededError``
    A wall-clock deadline (``REPRO_DEADLINE_S``) or model-query budget
    (``REPRO_QUERY_BUDGET``) ran out. Sampling-based explainers catch
    this and degrade to a partial estimate; enumeration-based ones
    propagate it.
``PartialBatchError``
    ``explain_batch`` completed some rows and lost others; ``partial``
    holds the completed explanations (``None`` at failed positions) and
    ``errors`` the per-row failure records, so a caller can recover
    everything that succeeded.
``TransientModelError``
    The marker exception for *retryable* model failures — what a flaky
    endpoint wrapper (or :class:`repro.robust.faults.FaultyModel`)
    should raise to request a retry from the guard.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ReproError",
    "InputValidationError",
    "ModelEvaluationError",
    "NonFiniteOutputError",
    "OutputShapeError",
    "BudgetExceededError",
    "PartialBatchError",
    "TransientModelError",
    "BatchRowError",
]


class ReproError(Exception):
    """Base class for every deliberate failure raised by the library."""


class InputValidationError(ReproError, ValueError):
    """The caller's input is malformed (shape, emptiness, finiteness)."""


class ModelEvaluationError(ReproError):
    """The black-box model could not produce a usable output.

    Parameters
    ----------
    attempts:
        How many times the guarded predict function tried (1 = no
        retries were attempted or allowed).
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


class NonFiniteOutputError(ModelEvaluationError):
    """The model returned NaN/Inf entries and the policy forbids them."""


class OutputShapeError(ModelEvaluationError):
    """The model returned the wrong number of outputs for its input."""


class TransientModelError(ReproError):
    """A retryable model failure (flaky endpoint, injected fault).

    The guard retries these with capped exponential backoff; anything
    not in the configured transient set fails fast instead.
    """


class BudgetExceededError(ReproError):
    """A wall-clock deadline or model-query budget ran out.

    Parameters
    ----------
    kind:
        ``"queries"`` (row budget) or ``"deadline"`` (wall clock).
    spent / budget:
        Rows spent vs. the row budget, or seconds elapsed vs. the
        deadline, depending on ``kind``.
    """

    def __init__(self, message: str, kind: str = "queries",
                 spent: float = 0.0, budget: float = 0.0) -> None:
        super().__init__(message)
        self.kind = kind
        self.spent = spent
        self.budget = budget


@dataclass
class BatchRowError:
    """Structured record of one failed row inside ``explain_batch``."""

    index: int
    error: BaseException

    @property
    def error_type(self) -> str:
        return type(self.error).__name__

    def to_dict(self) -> dict:
        """JSON-safe summary (the exception object itself is not kept)."""
        return {
            "index": self.index,
            "error_type": self.error_type,
            "message": str(self.error),
        }


class PartialBatchError(ReproError):
    """``explain_batch`` lost rows; the completed ones are recoverable.

    Attributes
    ----------
    partial:
        One entry per input row: the finished explanation, or ``None``
        where that row failed.
    errors:
        :class:`BatchRowError` records for the failed rows.
    """

    def __init__(self, partial: list, errors: list[BatchRowError]) -> None:
        first = errors[0] if errors else None
        message = (
            f"{len(errors)}/{len(partial)} rows failed"
            + (f"; first: row {first.index} "
               f"{first.error_type}: {first.error}" if first else "")
            + " (completed rows are in .partial; "
            "pass return_errors=True to opt into partial results)"
        )
        super().__init__(message)
        self.partial = partial
        self.errors = errors

    @property
    def completed_indices(self) -> list[int]:
        return [i for i, r in enumerate(self.partial) if r is not None]
