"""Guarded model execution: validation, retries, deadlines, budgets.

:func:`guard_predict_fn` is composed inside
:func:`repro.core.base.as_predict_fn`, directly above the
:mod:`repro.obs` model-eval meter, so **every** normalized predict
function in the library passes through it. For each model call it

* validates the output — one finite float per input row. A wrong-length
  return is retried (a flaky service returning garbage), and non-finite
  entries follow the configured ``on_nonfinite`` policy: ``"raise"``
  (default, :class:`NonFiniteOutputError`), ``"requery"`` (re-ask the
  model, then raise), or ``"impute"`` (replace bad entries with the
  finite mean of the same batch, falling back to
  ``GuardConfig.impute_value``);
* retries *transient* failures (:class:`TransientModelError`,
  connection/timeout errors) with capped exponential backoff
  (``REPRO_RETRIES`` attempts, ``REPRO_BACKOFF`` base seconds) and
  **full jitter**: each sleep is a uniform draw in ``[0, capped delay]``
  so concurrent retries against the same flaky model de-synchronize
  instead of herding (deterministic sleeps re-align every waiter onto
  the same retry schedule). The jitter stream is seeded whenever fault
  injection is active (:class:`repro.robust.faults.FaultyModel` calls
  :func:`seed_backoff_jitter` with its own seed), keeping seeded test
  runs reproducible. Non-transient exceptions fail fast as
  :class:`ModelEvaluationError` — a deterministic numpy broadcast bug
  does not deserve three retries;
* enforces the ambient :class:`GuardScope`'s wall-clock deadline
  (``REPRO_DEADLINE_S``) and model-query row budget
  (``REPRO_QUERY_BUDGET``), raising :class:`BudgetExceededError` when
  either runs out. Sampling-based explainers catch that and return a
  partial, convergence-flagged estimate instead of dying.

Scoping: budgets are **per explanation**. ``Explainer.__init_subclass__``
wraps every ``explain``/``explain_batch`` in :func:`guard_scope`, which
pins a fresh :class:`GuardScope` on a contextvar — so each row of a
batch gets its own deadline and row budget, including on the thread-pool
path (worker rows run under copied contexts). Rows spent line up with
the :mod:`repro.obs` model-eval meter because the guard sits
immediately above it and charges the same row counts.

Telemetry: ``robust.retries``, ``robust.nonfinite``, ``robust.imputed``
and ``robust.budget_exhausted`` counters export through
:mod:`repro.obs.metrics`; each *successful* model call also times into
the ``model.latency_ms`` histogram; retries additionally roll up through open
spans (``Span.retries``), so an ``explain_batch`` span reports the total
retry bill of its rows.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs import metrics, trace
from ..persist.protocol import Serializable, register_serializable
from .errors import (
    BudgetExceededError,
    InputValidationError,
    ModelEvaluationError,
    NonFiniteOutputError,
    OutputShapeError,
    ReproError,
    TransientModelError,
)

__all__ = [
    "DEFAULT_RETRIES",
    "DEFAULT_BACKOFF_S",
    "BACKOFF_CAP_S",
    "GuardConfig",
    "GuardScope",
    "guard_scope",
    "push_scope",
    "current_scope",
    "remaining_s",
    "request_envelope",
    "envelope_remaining_s",
    "compose_deadline",
    "seed_backoff_jitter",
    "guard_predict_fn",
    "check_instance",
    "resolve_retries",
    "resolve_backoff",
    "resolve_deadline_s",
    "resolve_query_budget",
]

DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_S = 0.05
BACKOFF_CAP_S = 2.0

# Exception types the guard treats as transient (retryable) by default.
TRANSIENT_DEFAULT: tuple = (
    TransientModelError,
    ConnectionError,
    TimeoutError,
    OSError,
)

_RETRIES = "robust.retries"
_NONFINITE = "robust.nonfinite"
_IMPUTED = "robust.imputed"
_BUDGET_EXHAUSTED = "robust.budget_exhausted"


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def resolve_retries(value: int | None = None) -> int:
    """Transient-failure retry count: explicit > ``REPRO_RETRIES`` > 2."""
    if value is None:
        value = _env_int("REPRO_RETRIES")
    return DEFAULT_RETRIES if value is None else max(0, int(value))


def resolve_backoff(value: float | None = None) -> float:
    """Base backoff seconds: explicit > ``REPRO_BACKOFF`` > 0.05."""
    if value is None:
        value = _env_float("REPRO_BACKOFF")
    return DEFAULT_BACKOFF_S if value is None else max(0.0, float(value))


def resolve_deadline_s(value: float | None = None) -> float | None:
    """Per-explanation wall-clock deadline: explicit > ``REPRO_DEADLINE_S``.

    ``None`` (the default) means no deadline; non-positive values are
    treated as unset.
    """
    if value is None:
        value = _env_float("REPRO_DEADLINE_S")
    if value is None or value <= 0:
        return None
    return float(value)


def resolve_query_budget(value: int | None = None) -> int | None:
    """Per-explanation row budget: explicit > ``REPRO_QUERY_BUDGET``.

    ``None`` (the default) means unlimited; non-positive values are
    treated as unset.
    """
    if value is None:
        value = _env_int("REPRO_QUERY_BUDGET")
    if value is None or value <= 0:
        return None
    return int(value)


@register_serializable("robust.GuardConfig")
@dataclass
class GuardConfig(Serializable):
    """Knobs for one guarded predict function / explainer.

    Every ``None`` field falls back to its environment variable at call
    time (so tests and the CLI can flip ``REPRO_*`` without rebuilding
    explainers), then to the library default.

    Persistence note: ``transient`` (exception classes) and ``sleep``
    (a callable) are ephemeral — a revived config carries the library
    defaults for both, which is the equivalent-copy contract.
    """

    retries: int | None = None          # REPRO_RETRIES, default 2
    backoff_s: float | None = None      # REPRO_BACKOFF, default 0.05
    deadline_s: float | None = None     # REPRO_DEADLINE_S, default off
    query_budget: int | None = None     # REPRO_QUERY_BUDGET, default off
    on_nonfinite: str = "raise"         # raise | requery | impute
    impute_value: float | None = None   # fallback when a whole batch is bad
    transient: tuple = TRANSIENT_DEFAULT
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    __persist_init__ = ("retries", "backoff_s", "deadline_s", "query_budget",
                        "on_nonfinite", "impute_value")

    def __post_init__(self) -> None:
        if self.on_nonfinite not in ("raise", "requery", "impute"):
            raise ValueError(
                f"on_nonfinite must be raise|requery|impute, "
                f"got {self.on_nonfinite!r}"
            )


class GuardScope:
    """Per-explanation budget state (deadline + model-query rows)."""

    __slots__ = ("t0", "deadline_s", "query_budget", "rows_spent", "retries")

    def __init__(self, deadline_s: float | None, query_budget: int | None
                 ) -> None:
        self.t0 = time.monotonic()
        self.deadline_s = deadline_s
        self.query_budget = query_budget
        self.rows_spent = 0
        self.retries = 0

    def elapsed_s(self) -> float:
        return time.monotonic() - self.t0

    def remaining_s(self) -> float | None:
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed_s()

    def check(self, rows_next: int) -> None:
        """Raise :class:`BudgetExceededError` if ``rows_next`` won't fit."""
        remaining = self.remaining_s()
        if remaining is not None and remaining <= 0:
            metrics.counter(_BUDGET_EXHAUSTED).inc()
            raise BudgetExceededError(
                f"deadline of {self.deadline_s:.3f}s exceeded "
                f"({self.elapsed_s():.3f}s elapsed)",
                kind="deadline",
                spent=self.elapsed_s(),
                budget=self.deadline_s,
            )
        if (
            self.query_budget is not None
            and self.rows_spent + rows_next > self.query_budget
        ):
            metrics.counter(_BUDGET_EXHAUSTED).inc()
            raise BudgetExceededError(
                f"model-query budget of {self.query_budget} rows exceeded "
                f"({self.rows_spent} spent, {rows_next} requested)",
                kind="queries",
                spent=self.rows_spent,
                budget=self.query_budget,
            )


_SCOPE: contextvars.ContextVar[GuardScope | None] = contextvars.ContextVar(
    "repro_robust_guard_scope", default=None
)


def current_scope() -> GuardScope | None:
    """The innermost open guard scope on this context, or ``None``."""
    return _SCOPE.get()


def remaining_s() -> float | None:
    """Remaining wall-clock budget of the ambient scope, in seconds.

    ``None`` means unbounded — either no scope is open on this context
    or the open scope carries no deadline. Contextvars are per-thread
    (and per copied context), so concurrent request threads each read
    their *own* scope's remainder; ``tests/test_robust.py`` pins down
    that two overlapping scopes on different threads never see each
    other's budget.
    """
    scope = _SCOPE.get()
    if scope is None:
        return None
    return scope.remaining_s()


_ENVELOPE: contextvars.ContextVar[GuardScope | None] = contextvars.ContextVar(
    "repro_robust_request_envelope", default=None
)


@contextlib.contextmanager
def request_envelope(deadline_s: float | None,
                     query_budget: int | None = None):
    """Open an outer *request* budget that nested guard scopes clip to.

    The serve layer opens one envelope per request at arrival time.
    Unlike :func:`guard_scope` — where nested scopes deliberately reset
    (each row of a batch budgets independently) — the envelope is
    *composed into* every scope opened within its extent: a scope's
    deadline becomes ``min(its own deadline, envelope remaining)``. The
    remaining time is measured from envelope open, so seconds spent in
    the admission queue are seconds the explanation no longer has.
    """
    scope = GuardScope(resolve_deadline_s(deadline_s),
                       resolve_query_budget(query_budget))
    token = _ENVELOPE.set(scope)
    try:
        yield scope
    finally:
        _ENVELOPE.reset(token)


def envelope_remaining_s() -> float | None:
    """Remaining wall-clock of the ambient request envelope, if any."""
    envelope = _ENVELOPE.get()
    if envelope is None:
        return None
    return envelope.remaining_s()


def compose_deadline(deadline_s: float | None) -> float | None:
    """The tightest of a requested deadline and every ambient budget.

    Returns ``min(deadline_s, ambient scope remaining, request-envelope
    remaining)``, treating ``None`` as unbounded everywhere. This is
    the deadline a *nested* scope should open with: the serve layer
    relies on it so a request's queue wait eats into the compute budget
    (the explanation's scope gets the request deadline *minus* time
    already spent), and an inner explanation can never outlive the
    envelope that carries it.
    """
    candidates = [
        value
        for value in (
            None if deadline_s is None else float(deadline_s),
            remaining_s(),
            envelope_remaining_s(),
        )
        if value is not None
    ]
    return min(candidates) if candidates else None


@contextlib.contextmanager
def guard_scope(config: GuardConfig | None | bool = None):
    """Open a fresh per-explanation budget scope.

    Entered automatically around every ``explain``/``explain_batch`` by
    the explainer base class; nesting replaces the ambient scope (each
    row of a batch budgets independently). ``config=False`` disables
    budget enforcement for the dynamic extent.
    """
    if config is False:
        token = _SCOPE.set(None)
        try:
            yield None
        finally:
            _SCOPE.reset(token)
        return
    cfg = config if isinstance(config, GuardConfig) else None
    deadline = resolve_deadline_s(cfg.deadline_s if cfg else None)
    # An ambient request envelope (the serve layer's per-request budget)
    # clips every scope opened inside it: the fresh scope gets at most
    # the envelope's *remaining* wall clock, so time spent queueing is
    # time the computation no longer has.
    envelope_left = envelope_remaining_s()
    if envelope_left is not None:
        deadline = (
            envelope_left if deadline is None
            else min(deadline, envelope_left)
        )
    scope = GuardScope(
        deadline,
        resolve_query_budget(cfg.query_budget if cfg else None),
    )
    token = _SCOPE.set(scope)
    try:
        yield scope
    finally:
        _SCOPE.reset(token)


@contextlib.contextmanager
def push_scope(scope: GuardScope | None):
    """Install an already-built scope as the ambient one.

    Unlike :func:`guard_scope`, which constructs a fresh scope from a
    config, this pins an *existing* :class:`GuardScope` object — the
    exec-backend shard runners use it to run each shard under its split
    of the parent budget (the split share was computed before dispatch,
    the worker just has to live inside it). ``None`` disables budget
    enforcement for the extent, same as ``guard_scope(False)``.
    """
    token = _SCOPE.set(scope)
    try:
        yield scope
    finally:
        _SCOPE.reset(token)


def _note_retry(scope: GuardScope | None) -> None:
    metrics.counter(_RETRIES).inc()
    if scope is not None:
        scope.retries += 1
    active = trace.current_span()
    if active is not None:
        active.add_retries(1)


# Retry-jitter stream. Unseeded by default (each process de-synchronizes
# naturally); FaultyModel seeds it on construction/reset so fault-injected
# runs draw a reproducible sleep sequence.
_jitter_lock = threading.Lock()
_jitter_rng = random.Random()


def seed_backoff_jitter(seed: int | None) -> None:
    """(Re)seed the retry-jitter stream; ``None`` returns it to entropy.

    Called by :class:`repro.robust.faults.FaultyModel` whenever fault
    injection is activated or reset, so seeded tests and the E38/E43
    benchmarks observe a deterministic backoff schedule even though
    production retries are fully jittered.
    """
    global _jitter_rng
    with _jitter_lock:
        _jitter_rng = random.Random(seed) if seed is not None else random.Random()


def _backoff_sleep(cfg: GuardConfig, backoff: float, failures: int,
                   scope: GuardScope | None) -> None:
    """Full-jitter exponential backoff, clipped to the remaining deadline.

    The capped exponential ``backoff · 2^(failures−1)`` is the *ceiling*
    of a uniform draw, not the sleep itself ("full jitter", AWS
    architecture-blog style): N concurrent callers retrying the same
    flaky model spread over the window instead of thundering back in
    lockstep at identical offsets.
    """
    cap = min(backoff * (2.0 ** (failures - 1)), BACKOFF_CAP_S)
    with _jitter_lock:
        delay = _jitter_rng.uniform(0.0, cap) if cap > 0 else 0.0
    if scope is not None:
        remaining = scope.remaining_s()
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))
    if delay > 0:
        cfg.sleep(delay)


def _n_rows(X) -> int:
    shape = getattr(X, "shape", None)
    if shape is None:
        return len(X)
    return 1 if len(shape) <= 1 else int(shape[0])


def guard_predict_fn(fn, config: GuardConfig | None | bool = None):
    """Wrap a (metered) predict function with the guarded-execution layer.

    Idempotent (a guarded function passes through unchanged) and marked
    ``__repro_metered__`` so re-normalization through ``as_predict_fn``
    never stacks another meter on top. ``config=False`` skips guarding
    entirely — the escape hatch the E38 benchmark uses to price the
    guard at 0% faults.
    """
    if config is False:
        return fn
    if getattr(fn, "__repro_guarded__", False):
        return fn
    cfg = config if isinstance(config, GuardConfig) else GuardConfig()

    def guarded(X):
        n_rows = _n_rows(X)
        retries = resolve_retries(cfg.retries)
        backoff = resolve_backoff(cfg.backoff_s)
        scope = _SCOPE.get()
        failures = 0
        while True:
            if scope is not None:
                scope.check(n_rows)
            try:
                # Successful attempts feed the model-latency histogram
                # (observe_duration skips the failed ones by design).
                with metrics.observe_duration("model.latency_ms"):
                    out = np.asarray(fn(X), dtype=float).ravel()
            except (BudgetExceededError, InputValidationError):
                raise
            except cfg.transient as e:
                failures += 1
                if failures > retries:
                    raise ModelEvaluationError(
                        f"model evaluation failed after {failures} attempts "
                        f"({retries} retries): {type(e).__name__}: {e}",
                        attempts=failures,
                    ) from e
                _note_retry(scope)
                _backoff_sleep(cfg, backoff, failures, scope)
                continue
            except ReproError:
                raise
            except Exception as e:
                # Deterministic failures (shape bugs, type errors) are not
                # retried: the same inputs would fail the same way.
                raise ModelEvaluationError(
                    f"model evaluation failed: {type(e).__name__}: {e}",
                    attempts=failures + 1,
                ) from e
            if scope is not None:
                scope.rows_spent += n_rows
            if out.shape[0] != n_rows:
                failures += 1
                if failures > retries:
                    raise OutputShapeError(
                        f"model returned {out.shape[0]} outputs for "
                        f"{n_rows} rows (after {failures} attempts)",
                        attempts=failures,
                    )
                _note_retry(scope)
                _backoff_sleep(cfg, backoff, failures, scope)
                continue
            finite = np.isfinite(out)
            if finite.all():
                return out
            n_bad = int((~finite).sum())
            metrics.counter(_NONFINITE).inc(n_bad)
            if cfg.on_nonfinite == "requery" and failures < retries:
                failures += 1
                _note_retry(scope)
                _backoff_sleep(cfg, backoff, failures, scope)
                continue
            if cfg.on_nonfinite == "impute" or (
                cfg.on_nonfinite == "requery" and cfg.impute_value is not None
            ):
                if finite.any():
                    baseline = float(out[finite].mean())
                elif cfg.impute_value is not None:
                    baseline = float(cfg.impute_value)
                else:
                    raise NonFiniteOutputError(
                        f"model returned {n_bad}/{out.shape[0]} non-finite "
                        "outputs and no finite entries to impute from "
                        "(set GuardConfig.impute_value)",
                        attempts=failures + 1,
                    )
                metrics.counter(_IMPUTED).inc(n_bad)
                out = out.copy()
                out[~finite] = baseline
                return out
            raise NonFiniteOutputError(
                f"model returned {n_bad}/{out.shape[0]} non-finite outputs "
                f"(after {failures + 1} attempts; policy="
                f"{cfg.on_nonfinite!r})",
                attempts=failures + 1,
            )

    guarded.__repro_guarded__ = True
    guarded.__repro_metered__ = True  # the meter sits immediately below
    guarded.__wrapped__ = fn
    guarded.guard_config = cfg
    return guarded


def check_instance(x, n_features: int | None = None, name: str = "x"
                   ) -> np.ndarray:
    """Validate one explained instance; returns it as a 1-D float array.

    Raises :class:`InputValidationError` (a ``ValueError``) for inputs
    that previously died as cryptic numpy broadcast errors deep inside a
    value function: the wrong feature count, an empty instance,
    unconvertible entries, or non-finite feature values.
    """
    try:
        arr = np.asarray(x, dtype=float)
    except (TypeError, ValueError) as e:
        raise InputValidationError(
            f"{name} is not convertible to a float array: {e}"
        ) from e
    arr = arr.ravel()
    if arr.size == 0:
        raise InputValidationError(f"{name} is empty")
    if n_features is not None and arr.size != n_features:
        raise InputValidationError(
            f"{name} has {arr.size} features, expected {n_features}"
        )
    if not np.isfinite(arr).all():
        raise InputValidationError(
            f"{name} contains non-finite entries at positions "
            f"{np.flatnonzero(~np.isfinite(arr)).tolist()}"
        )
    return arr
