"""Terminal rendering for explanation objects.

Every explanation type gets a compact, dependency-free textual rendering
— signed bar charts for attributions, rule cards, change tables for
counterfactuals — so examples, logs and CLI output share one look.
"""

from __future__ import annotations

import numpy as np

from .core.explanation import (
    CounterfactualExplanation,
    DataAttribution,
    FeatureAttribution,
    RuleExplanation,
)

__all__ = ["render_attribution", "render_rule", "render_counterfactual",
           "render_data_attribution", "render"]


def render_attribution(att: FeatureAttribution, top: int = 8,
                       width: int = 28) -> str:
    """Signed horizontal bar chart of the top-|value| features."""
    order = att.ranking()[:top]
    peak = max(float(np.abs(att.values).max()), 1e-12)
    name_width = max((len(att.feature_names[i]) for i in order), default=4)
    lines = [f"[{att.method or 'attribution'}]"]
    if att.prediction is not None:
        lines[0] += f"  prediction={att.prediction:.4g}"
        if att.base_value:
            lines[0] += f"  base={att.base_value:.4g}"
    half = width // 2
    for i in order:
        value = float(att.values[i])
        bar_len = int(round(abs(value) / peak * half))
        if value >= 0:
            bar = " " * half + "|" + "█" * bar_len
        else:
            bar = " " * (half - bar_len) + "█" * bar_len + "|"
        lines.append(
            f"  {att.feature_names[i]:>{name_width}} {bar:<{width + 1}} "
            f"{value:+.4g}"
        )
    return "\n".join(lines)


def render_rule(rule: RuleExplanation) -> str:
    """Multi-line rule card."""
    lines = [f"[{rule.method or 'rule'}]"]
    if rule.predicates:
        lines.append("  IF   " + str(rule.predicates[0]))
        for predicate in rule.predicates[1:]:
            lines.append("  AND  " + str(predicate))
    else:
        lines.append("  IF   TRUE")
    lines.append(f"  THEN outcome = {rule.outcome:g}")
    lines.append(
        f"       precision {rule.precision:.3f} | coverage {rule.coverage:.3f}"
    )
    return "\n".join(lines)


def render_counterfactual(cf: CounterfactualExplanation,
                          max_options: int = 3) -> str:
    """Change tables for the first few counterfactual options."""
    lines = [
        f"[{cf.method or 'counterfactual'}]  "
        f"{cf.factual_outcome:.3f} -> target {cf.target_outcome:g}"
    ]
    for k in range(min(cf.n_counterfactuals, max_options)):
        changes = cf.changes(k)
        lines.append(f"  option {k + 1} ({len(changes)} changes):")
        if not changes:
            lines.append("    (no changes)")
        for name, (old, new) in changes.items():
            lines.append(f"    {name}: {old:.4g} -> {new:.4g}")
    return "\n".join(lines)


def render_data_attribution(att: DataAttribution, top: int = 5) -> str:
    """Most harmful and most helpful training points."""
    lines = [f"[{att.method or 'data attribution'}]"]
    lines.append("  most harmful (lowest value):")
    for index, value in att.top(top, ascending=True):
        lines.append(f"    point {index}: {value:+.5g}")
    lines.append("  most helpful (highest value):")
    for index, value in att.top(top, ascending=False):
        lines.append(f"    point {index}: {value:+.5g}")
    return "\n".join(lines)


def render(explanation, **kwargs) -> str:
    """Dispatch to the matching renderer."""
    if isinstance(explanation, FeatureAttribution):
        return render_attribution(explanation, **kwargs)
    if isinstance(explanation, RuleExplanation):
        return render_rule(explanation)
    if isinstance(explanation, CounterfactualExplanation):
        return render_counterfactual(explanation, **kwargs)
    if isinstance(explanation, DataAttribution):
        return render_data_attribution(explanation, **kwargs)
    raise TypeError(f"no renderer for {type(explanation).__name__}")
