"""Data-management meets XAI: weak supervision + constraint repair (§2.2.1, §3).

A data-engineering session on two fronts the tutorial connects:

1. **labels are scarce** — synthesize labeling functions from a 100-row
   seed (Snuba-style), denoise them with a label model (Snorkel-style),
   and train a competitive classifier on a pool that was never labeled;
2. **data is dirty** — an address table violates zip → city; Shapley
   responsibility pinpoints the culprit tuples and greedy repair restores
   consistency with minimal deletions;
3. **aggregates are biased** — a group-by contrast reverses under
   stratification (Simpson's paradox), detected and resolved HypDB-style.

Run:  python examples/data_cleaning_weak_supervision.py
"""

import numpy as np

from repro.core.dataset import TabularDataset
from repro.datasets import make_classification
from repro.db import (
    FunctionalDependency,
    Relation,
    detect_simpsons_paradox,
    greedy_repair,
    repair_responsibility,
)
from repro.models import LogisticRegression
from repro.rules import ABSTAIN, LabelModel, generate_candidate_lfs


def weak_supervision_demo() -> None:
    print("=== 1. labeling a pool with 100 labeled rows (Snuba/Snorkel) ===")
    full = make_classification(1200, n_features=5, n_informative=3,
                               class_sep=2.0, seed=21)
    seed_data = TabularDataset(full.X[:100], full.y[:100], list(full.features))
    pool_X, pool_y = full.X[100:900], full.y[100:900]
    test_X, test_y = full.X[900:], full.y[900:]

    lfs = generate_candidate_lfs(seed_data, min_precision=0.8)
    print(f"synthesized {len(lfs)} labeling functions from the seed:")
    for lf in lfs[:5]:
        print(f"  {lf.name}")
    votes = np.column_stack([lf(pool_X) for lf in lfs])
    covered = (votes != ABSTAIN).any(axis=1)
    model = LabelModel().fit(votes)
    print(f"estimated LF accuracies: {np.round(model.accuracies_, 2)}")
    weak_labels = model.predict(votes)
    quality = np.mean(weak_labels[covered] == pool_y[covered])
    print(f"pool coverage {covered.mean():.2f}, weak-label quality "
          f"{quality:.3f}")
    weak_model = LogisticRegression(alpha=1.0).fit(
        pool_X[covered], weak_labels[covered]
    )
    seed_model = LogisticRegression(alpha=1.0).fit(seed_data.X, seed_data.y)
    print(f"end model accuracy — seed-only {seed_model.score(test_X, test_y):.3f}"
          f" vs weakly supervised {weak_model.score(test_X, test_y):.3f}")


def repair_demo() -> None:
    print("\n=== 2. explaining and repairing FD violations (Shapley) ===")
    addresses = Relation(
        ["zip", "city"],
        [("10001", "nyc"), ("10001", "nyc"), ("10001", "boston"),
         ("94105", "sf"), ("94105", "sf"), ("94105", "oakland"),
         ("60601", "chicago")],
        name="addr",
    )
    fd = FunctionalDependency(("zip",), ("city",))
    print(f"constraint {fd}: {fd.violations(addresses)} violating pairs")
    responsibility = repair_responsibility(addresses, [fd])
    for index, value in sorted(responsibility.items(), key=lambda kv: -kv[1]):
        print(f"  tuple {index} {addresses.rows[index]}: "
              f"responsibility {value:.2f}")
    repaired, deleted = greedy_repair(addresses, [fd])
    print(f"greedy repair deleted {len(deleted)} tuples "
          f"({[addresses.rows[i] for i in deleted]}); "
          f"violations now {fd.violations(repaired)}")


def bias_demo() -> None:
    print("\n=== 3. Simpson's paradox in an OLAP aggregate (HypDB) ===")
    rng = np.random.default_rng(5)
    rows = []
    for dept, rate, men, women in [("easy", 0.75, 400, 100),
                                   ("hard", 0.25, 100, 400)]:
        for gender, n in (("m", men), ("f", women)):
            admitted = rng.random(n) < rate + (0.06 if gender == "f" else 0)
            rows += [(gender, dept, int(a)) for a in admitted]
    admissions = Relation(["gender", "dept", "admitted"], rows, name="adm")
    report = detect_simpsons_paradox(
        admissions, "gender", "admitted", ["dept"]
    )[0]
    print(f"naive contrast (m − f): {report.naive:+.3f} — men look favored")
    print(f"adjusted for {report.confounder}: {report.adjusted:+.3f} — "
          f"within departments, women do better")
    print(f"per-department contrasts: "
          f"{ {k: round(v, 3) for k, v in report.per_stratum.items()} }")
    print("verdict:", "SIMPSON'S PARADOX" if report.reversal else "no reversal")


if __name__ == "__main__":
    weak_supervision_demo()
    repair_demo()
    bias_demo()
