"""Explanations in databases (§3): provenance, tuple Shapley,
intervention explanations and a Query-2.0 complaint.

A small analytics scenario over an orders database:

1. run a provenance-aware query and read off why-provenance witnesses,
2. compute the Shapley value of individual orders for an aggregate,
3. ask "why is revenue so high?" via predicate interventions,
4. file a complaint against an aggregate computed over *model
   predictions* (Query 2.0) and trace it to the training data.

Run:  python examples/sql_query_explanations.py
"""

import numpy as np

from repro.datasets import make_loan_dataset
from repro.db import (
    Complaint,
    ComplaintDebugger,
    Relation,
    explain_aggregate,
    shapley_of_tuples,
)
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split


def build_orders() -> Relation:
    rng = np.random.default_rng(1)
    regions = ["east", "west"]
    products = ["widget", "gadget", "gizmo"]
    rows = []
    for __ in range(12):
        region = regions[rng.integers(0, 2)]
        product = products[rng.integers(0, 3)]
        amount = float(np.round(rng.exponential(40) + 5, 2))
        if product == "gizmo" and region == "west":
            amount *= 4  # the planted anomaly interventions should find
        rows.append((region, product, amount))
    return Relation(["region", "product", "amount"], rows, name="orders")


def main() -> None:
    orders = build_orders()
    print("orders table:")
    for row in orders.to_dicts():
        print(f"  {row}")

    print("\n--- why-provenance of a query answer (§3) ---")
    big_regions = (
        orders.select(lambda t: t["amount"] > 50).project(["region"])
    )
    for row, annotation in zip(big_regions.rows, big_regions.annotations):
        witnesses = [sorted(w) for w in annotation]
        print(f"  {row[0]!r} is in the answer because of any of: {witnesses}")

    print("\n--- Shapley value of tuples for total revenue ---")
    def revenue(rel: Relation) -> float:
        return sum(t["amount"] for t in rel.to_dicts())

    values = shapley_of_tuples(orders, revenue)
    top = sorted(values.items(), key=lambda kv: -kv[1])[:3]
    for index, value in top:
        print(f"  order {index} {orders.rows[index]}: phi = {value:.2f}")
    print(f"  (values sum to total revenue {revenue(orders):.2f})")

    print("\n--- intervention explanations: why is revenue so high? ---")
    for explanation in explain_aggregate(
        orders, revenue, direction="lower", top_k=3, use_conjunctions=True
    ):
        print(f"  {explanation}")

    print("\n--- Query 2.0 complaint (Rain-style, §3) ---")
    data = make_loan_dataset(600, seed=4)
    rng = np.random.default_rng(2)
    corrupted = rng.choice(data.n_samples, size=60, replace=False)
    y = data.y.copy()
    y[corrupted] = 1 - y[corrupted]
    X_train, X_serve, y_train, __ = train_test_split(
        data.X, y, test_size=0.3, seed=0
    )
    model = LogisticRegression(alpha=1.0).fit(X_train, y_train)
    debugger = ComplaintDebugger(model, X_train, y_train, X_serve)
    scope = X_serve[:, data.feature_index("gender")] == 1.0
    complaint = Complaint(scope=scope, direction="lower")
    before = debugger.aggregate(complaint)
    print(f"  SELECT count(*) FROM serve WHERE gender='male' "
          f"AND predict(model, *) = approved  ->  {before:.0f}")
    print("  complaint: 'this count is too high'")
    ranking = debugger.rank_training_points(complaint)
    fix = debugger.fix_rate(
        complaint, ranking, k=30,
        model_factory=lambda: LogisticRegression(alpha=1.0),
    )
    print(f"  after deleting the 30 most responsible training rows and "
          f"retraining: {fix['after']:.0f} "
          f"(moved {fix['movement']:.0f})")
    print("  (see benchmark E20 for the quantitative comparison of this "
          "ranking against random and loss-based deletion)")


if __name__ == "__main__":
    main()
