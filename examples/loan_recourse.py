"""Algorithmic recourse for denied loan applicants (§2.1.4 + §2.1.3).

The lending scenario the tutorial's recourse discussion is built around:

1. train a logistic model on loan data,
2. compute minimum-cost recourse (Ustun et al.) for a denied applicant,
3. generate diverse counterfactuals (DiCE) for comparison,
4. ask LEWIS, on the generating causal model, which intervention would
   actually flip similar applicants — interventions propagate through the
   causal graph, unlike the feature-vector edits of (2) and (3),
5. audit recourse costs across the protected attribute.

Run:  python examples/loan_recourse.py
"""

import numpy as np

from repro.causal import LewisExplainer
from repro.core.base import as_predict_fn
from repro.counterfactual import (
    DiceExplainer,
    LinearRecourse,
    evaluate_counterfactuals,
    recourse_audit,
)
from repro.datasets import make_loan_dataset
from repro.models import LogisticRegression


def main() -> None:
    data, scm = make_loan_dataset(800, seed=3, return_scm=True)
    model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    predict = as_predict_fn(model)

    recourse = LinearRecourse(
        model.coef_, model.intercept_, data, grid_size=10, max_actions=3
    )
    denied_indices = [
        i for i in range(data.n_samples) if recourse.score(data.X[i]) < 0
    ]
    applicant = data.X[denied_indices[0]]
    print("denied applicant:", data.render_row(applicant))
    print(f"P(approved) = {predict(applicant[None, :])[0]:.3f}")

    print("\n--- minimum-cost flipset (linear recourse) ---")
    result = recourse.find(applicant)
    for action in result.actions:
        print(f"  {action.feature_name}: {action.old_value:.3g} -> "
              f"{action.new_value:.3g}  (cost {action.cost:.3f})")
    print(f"  total cost {result.total_cost:.3f}, "
          f"new margin {result.new_score:+.3f}")

    print("\n--- DiCE: a diverse counterfactual set ---")
    dice = DiceExplainer(model, data, total_cfs=3, seed=0).explain(applicant)
    metrics = evaluate_counterfactuals(dice, predict, data.X)
    for k in range(dice.n_counterfactuals):
        changes = ", ".join(
            f"{name} {old:.3g}->{new:.3g}"
            for name, (old, new) in dice.changes(k).items()
        )
        print(f"  option {k + 1}: {changes}")
    print("  quality:", {k: round(v, 3) for k, v in metrics.items()})

    print("\n--- LEWIS: causal recourse on the true SCM ---")
    lewis = LewisExplainer(
        model, scm, data.feature_names, n_units=2500, seed=0
    )
    options = lewis.recourse_options(
        unit_values={
            "income": float(applicant[data.feature_index("income")]),
            "credit_score": float(
                applicant[data.feature_index("credit_score")]
            ),
        },
        candidate_interventions={
            "education": [4.0],
            "income": [5.0, 7.0],
            "savings": [4.0],
            "employment_years": [20.0],
        },
    )
    print("  intervention -> P(flip to approved) over similar units:")
    for attribute, value, probability in options:
        print(f"    do({attribute} = {value:g}): {probability:.3f}")

    print("\n--- recourse audit across gender (disparate burden) ---")
    audit = recourse_audit(
        recourse, data.X[:300],
        groups=data.X[:300, data.feature_index("gender")],
    )
    for group, stats in audit.items():
        label = {"group_0.0": "female", "group_1.0": "male"}.get(group, group)
        print(f"  {label:>8}: denied={stats['n_denied']:>3}, "
              f"feasible={stats['feasible_rate']:.2f}, "
              f"mean cost={stats['mean_cost']:.3f}")


if __name__ == "__main__":
    main()
