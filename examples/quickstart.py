"""Quickstart: explain one loan decision five different ways.

Trains a gradient-boosted model on the synthetic loan data and walks the
tutorial's Section-2 taxonomy on a single denied applicant:

* feature attribution (TreeSHAP, exact; LIME, surrogate),
* a rule explanation (Anchors),
* a counterfactual with actionability constraints (GeCo),
* a global view (mean |SHAP| over the data).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.base import as_predict_fn
from repro.counterfactual import GecoExplainer
from repro.datasets import make_loan_dataset
from repro.models import GradientBoostingClassifier
from repro.models.model_selection import train_test_split
from repro.rules import AnchorExplainer
from repro.shapley import TreeShapExplainer, aggregate_attributions
from repro.surrogate import LimeTabularExplainer


def main() -> None:
    data = make_loan_dataset(800, seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        data.X, data.y, test_size=0.25, seed=0
    )
    model = GradientBoostingClassifier(
        n_estimators=40, max_depth=3, seed=0
    ).fit(X_train, y_train)
    print(f"model accuracy: {model.score(X_test, y_test):.3f}")

    # Pick a denied applicant to explain.
    predict = as_predict_fn(model)
    denied = X_test[np.argmin(predict(X_test))]
    print("\napplicant:", data.render_row(denied))
    print(f"P(approved) = {predict(denied[None, :])[0]:.3f}")

    print("\n--- TreeSHAP (exact Shapley attribution, §2.1.2) ---")
    shap = TreeShapExplainer(model).explain(
        denied, feature_names=data.feature_names
    )
    for name, value in shap.top(4):
        print(f"  {name:>18}: {value:+.4f}")
    print(f"  (base {shap.base_value:+.3f} + contributions "
          f"= raw score {shap.prediction:+.3f}, "
          f"gap {shap.additivity_gap():.2e})")

    print("\n--- LIME (local surrogate, §2.1.1) ---")
    lime = LimeTabularExplainer(model, data, n_samples=1500, seed=0)
    lime_att = lime.explain(denied)
    for name, value in lime_att.top(4):
        print(f"  {name:>18}: {value:+.4f}")
    print(f"  surrogate fidelity R^2 = {lime_att.meta['fidelity_r2']:.3f}")

    print("\n--- Anchors (high-precision rule, §2.2) ---")
    anchor = AnchorExplainer(
        model, data, precision_target=0.9, seed=0
    ).explain(denied)
    print(f"  {anchor}")

    print("\n--- GeCo counterfactual (actionable change, §2.1.4) ---")
    cf = GecoExplainer(model, data, seed=0).explain(denied)
    for name, (old, new) in cf.changes(0).items():
        print(f"  change {name}: {old:.3g} -> {new:.3g}")
    new_score = predict(cf.counterfactuals[:1])[0]
    print(f"  new P(approved) = {new_score:.3f}")

    print("\n--- Global importance (mean |SHAP| over 100 rows) ---")
    global_view = aggregate_attributions(
        TreeShapExplainer(model), X_test[:100],
        feature_names=data.feature_names,
    )
    for name, value in global_view.top(5):
        print(f"  {name:>18}: {value:.4f}")


if __name__ == "__main__":
    main()
