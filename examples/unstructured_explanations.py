"""Explanations for unstructured data (§2.4): pixels and words.

1. train an MLP on tiny synthetic "images" where the discriminative
   evidence is a bright 3×3 patch,
2. render saliency / integrated-gradients / occlusion maps as ASCII
   heatmaps over the 8×8 grid,
3. run the Adebayo sanity check (randomize the model, watch the maps
   change),
4. explain a text classifier's prediction word-by-word with LIME-text.

Run:  python examples/unstructured_explanations.py
"""

import numpy as np

from repro.datasets import make_grid_images
from repro.models import LogisticRegression, MLPClassifier
from repro.surrogate import LimeTextExplainer
from repro.unstructured import (
    TextPipeline,
    integrated_gradients,
    make_sentiment_corpus,
    model_randomization_test,
    occlusion,
    saliency,
)

SHADES = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, size: int = 8) -> str:
    """Render |values| on an ASCII intensity scale."""
    grid = np.abs(values).reshape(size, size)
    peak = grid.max() or 1.0
    lines = []
    for row in grid:
        lines.append("".join(
            SHADES[min(int(v / peak * (len(SHADES) - 1)), len(SHADES) - 1)]
            for v in row
        ))
    return "\n".join(lines)


def main() -> None:
    X, y, __ = make_grid_images(400, size=8, seed=3)
    model = MLPClassifier(hidden=(24,), epochs=100, lr=0.03, seed=0).fit(X, y)
    print(f"image model accuracy: {model.score(X, y):.3f}")

    instance = X[int(np.where(y == 1)[0][0])]
    print("\ninput image (class 1: bright patch top-left):")
    print(ascii_heatmap(instance))

    for name, attribution in (
        ("saliency |∂f/∂x|", saliency(model, instance)),
        ("integrated gradients", integrated_gradients(model, instance)),
        ("occlusion", occlusion(model, instance, grid_size=8, patch=2)),
    ):
        print(f"\n{name}:")
        print(ascii_heatmap(attribution.values))

    print("\n--- sanity check: randomize the model, layer by layer ---")
    results = model_randomization_test(
        model, lambda m, x: saliency(m, x), X[:5], seed=0
    )
    for record in results:
        bar = "#" * int(max(record["similarity"], 0) * 30)
        print(f"  {record['layers_randomized']} layers randomized: "
              f"similarity {record['similarity']:+.3f} {bar}")
    print("  (a faithful method must decay — maps that survive a random "
          "model explain the input, not the model)")

    print("\n--- LIME for text (§2.4) ---")
    docs, labels = make_sentiment_corpus(500, seed=1)
    pipeline = TextPipeline(lambda: LogisticRegression(alpha=1.0))
    pipeline.fit(docs, labels)
    print(f"text model accuracy: {pipeline.score(docs, labels):.3f}")
    review = "the plot was boring and the acting was terrible i hated it"
    score = pipeline.predict_proba_docs([review])[0]
    print(f"\nreview: {review!r}\nP(positive) = {score:.3f}")
    attribution = LimeTextExplainer(
        pipeline.predict_proba_docs, n_samples=500, seed=0
    ).explain(review)
    print("word attributions (negative pushes toward 'negative review'):")
    for word, value in sorted(attribution.as_dict().items(),
                              key=lambda kv: kv[1]):
        marker = "-" if value < 0 else "+"
        print(f"  {marker} {word:>10}: {value:+.3f}")


if __name__ == "__main__":
    main()
