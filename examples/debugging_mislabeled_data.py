"""Debugging mislabeled training data with data-based explanations (§2.3).

A data-debugging session:

1. inject label noise through a provenance-tracked preparation pipeline,
2. value training points three ways (TMC Data Shapley, KNN-Shapley,
   influence functions) and measure how well each flags the noise,
3. lift point-level blame to *stage-level* blame using the recorded
   provenance (§3), confirming the corrupting stage is the culprit,
4. drop the lowest-valued points and show the model recover.

Run:  python examples/debugging_mislabeled_data.py
"""

import numpy as np

from repro.datasets import make_classification
from repro.datavalue import UtilityFunction, knn_shapley, tmc_shapley
from repro.influence import InfluenceFunctions
from repro.models import LogisticRegression
from repro.pipelines import ProvenancePipeline, Stage, provenance_blame


def detection_rate(values: np.ndarray, truly_bad: set, k: int) -> float:
    flagged = set(np.argsort(values)[:k].tolist())
    return len(flagged & truly_bad) / len(truly_bad)


def main() -> None:
    full = make_classification(700, n_features=5, class_sep=2.0, seed=10)
    raw = full.subset(np.arange(450))
    X_test, y_test = full.X[450:], full.y[450:]

    # A pipeline whose second stage silently corrupts labels.
    rng = np.random.default_rng(0)
    noise_mask = rng.random(450) < 0.12

    def inject_noise(X, y):
        y = y.copy()
        flip = noise_mask[: y.shape[0]]
        y[flip] = 1 - y[flip]
        return y

    pipeline = ProvenancePipeline([
        Stage.filter_rows("clip_outliers", lambda X: np.abs(X[:, 1]) < 3.5),
        Stage.relabel("vendor_labels", inject_noise),
    ])
    train, provenance, reports = pipeline.run(raw)
    for report in reports:
        print(f"stage {report.name}: {report.n_in} -> {report.n_out} rows, "
              f"{report.n_modified} modified")

    truly_bad = {
        i for i, record in enumerate(provenance)
        if "vendor_labels" in record.modified_by
    }
    print(f"\n{len(truly_bad)} corrupted rows hidden in "
          f"{train.n_samples} training rows")

    model = LogisticRegression(alpha=1.0).fit(train.X, train.y)
    print(f"accuracy on clean test data: {model.score(X_test, y_test):.3f}")

    print("\n--- valuing training points (§2.3.1 / §2.3.2) ---")
    utility = UtilityFunction(
        lambda: LogisticRegression(alpha=1.0),
        train.X, train.y, X_test[:100], y_test[:100],
    )
    shapley = tmc_shapley(utility, n_permutations=40, seed=0)
    knn = knn_shapley(train.X, train.y, X_test[:100], y_test[:100], k=5)
    influence = InfluenceFunctions(model, train.X, train.y).influence_on_loss(
        X_test[:100], y_test[:100]
    )
    k = 2 * len(truly_bad)
    for name, attribution in (("tmc data shapley", shapley),
                              ("knn shapley", knn),
                              ("influence fn", influence)):
        rate = detection_rate(attribution.values, truly_bad, k)
        print(f"  {name:>17}: found {rate:.0%} of the noise "
              f"in the worst {k} points")

    print("\n--- lifting blame to pipeline stages (§3) ---")
    blame = provenance_blame(
        provenance, shapley,
        ["clip_outliers", "vendor_labels"], harmful_quantile=0.15,
    )
    for stage, lift in blame.items():
        print(f"  {stage:>15}: harmful-row lift {lift:.2f}x")

    print("\n--- repair: drop the lowest-valued points and retrain ---")
    keep = shapley.ranking()[k:]
    repaired = LogisticRegression(alpha=1.0).fit(
        train.X[keep], train.y[keep]
    )
    print(f"  accuracy before repair: {model.score(X_test, y_test):.3f}")
    print(f"  accuracy after repair:  {repaired.score(X_test, y_test):.3f}")


if __name__ == "__main__":
    main()
