"""Tests for interpretable decision sets."""

import numpy as np
import pytest

from repro.datasets import make_loan_dataset
from repro.rules import DecisionSetClassifier


@pytest.fixture(scope="module")
def fitted(loan_data):
    return DecisionSetClassifier(
        max_rules=6, min_support=0.08, seed=0
    ).fit(loan_data)


def test_beats_majority_baseline(fitted, loan_data):
    majority = max(np.mean(loan_data.y), 1 - np.mean(loan_data.y))
    assert fitted.score(loan_data.X, loan_data.y) > majority


def test_rule_budget_respected(fitted):
    assert len(fitted.rules_) <= 6
    assert all(len(rule) <= 3 for rule in fitted.rules_)


def test_rules_have_sane_statistics(fitted):
    for rule in fitted.rules_:
        assert 0.0 < rule.coverage <= 1.0
        assert 0.0 <= rule.precision <= 1.0


def test_describe_lists_rules_and_default(fitted):
    text = fitted.describe()
    assert "ELSE" in text
    assert text.count("IF") == len(fitted.rules_)


def test_complexity_counts_predicates(fitted):
    assert fitted.complexity == sum(len(r) for r in fitted.rules_)


def test_interpretability_weight_shrinks_rule_sets(loan_data):
    loose = DecisionSetClassifier(
        max_rules=8, lambda_interpretability=0.0, seed=1
    ).fit(loan_data)
    tight = DecisionSetClassifier(
        max_rules=8, lambda_interpretability=1.0, seed=1
    ).fit(loan_data)
    assert tight.complexity <= loose.complexity


def test_generalizes_to_fresh_sample():
    train = make_loan_dataset(500, seed=31)
    test = make_loan_dataset(500, seed=32)
    model = DecisionSetClassifier(max_rules=6, seed=0).fit(train)
    majority = max(np.mean(test.y), 1 - np.mean(test.y))
    assert model.score(test.X, test.y) > majority - 0.02


def test_predict_before_fit_raises(loan_data):
    with pytest.raises(RuntimeError):
        DecisionSetClassifier().predict(loan_data.X)


def test_explains_black_box_predictions(loan_data, loan_gbm):
    # Global surrogate use: fit the decision set on model predictions.
    from repro.core.dataset import TabularDataset

    surrogate_target = loan_gbm.predict(loan_data.X)
    surrogate_data = TabularDataset(
        loan_data.X, surrogate_target, list(loan_data.features)
    )
    ds = DecisionSetClassifier(max_rules=6, seed=2).fit(surrogate_data)
    agreement = np.mean(ds.predict(loan_data.X) == surrogate_target)
    assert agreement > 0.75
