"""Property-based tests of the relational engine and its provenance.

Random relations + random predicates must satisfy the relational-algebra
laws, and — the provenance soundness property — every why-provenance
witness of an output tuple must actually re-derive that tuple when the
query is replayed on the witness alone.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Relation, WhySemiring

values = st.integers(0, 3)
rows = st.lists(st.tuples(values, values, values), min_size=0, max_size=12)


def predicate_for(column, threshold):
    return lambda t, c=column, v=threshold: t[c] <= v


COLUMNS = ["a", "b", "c"]


@given(rows=rows, col=st.sampled_from(COLUMNS), v=values)
@settings(max_examples=50, deadline=None)
def test_selection_idempotent_and_commutative(rows, col, v):
    r = Relation(COLUMNS, rows)
    p = predicate_for(col, v)
    once = r.select(p)
    twice = once.select(p)
    assert once.rows == twice.rows
    q = predicate_for("b", 1)
    ab = r.select(p).select(q)
    ba = r.select(q).select(p)
    assert sorted(ab.rows) == sorted(ba.rows)


@given(rows=rows)
@settings(max_examples=50, deadline=None)
def test_projection_idempotent_and_deduplicating(rows):
    r = Relation(COLUMNS, rows)
    p1 = r.project(["a", "b"])
    p2 = p1.project(["a", "b"])
    assert p1.rows == p2.rows
    assert len(set(p1.rows)) == len(p1.rows)
    assert set(p1.rows) == {(a, b) for a, b, __ in rows}


@given(rows=rows)
@settings(max_examples=30, deadline=None)
def test_join_with_empty_is_empty(rows):
    r = Relation(COLUMNS, rows)
    empty = Relation(["a", "x"], [])
    assert len(r.join(empty)) == 0


@given(left=rows, right=st.lists(st.tuples(values, values),
                                 min_size=0, max_size=8))
@settings(max_examples=40, deadline=None)
def test_join_matches_nested_loop_semantics(left, right):
    r = Relation(COLUMNS, left)
    s = Relation(["a", "d"], right)
    joined = r.join(s)
    expected = sorted(
        (a, b, c, d)
        for (a, b, c) in left
        for (a2, d) in right
        if a == a2
    )
    assert sorted(joined.rows) == expected


@given(rows=rows, col=st.sampled_from(COLUMNS), v=values)
@settings(max_examples=40, deadline=None)
def test_why_provenance_witnesses_rederive(rows, col, v):
    """Soundness: replaying the query on any single witness set of an
    output tuple must reproduce that tuple."""
    r = Relation(COLUMNS, rows)
    query = lambda rel: rel.select(predicate_for(col, v)).project(["a"])
    result = query(r)
    for out_row, annotation in zip(result.rows, result.annotations):
        for witness in annotation:
            indices = sorted(int(w.split(":")[1]) for w in witness)
            sub = Relation(
                COLUMNS, [r.rows[i] for i in indices], name=r.name
            )
            replayed = query(sub)
            assert out_row in replayed.rows


@given(rows=rows)
@settings(max_examples=40, deadline=None)
def test_group_by_count_partitions_rows(rows):
    r = Relation(COLUMNS, rows)
    grouped = r.group_by(["a"], "count")
    counts = {key: n for key, n in grouped.rows}
    assert sum(counts.values()) == len(rows)
    for a, n in grouped.rows:
        assert n == sum(1 for row in rows if row[0] == a)


@given(rows=st.lists(st.tuples(values, st.integers(-5, 5)),
                     min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_group_by_sum_avg_consistency(rows):
    r = Relation(["k", "v"], rows)
    sums = dict(r.group_by(["k"], "sum", "v").rows)
    avgs = dict(r.group_by(["k"], "avg", "v").rows)
    counts = dict(r.group_by(["k"], "count").rows)
    for key in sums:
        assert avgs[key] == pytest.approx(sums[key] / counts[key])


@given(a=rows, b=rows)
@settings(max_examples=30, deadline=None)
def test_union_commutative_and_deduplicating(a, b):
    ra = Relation(COLUMNS, a, name="A")
    rb = Relation(COLUMNS, b, name="B")
    ab = ra.union(rb)
    ba = rb.union(ra)
    assert sorted(ab.rows) == sorted(ba.rows)
    assert set(ab.rows) == set(a) | set(b)
    assert len(set(ab.rows)) == len(ab.rows)
