"""Tests for the faithfulness and robustness evaluation metrics."""

import numpy as np
import pytest

from repro.core.explanation import FeatureAttribution
from repro.evaluation import (
    comprehensiveness,
    curve_auc,
    deletion_curve,
    faithfulness_report,
    insertion_curve,
    lipschitz_estimate,
    max_sensitivity,
    monotonicity,
    sufficiency,
)


def linear_model(weights):
    weights = np.asarray(weights, dtype=float)
    return lambda X: np.atleast_2d(X) @ weights


def attribution_for(x, weights):
    x = np.asarray(x, dtype=float)
    return FeatureAttribution(
        values=np.asarray(weights) * x,
        feature_names=[f"f{i}" for i in range(len(x))],
    )


class TestCurves:
    def test_deletion_endpoints(self):
        weights = [3.0, 1.0, 0.0]
        model = linear_model(weights)
        x = np.array([1.0, 1.0, 1.0])
        baseline = np.zeros(3)
        curve = deletion_curve(model, x, attribution_for(x, weights), baseline)
        assert curve[0] == pytest.approx(4.0)   # untouched
        assert curve[-1] == pytest.approx(0.0)  # fully deleted
        # deleting most-important first: 4 -> 1 -> 0 -> 0
        assert curve.tolist() == pytest.approx([4.0, 1.0, 0.0, 0.0])

    def test_insertion_deletion_complementarity(self):
        weights = [3.0, 1.0, 0.0]
        model = linear_model(weights)
        x = np.array([1.0, 1.0, 1.0])
        baseline = np.zeros(3)
        att = attribution_for(x, weights)
        deletion = deletion_curve(model, x, att, baseline)
        insertion = insertion_curve(model, x, att, baseline)
        # linear model identity: ins[k] + del[k] = f(x) + f(baseline)
        total = model(x[None, :])[0] + model(baseline[None, :])[0]
        assert np.allclose(insertion + deletion, total)

    def test_good_order_beats_bad_order(self):
        weights = [5.0, 1.0, 0.1, 0.0]
        model = linear_model(weights)
        x = np.ones(4)
        baseline = np.zeros(4)
        good = deletion_curve(model, x, np.array([0, 1, 2, 3]), baseline)
        bad = deletion_curve(model, x, np.array([3, 2, 1, 0]), baseline)
        assert curve_auc(good) < curve_auc(bad)

    def test_auc_validation(self):
        with pytest.raises(ValueError):
            curve_auc(np.array([1.0]))


class TestPointMetrics:
    def test_comprehensiveness_and_sufficiency(self):
        weights = [3.0, 1.0, 0.0]
        model = linear_model(weights)
        x = np.ones(3)
        baseline = np.zeros(3)
        att = attribution_for(x, weights)
        assert comprehensiveness(model, x, att, baseline, k=1) == \
            pytest.approx(3.0)
        assert sufficiency(model, x, att, baseline, k=1) == pytest.approx(3.0)

    def test_monotonicity_perfect_for_true_order(self):
        weights = [5.0, 2.0, 0.5]
        model = linear_model(weights)
        x = np.ones(3)
        baseline = np.zeros(3)
        att = attribution_for(x, weights)
        assert monotonicity(model, x, att, baseline) == pytest.approx(1.0)


def test_faithfulness_report_ranks_real_vs_random(loan_data, loan_logistic):
    from repro.core.base import as_predict_fn
    from repro.shapley import ExactShapleyExplainer

    predict = as_predict_fn(loan_logistic)
    baseline = loan_data.X.mean(axis=0)

    class RandomExplainer:
        def __init__(self, seed=0):
            self.rng = np.random.default_rng(seed)

        def explain(self, x):
            return FeatureAttribution(
                self.rng.normal(0, 1, loan_data.n_features),
                loan_data.feature_names,
            )

    shap_report = faithfulness_report(
        predict, loan_data.X[:10],
        ExactShapleyExplainer(loan_logistic, loan_data.X[:40]),
        baseline,
    )
    random_report = faithfulness_report(
        predict, loan_data.X[:10], RandomExplainer(), baseline
    )
    assert shap_report["comprehensiveness"] >= \
        random_report["comprehensiveness"]
    assert shap_report["insertion_auc"] >= random_report["insertion_auc"]


class TestRobustness:
    class SmoothExplainer:
        """Attribution = 2x (Lipschitz constant 2 per coordinate)."""

        def explain(self, x):
            x = np.asarray(x, dtype=float).ravel()
            return FeatureAttribution(2.0 * x, [f"f{i}" for i in range(len(x))])

    def test_lipschitz_of_linear_explainer(self):
        estimate = lipschitz_estimate(
            self.SmoothExplainer(), np.zeros(3), radius=0.5, n_samples=30,
        )
        assert estimate == pytest.approx(2.0, abs=0.01)

    def test_max_sensitivity_scales_with_radius(self):
        small = max_sensitivity(self.SmoothExplainer(), np.zeros(3),
                                radius=0.1, n_samples=20)
        large = max_sensitivity(self.SmoothExplainer(), np.zeros(3),
                                radius=1.0, n_samples=20)
        assert large > small
