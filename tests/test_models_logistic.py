"""Tests for logistic regression and its white-box interface."""

import numpy as np
import pytest

from repro.models import LogisticRegression, sigmoid


@pytest.fixture(scope="module")
def separable():
    rng = np.random.default_rng(4)
    X = rng.normal(0, 1, (300, 3))
    logits = 2.0 * X[:, 0] - 1.0 * X[:, 1]
    y = (sigmoid(logits) > rng.random(300)).astype(int)
    return X, y


def test_sigmoid_stability_and_range():
    z = np.array([-1000.0, -10.0, 0.0, 10.0, 1000.0])
    p = sigmoid(z)
    assert np.all(np.isfinite(p))
    assert p[0] == pytest.approx(0.0, abs=1e-12)
    assert p[2] == pytest.approx(0.5)
    assert p[4] == pytest.approx(1.0, abs=1e-12)


def test_learns_signal_direction(separable):
    X, y = separable
    model = LogisticRegression(alpha=0.5).fit(X, y)
    assert model.coef_[0] > 0.5
    assert model.coef_[1] < -0.2
    assert model.score(X, y) > 0.75


def test_predict_proba_rows_sum_to_one(separable):
    X, y = separable
    model = LogisticRegression().fit(X, y)
    proba = model.predict_proba(X[:20])
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert np.all(proba >= 0)


def test_rejects_multiclass():
    X = np.zeros((6, 2))
    y = np.array([0, 1, 2, 0, 1, 2])
    with pytest.raises(ValueError):
        LogisticRegression().fit(X, y)


def test_arbitrary_label_values(separable):
    X, y = separable
    model = LogisticRegression(alpha=0.5).fit(X, np.where(y == 1, "yes", "no"))
    assert set(model.predict(X[:10])) <= {"yes", "no"}


def test_gradient_zero_at_optimum(separable):
    X, y = separable
    model = LogisticRegression(alpha=1.0, tol=1e-12).fit(X, y)
    reg_grad = np.append(model.alpha * model.coef_, 0.0)
    total = model.grad(X, y).sum(axis=0) + reg_grad
    assert np.allclose(total, 0.0, atol=1e-6)


def test_grad_matches_finite_differences(separable):
    X, y = separable
    model = LogisticRegression(alpha=0.5).fit(X, y)
    theta = model.params
    g = model.grad(X[:5], y[:5]).sum(axis=0)
    eps = 1e-6
    for j in range(theta.shape[0]):
        bumped = theta.copy()
        bumped[j] += eps
        model.set_params_vector(bumped)
        hi = model.loss(X[:5], y[:5]) * 5
        bumped[j] -= 2 * eps
        model.set_params_vector(bumped)
        lo = model.loss(X[:5], y[:5]) * 5
        assert g[j] == pytest.approx((hi - lo) / (2 * eps), abs=1e-4)
    model.set_params_vector(theta)


def test_hessian_positive_definite(separable):
    X, y = separable
    model = LogisticRegression(alpha=1.0).fit(X, y)
    H = model.hessian(X, y)
    assert np.allclose(H, H.T)
    assert np.all(np.linalg.eigvalsh(H) > 0)


def test_sample_weight_zero_equals_removal(separable):
    X, y = separable
    w = np.ones(X.shape[0])
    w[:50] = 0.0
    weighted = LogisticRegression(alpha=1.0).fit(X, y, sample_weight=w)
    removed = LogisticRegression(alpha=1.0).fit(X[50:], y[50:])
    assert np.allclose(weighted.coef_, removed.coef_, atol=1e-6)
