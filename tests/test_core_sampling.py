"""Tests for repro.core.sampling perturbation primitives."""

import numpy as np

from repro.core import FeatureSpec, GaussianPerturber, MaskingSampler, TabularDataset


def mixed_data():
    rng = np.random.default_rng(0)
    X = np.column_stack([
        rng.normal(10, 2, 200),
        rng.integers(0, 3, 200).astype(float),
    ])
    return TabularDataset(
        X, np.zeros(200),
        [FeatureSpec("num"), FeatureSpec("cat", "categorical",
                                         categories=("a", "b", "c"))],
    )


class TestGaussianPerturber:
    def test_first_row_is_original(self, rng):
        data = mixed_data()
        x = data.X[0]
        Z, B = GaussianPerturber(data).sample(x, 50, rng)
        assert np.allclose(Z[0], x)
        assert B[0].tolist() == [1.0, 1.0]

    def test_binary_representation_consistent(self, rng):
        data = mixed_data()
        x = data.X[0]
        Z, B = GaussianPerturber(data).sample(x, 200, rng)
        # kept numeric features equal the original exactly
        kept = B[:, 0] == 1.0
        assert np.allclose(Z[kept, 0], x[0])
        # perturbed numeric features differ (continuous noise)
        assert not np.any(np.isclose(Z[~kept, 0], x[0]))
        # categorical: B==1 iff value matches original
        assert np.all((Z[:, 1] == x[1]) == (B[:, 1] == 1.0))

    def test_categorical_draws_stay_in_domain(self, rng):
        data = mixed_data()
        Z, __ = GaussianPerturber(data).sample(data.X[0], 300, rng)
        assert set(np.unique(Z[:, 1])).issubset({0.0, 1.0, 2.0})


class TestMaskingSampler:
    def test_background_subsampled(self):
        background = np.arange(400).reshape(200, 2).astype(float)
        sampler = MaskingSampler(background, max_background=50)
        assert sampler.n_background == 50

    def test_expand_layout(self):
        background = np.array([[0.0, 0.0], [1.0, 1.0]])
        sampler = MaskingSampler(background)
        x = np.array([9.0, 8.0])
        coalitions = np.array([[True, False], [False, False]])
        rows = sampler.expand(x, coalitions)
        assert rows.shape == (4, 2)
        # first coalition: feature 0 fixed to 9, feature 1 from background
        assert rows[0].tolist() == [9.0, 0.0]
        assert rows[1].tolist() == [9.0, 1.0]
        # second coalition: everything from background
        assert rows[2].tolist() == [0.0, 0.0]

    def test_value_function_endpoints(self):
        background = np.array([[0.0, 0.0], [2.0, 2.0]])
        sampler = MaskingSampler(background)
        x = np.array([10.0, 10.0])
        v = sampler.value_function(lambda X: X.sum(axis=1), x)
        empty = v(np.array([[False, False]]))[0]
        full = v(np.array([[True, True]]))[0]
        assert empty == 2.0   # mean of background sums
        assert full == 20.0   # the instance itself
