"""Tests for labeling functions, the label model and Snuba-style LF
generation."""

import numpy as np
import pytest

from repro.core.dataset import TabularDataset
from repro.core.explanation import Predicate, RuleExplanation
from repro.datasets import make_classification
from repro.rules import (
    ABSTAIN,
    LabelingFunction,
    LabelModel,
    generate_candidate_lfs,
)


def make_noisy_lfs(y: np.ndarray, accuracies, coverages, seed=0):
    """Synthetic LFs with known accuracy/coverage against labels y."""
    rng = np.random.default_rng(seed)
    votes = []
    for accuracy, coverage in zip(accuracies, coverages):
        column = np.full(y.shape[0], ABSTAIN)
        active = rng.random(y.shape[0]) < coverage
        correct = rng.random(y.shape[0]) < accuracy
        column[active & correct] = y[active & correct]
        column[active & ~correct] = 1 - y[active & ~correct]
        votes.append(column)
    return np.column_stack(votes)


class TestLabelingFunction:
    def test_rule_wrapper_votes_and_abstains(self):
        rule = RuleExplanation(
            predicates=[Predicate(0, ">", 0.5)],
            outcome=1.0, precision=0.9, coverage=0.3,
        )
        lf = LabelingFunction.from_rule(rule, "gt_half")
        votes = lf(np.array([[0.9], [0.1]]))
        assert votes.tolist() == [1, ABSTAIN]

    def test_invalid_outputs_rejected(self):
        lf = LabelingFunction("bad", lambda X: np.full(len(X), 7))
        with pytest.raises(ValueError):
            lf(np.zeros((3, 1)))


class TestLabelModel:
    @pytest.fixture(scope="class")
    def noisy_setup(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 800)
        votes = make_noisy_lfs(
            y,
            accuracies=[0.9, 0.85, 0.6, 0.55],
            coverages=[0.6, 0.5, 0.7, 0.7],
            seed=2,
        )
        return y, votes

    def test_recovers_accuracy_ordering(self, noisy_setup):
        __, votes = noisy_setup
        model = LabelModel().fit(votes)
        a = model.accuracies_
        assert a[0] > a[2] and a[1] > a[3]
        assert a[0] == pytest.approx(0.9, abs=0.08)

    def test_beats_majority_vote(self, noisy_setup):
        y, votes = noisy_setup
        model = LabelModel().fit(votes)
        weighted = np.mean(model.predict(votes) == y)
        majority = np.mean(LabelModel.majority_vote(votes) == y)
        assert weighted >= majority

    def test_proba_in_unit_interval(self, noisy_setup):
        __, votes = noisy_setup
        model = LabelModel().fit(votes)
        p = model.predict_proba(votes[:50])
        assert np.all((p >= 0) & (p <= 1))

    def test_all_abstain_rejected(self):
        with pytest.raises(ValueError):
            LabelModel().fit(np.full((10, 3), ABSTAIN))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LabelModel().predict(np.zeros((2, 2), dtype=int))


class TestGenerateCandidateLfs:
    @pytest.fixture(scope="class")
    def seed_data(self):
        data = make_classification(120, n_features=4, n_informative=2,
                                   class_sep=2.5, seed=9)
        return data

    def test_generated_lfs_meet_bars(self, seed_data):
        lfs = generate_candidate_lfs(seed_data, min_precision=0.85,
                                     min_coverage=0.1)
        assert 1 <= len(lfs) <= 20
        for lf in lfs:
            votes = lf(seed_data.X)
            cast = votes != ABSTAIN
            assert cast.mean() >= 0.1
            precision = np.mean(seed_data.y[cast] == votes[cast])
            assert precision >= 0.85

    def test_pipeline_labels_unseen_data(self):
        # One generation process: a small labeled seed and a large
        # unlabeled pool from the same distribution.
        full = make_classification(720, n_features=4, n_informative=2,
                                   class_sep=2.5, seed=9)
        seed_data = TabularDataset(
            full.X[:120], full.y[:120], list(full.features)
        )
        pool = TabularDataset(full.X[120:], full.y[120:], list(full.features))
        lfs = generate_candidate_lfs(seed_data, min_precision=0.85)
        votes = np.column_stack([lf(pool.X) for lf in lfs])
        model = LabelModel().fit(votes)
        labeled = votes[(votes != ABSTAIN).any(axis=1)]
        covered = (votes != ABSTAIN).any(axis=1)
        predictions = model.predict(votes[covered])
        agreement = np.mean(predictions == pool.y[covered])
        assert covered.mean() > 0.5
        assert agreement > 0.8
