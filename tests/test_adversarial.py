"""Tests for the Fooling-LIME/SHAP adversarial scaffolding (E5's core)."""

import numpy as np
import pytest

from repro.adversarial import AdversarialModel, train_ood_detector
from repro.datasets import make_recidivism_dataset
from repro.shapley import KernelShapExplainer
from repro.surrogate import LimeTabularExplainer


@pytest.fixture(scope="module")
def attack_setup():
    data = make_recidivism_dataset(800, seed=61)
    race = data.feature_index("race")
    age = data.feature_index("age")

    def biased(X):
        return (X[:, race] == 1).astype(float)  # decide purely on race

    def innocuous(X):
        return (X[:, age] > np.median(data.X[:, age])).astype(float)

    detector = train_ood_detector(data, seed=0)
    adversarial = AdversarialModel(biased, innocuous, detector)
    adversarial.calibrate(data.X, target_rate=0.9)
    return data, adversarial, race, age


def test_detector_separates_real_from_perturbed(attack_setup):
    data, adversarial, __, ___ = attack_setup
    assert adversarial.fidelity_to_bias(data.X) >= 0.85


def test_deployed_decisions_follow_bias(attack_setup):
    data, adversarial, race, __ = attack_setup
    decisions = adversarial.predict(data.X)
    agreement = np.mean(decisions == (data.X[:, race] == 1).astype(int))
    assert agreement > 0.85


def test_lime_is_fooled(attack_setup):
    data, adversarial, race, age = attack_setup
    lime = LimeTabularExplainer(adversarial, data, n_samples=600, seed=0)
    fooled = 0
    explained = 0
    for x in data.X[:8]:
        att = lime.explain(x)
        ranking = att.ranking()
        explained += 1
        if ranking[0] != race:
            fooled += 1
    # On most instances, the top feature is NOT the one actually used.
    assert fooled / explained >= 0.5


def test_kernel_shap_is_fooled(attack_setup):
    # Slack et al. attack SHAP configured with a fixed reference
    # background (zeros) — coalition hybrids against it are far off the
    # data manifold, so the detector routes them to the innocuous model.
    data, adversarial, race, __ = attack_setup
    shap = KernelShapExplainer(
        adversarial, np.zeros((1, data.n_features)), n_samples=128, seed=0
    )
    fooled = 0
    for x in data.X[:6]:
        att = shap.explain(x)
        if att.ranking()[0] != race:
            fooled += 1
    assert fooled >= 4


def test_unwrapped_biased_model_is_not_fooled(attack_setup):
    # Control: explaining the biased model directly must expose race.
    data, __, race, ___ = attack_setup

    def biased(X):
        return (X[:, race] == 1).astype(float)

    lime = LimeTabularExplainer(biased, data, n_samples=600, seed=0)
    top_features = [lime.explain(x).ranking()[0] for x in data.X[:6]]
    assert all(j == race for j in top_features)
