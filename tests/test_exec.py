"""The pluggable execution backend: determinism, merging, degradation.

The repro.exec contract under test, end to end:

* work partitioning (:func:`repro.exec.plan_shards`) is balanced,
  contiguous, and carries per-shard ``SeedSequence`` children derived
  from ``(seed, shard_index)``;
* backend resolution follows ``param > REPRO_BACKEND > serial`` (worker
  processes always answer serial — the fork-bomb guard);
* every estimator in :mod:`repro.games.estimators` is **bitwise
  identical** across serial / thread / process backends and across shard
  counts, for every shardable game family — the load-bearing invariant
  the whole subsystem is built around;
* worker-side state crosses the process boundary on join: coalition
  cache entries and ``coalition.cache.*`` / ``datavalue.cache.*``
  counter deltas, :class:`~repro.datavalue.utility.UtilityFunction`
  memo + instance counters (the PR 5 undercount fix), obs span records
  (re-parented under the caller's span), and guard-scope spends;
* non-shardable inputs (bare callables, stateful games such as
  :class:`~repro.games.InterventionalGame`) silently fall back to the
  serial loop with identical outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.datasets import make_classification
from repro.datavalue.utility import UtilityFunction
from repro.db.relation import Relation
from repro.exec import (
    BACKENDS,
    in_worker,
    map_shards,
    plan_shards,
    resolve_backend,
    resolve_n_procs,
    worker_mode,
)
from repro.games.adapters import (
    DataValueGame,
    FeatureMaskingGame,
    InterventionalGame,
    TupleProvenanceGame,
)
from repro.games.estimators import (
    exact_enumeration,
    kernel_wls_estimator,
    permutation_estimator,
)
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split
from repro.obs import metrics
from repro.robust import GuardConfig
from repro.robust.guard import current_scope, guard_scope

N_FEATURES = 4
WEIGHTS = np.array([1.0, -2.0, 0.5, 0.25])


def linear_model(X: np.ndarray) -> np.ndarray:
    return np.atleast_2d(X) @ WEIGHTS


@pytest.fixture(scope="module")
def background():
    rng = np.random.default_rng(9)
    return rng.normal(size=(25, N_FEATURES))


@pytest.fixture(scope="module")
def utility_parts():
    data = make_classification(60, n_features=3, n_informative=2,
                               class_sep=2.0, seed=13)
    Xtr, Xv, ytr, yv = train_test_split(data.X, data.y, test_size=0.4, seed=0)
    return Xtr[:8], ytr[:8], Xv, yv


def make_utility(parts):
    Xtr, ytr, Xv, yv = parts
    return UtilityFunction(lambda: LogisticRegression(alpha=1.0),
                           Xtr, ytr, Xv, yv)


def make_relation():
    rel = Relation(["id", "grp"], [(i, i % 3) for i in range(8)])
    query = (lambda r: sum(1 for t in r.rows if t[1] == 0) * 2.0
             + len(r.rows) * 0.1)
    return rel, query


def make_scm():
    from repro.causal.scm import StructuralCausalModel, linear_mechanism

    scm = StructuralCausalModel()
    scm.add_variable("a", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    scm.add_variable("b", ["a"], linear_mechanism({"a": 2.0}),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    scm.add_variable("c", ["b"], linear_mechanism({"b": 1.5}),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    return scm


def make_game(family: str, background, utility_parts):
    """A fresh game instance per call, so caches never leak across runs."""
    if family == "masking":
        return FeatureMaskingGame(linear_model, background[0],
                                  background=background)
    if family == "datavalue":
        return DataValueGame(make_utility(utility_parts))
    if family == "tuple":
        rel, query = make_relation()
        return TupleProvenanceGame(rel, query)
    if family == "topological":
        from repro.games.adapters import TopologicalGame

        scm = make_scm()
        model = lambda X: np.atleast_2d(X) @ np.array([1.0, 0.5, 2.0])
        return TopologicalGame(scm, model, ["a", "b", "c"],
                               np.array([1.0, 2.0, 0.5]),
                               n_samples=40, seed=4)
    raise AssertionError(family)


FAMILIES = ("masking", "datavalue", "tuple", "topological")


# ------------------------------------------------------------ partitioning


def test_plan_shards_balanced_contiguous():
    plan = plan_shards(10, 3, seed=7)
    assert plan.n_shards == 3
    sizes = [hi - lo for lo, hi in plan.slices]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1
    # Contiguous cover of [0, 10), in order.
    flat = [i for lo, hi in plan.slices for i in range(lo, hi)]
    assert flat == list(range(10))


def test_plan_shards_never_exceeds_items():
    plan = plan_shards(3, 8)
    assert plan.n_shards == 3
    assert plan_shards(0, 4).n_shards == 1


def test_plan_shards_seeds_deterministic_and_independent():
    a = plan_shards(6, 3, seed=5)
    b = plan_shards(6, 3, seed=5)
    draws_a = [rng.random(4) for rng in a.rngs()]
    draws_b = [rng.random(4) for rng in b.rngs()]
    for da, db in zip(draws_a, draws_b):
        assert np.array_equal(da, db)
    # Distinct shards draw distinct streams.
    assert not np.array_equal(draws_a[0], draws_a[1])
    # And none of them replays the parent stream for the same seed.
    parent = np.random.default_rng(5).random(4)
    assert all(not np.array_equal(parent, d) for d in draws_a)


# -------------------------------------------------------------- resolution


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend() == "serial"
    monkeypatch.setenv("REPRO_BACKEND", "thread")
    assert resolve_backend() == "thread"
    assert resolve_backend("process") == "process"  # param wins
    with pytest.raises(ValueError, match="backend"):
        resolve_backend("fibers")
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ValueError, match="backend"):
        resolve_backend()


def test_resolve_backend_worker_guard(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "process")
    worker_mode(True)
    try:
        assert in_worker()
        # A sharded estimator re-entered from a worker must not fork
        # grandchildren, whatever the env or caller asks for.
        assert resolve_backend() == "serial"
        assert resolve_backend("process") == "serial"
    finally:
        worker_mode(False)
    assert not in_worker()


def test_resolve_n_procs(monkeypatch):
    import os

    monkeypatch.delenv("REPRO_N_PROCS", raising=False)
    assert resolve_n_procs() == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_N_PROCS", "3")
    assert resolve_n_procs() == 3
    assert resolve_n_procs(2) == 2  # param wins
    assert resolve_n_procs(-1) == (os.cpu_count() or 1)
    assert resolve_n_procs(0) == 1
    assert "serial" in BACKENDS and "process" in BACKENDS


# -------------------------------------------- cross-backend bitwise parity


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_exact_enumeration_bitwise_parity(family, backend, background,
                                          utility_parts):
    serial = exact_enumeration(make_game(family, background, utility_parts))
    for n_shards in (2, 3):
        sharded = exact_enumeration(
            make_game(family, background, utility_parts),
            backend=backend, n_shards=n_shards, n_procs=2,
        )
        assert np.array_equal(serial, sharded), (family, backend, n_shards)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_permutation_estimator_bitwise_parity(family, backend, background,
                                              utility_parts):
    kwargs = {"n_permutations": 8, "seed": 3}
    serial = permutation_estimator(
        make_game(family, background, utility_parts), **kwargs
    )
    for n_shards in (2, 3):
        sharded = permutation_estimator(
            make_game(family, background, utility_parts),
            backend=backend, n_shards=n_shards, n_procs=2, **kwargs,
        )
        assert np.array_equal(serial.values, sharded.values), \
            (family, backend, n_shards)
        assert np.array_equal(serial.std_err, sharded.std_err)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_kernel_estimator_bitwise_parity(family, backend, background,
                                         utility_parts):
    kwargs = {"n_samples": 48, "seed": 1}
    phi_s, base_s = kernel_wls_estimator(
        make_game(family, background, utility_parts), **kwargs
    )
    for n_shards in (2, 3):
        phi_p, base_p = kernel_wls_estimator(
            make_game(family, background, utility_parts),
            backend=backend, n_shards=n_shards, n_procs=2, **kwargs,
        )
        assert np.array_equal(phi_s, phi_p), (family, backend, n_shards)
        assert base_s == base_p


def test_permutation_antithetic_and_truncation_parity(background,
                                                      utility_parts):
    # Antithetic pairing (masking) and TMC truncation (datavalue) both
    # reorder nothing under sharding: same walks, same association order.
    serial = permutation_estimator(
        make_game("masking", background, utility_parts),
        n_permutations=8, antithetic=True, seed=5,
    )
    sharded = permutation_estimator(
        make_game("masking", background, utility_parts),
        n_permutations=8, antithetic=True, seed=5,
        backend="process", n_shards=3, n_procs=2,
    )
    assert np.array_equal(serial.values, sharded.values)

    def tmc(**extra):
        game = make_game("datavalue", background, utility_parts)
        u = game.utility
        return permutation_estimator(
            game, n_permutations=6, antithetic=False, seed=2,
            truncation_tolerance=0.05, truncation_target=u.full_score(),
            empty_value=u.empty_score, aggregate="sum_counts", **extra,
        )

    a = tmc()
    b = tmc(backend="process", n_shards=3, n_procs=2)
    assert np.array_equal(a.values, b.values)
    assert a.diagnostics.get("mean_truncation_position") == \
        b.diagnostics.get("mean_truncation_position")


# ------------------------------------------------------- serial fallbacks


def test_interventional_game_serial_fallback():
    """The stateful walk game is never sharded — and never wrong."""
    scm = make_scm()
    model = lambda X: np.atleast_2d(X) @ np.array([1.0, 0.5, 2.0])
    x = np.array([1.0, 2.0, 0.5])

    def run(**extra):
        game = InterventionalGame(scm, model, ["a", "b", "c"], x,
                                  n_samples=30, seed=2)
        est = permutation_estimator(game, n_permutations=4, antithetic=False,
                                    seed=2, aggregate="sum_counts", **extra)
        return est.values, game.direct_sums.copy(), game.indirect_sums.copy()

    assert InterventionalGame.shardable is False
    before = metrics.counter("exec.shards").value
    v1, d1, i1 = run()
    v2, d2, i2 = run(backend="process", n_procs=2)
    assert np.array_equal(v1, v2)
    assert np.array_equal(d1, d2) and np.array_equal(i1, i2)
    # Fallback means no shards were ever dispatched.
    assert metrics.counter("exec.shards").value == before


def test_bare_callable_never_sharded(background):
    """Legacy value functions promise no determinism: always serial."""
    calls = {"n": 0}

    def v(masks):
        calls["n"] += 1
        masks = np.atleast_2d(masks)
        return masks @ np.arange(1.0, masks.shape[1] + 1)

    before = metrics.counter("exec.shards").value
    serial = exact_enumeration(v, n_players=4)
    sharded = exact_enumeration(v, n_players=4, backend="process", n_procs=2)
    assert np.array_equal(serial, sharded)
    assert metrics.counter("exec.shards").value == before


# --------------------------------------------------- worker-state merging


def test_coalition_cache_and_counters_merge(background):
    """Worker cache entries and coalition.cache.* deltas reach the parent."""
    game = make_game("masking", background, None)
    misses_before = metrics.counter("coalition.cache.misses").value
    phi = exact_enumeration(game, backend="process", n_shards=2, n_procs=2)
    assert phi.shape == (N_FEATURES,)
    # Counter deltas from the forked workers merged on join.
    assert metrics.counter("coalition.cache.misses").value > misses_before
    # The cache entries themselves were merged: re-running serially is
    # answered from cache (no new misses on the shared store).
    entries = len(game.cache.values)
    assert entries == 2 ** N_FEATURES
    again = exact_enumeration(game)
    assert np.array_equal(phi, again)
    assert len(game.cache.values) == entries


def test_datavalue_counters_aggregate_across_workers(background,
                                                     utility_parts):
    """Regression for the process-local undercount: utility memo, instance
    counters and datavalue.cache.* all aggregate through the shard merge."""
    game = make_game("datavalue", background, utility_parts)
    u = game.utility
    metric_before = metrics.counter("datavalue.cache.misses").value
    est = permutation_estimator(game, n_permutations=6, antithetic=False,
                                seed=1, backend="process", n_shards=3,
                                n_procs=2)
    assert est.values.shape == (u.n_points,)
    # Worker evaluations were charged back to the parent's instance
    # counters (they would read 0/near-0 if left process-local).
    assert u.n_evaluations > 0
    assert u.cache_misses > 0
    assert len(u._cache) > 0
    assert metrics.counter("datavalue.cache.misses").value > metric_before
    # Merged memo answers a serial re-run without fresh retraining.
    evals_before = u.n_evaluations
    again = permutation_estimator(game, n_permutations=6, antithetic=False,
                                  seed=1)
    assert np.array_equal(est.values, again.values)
    assert u.n_evaluations == evals_before


def test_worker_histograms_merge_and_pool_gauges(background):
    """Worker-side histogram deltas (per-chunk coalition timing) merge on
    join, and the settle path publishes the pool-health gauges."""
    chunk_before = metrics.histogram("coalition.chunk_ms").count
    shard_before = metrics.histogram("exec.shard_ms").count
    phi = exact_enumeration(make_game("masking", background, None),
                            backend="process", n_shards=2, n_procs=2)
    assert phi.shape == (N_FEATURES,)
    # The chunk-latency observations happened inside forked workers; the
    # parent registry sees them only through the shipped bucket deltas.
    assert metrics.histogram("coalition.chunk_ms").count > chunk_before
    assert metrics.histogram("coalition.chunk_ms").sum > 0.0
    # Shard timings observed parent-side, one per shard.
    assert metrics.histogram("exec.shard_ms").count >= shard_before + 2
    assert 0.0 < metrics.gauge("exec.utilization").value <= 1.0
    assert metrics.gauge("exec.imbalance").value >= 1.0
    assert metrics.gauge("exec.idle_s").value >= 0.0


def test_shard_utilization_math():
    from repro.exec.sharding import shard_utilization

    utilization, imbalance, idle_s = shard_utilization([1.0, 1.0, 2.0])
    assert np.isclose(utilization, 4.0 / 6.0)
    assert np.isclose(imbalance, 1.5)
    assert np.isclose(idle_s, 2.0)
    # Perfect balance: fully utilized, zero idle.
    assert shard_utilization([3.0, 3.0]) == (1.0, 1.0, 0.0)
    # Degenerate inputs answer neutral values, never divide by zero.
    assert shard_utilization([]) == (1.0, 1.0, 0.0)
    assert shard_utilization([None, None]) == (1.0, 1.0, 0.0)
    assert shard_utilization([0.0, 0.0]) == (1.0, 1.0, 0.0)


def test_folded_stacks_cover_adopted_worker_spans(tmp_path, background):
    """A multi-backend trace (parent span + adopted worker spans) folds
    into root-prefixed stacks — the flamegraph sees across the fork."""
    tracer = obs.get_tracer()
    tracer.reset()
    try:
        with obs.span("explain.folded"):
            exact_enumeration(make_game("masking", background, None),
                              backend="process", n_shards=2, n_procs=2)
        out = tmp_path / "trace.jsonl"
        tracer.export(str(out))
        folded_text = obs.folded_from_jsonl(str(out))
        paths = [line.rsplit(" ", 1)[0]
                 for line in folded_text.splitlines()]
        weights = [int(line.rsplit(" ", 1)[1])
                   for line in folded_text.splitlines()]
        assert "explain.folded" in paths
        # Worker spans re-parented under the caller show up as children.
        assert any(p.startswith("explain.folded;") for p in paths)
        assert all(w >= 0 for w in weights)
    finally:
        tracer.reset()


def test_worker_spans_reparent_under_caller(background):
    tracer = obs.get_tracer()
    tracer.reset()
    try:
        with obs.span("explain.test_exec"):
            exact_enumeration(make_game("masking", background, None),
                              backend="process", n_shards=2, n_procs=2)
        spans = tracer.spans()
        parent = next(s for s in spans if s.name == "explain.test_exec")
        adopted = [s for s in spans if s.parent_id == parent.span_id]
        # Worker-side spans (model eval / coalition chunks) re-rooted
        # under the caller's span rather than dangling as orphans.
        assert adopted, [s.name for s in spans]
    finally:
        tracer.reset()


# ------------------------------------------------------- budget semantics


def _guarded_masking_game(background):
    from repro.core.base import as_predict_fn

    return FeatureMaskingGame(as_predict_fn(linear_model), background[0],
                              background=background)


def test_sharded_budget_degrades_to_partial(background):
    """Worker budget exhaustion joins back as a partial estimate with the
    same convergence contract as the serial path."""
    game = _guarded_masking_game(background)
    # First walk of each shard costs (n+1) coalitions × background rows;
    # a budget of one-and-a-bit walks per shard lets every shard finish
    # walk 1 and exhaust inside walk 2 — a partial prefix, not an error.
    rows_per_walk = (N_FEATURES + 1) * game.rows_per_coalition
    with guard_scope(GuardConfig(query_budget=4 * rows_per_walk + 20)):
        est = permutation_estimator(game, n_permutations=8, antithetic=False,
                                    seed=0, backend="process", n_shards=4,
                                    n_procs=2)
        scope = current_scope()
        assert scope is not None and scope.rows_spent > 0
    diag = est.diagnostics
    assert diag["converged"] is False
    assert 0 < diag["n_walks_completed"] < diag["n_walks_requested"]
    assert diag["budget_error"]


def test_sharded_budget_zero_walks_raises(background):
    from repro.robust import BudgetExceededError

    game = _guarded_masking_game(background)
    with guard_scope(GuardConfig(query_budget=2)):
        with pytest.raises(BudgetExceededError):
            permutation_estimator(game, n_permutations=8, antithetic=False,
                                  seed=0, backend="process", n_shards=4,
                                  n_procs=2)


# --------------------------------------------------------- pool machinery


def test_map_shards_collects_errors_per_shard():
    def run_shard(k):
        if k == 1:
            raise ValueError("shard one is cursed")
        return k * 10

    outcomes = map_shards(run_shard, [0, 1, 2], backend="thread", n_procs=2)
    assert [o.ok for o in outcomes] == [True, False, True]
    assert outcomes[0].value == 0 and outcomes[2].value == 20
    assert isinstance(outcomes[1].error, ValueError)


def test_map_shards_process_returns_in_shard_order():
    def run_shard(k):
        return (k, in_worker())

    outcomes = map_shards(run_shard, [2, 0, 1], backend="process", n_procs=2)
    values = [o.value for o in outcomes]
    assert [v[0] for v in values] == [2, 0, 1]
    # Shards genuinely ran in worker mode (unless fork degraded to
    # threads, in which case they ran under worker thread scopes).
    assert all(o.ok for o in outcomes)


# -------------------------------------------- resumable estimators (PR 7)


@pytest.mark.parametrize("family", ["masking", "datavalue"])
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_resumed_walks_rejoin_bitwise_across_backends(family, backend,
                                                      background,
                                                      utility_parts):
    """A budget-style partial resumed on any backend == uninterrupted.

    Per-walk results are independent of the shard partition, so only
    the *remaining* batches are sharded on resume and the joined stream
    must match the serial uninterrupted run bit for bit.
    """
    kwargs = {"n_permutations": 9, "seed": 4}
    full = permutation_estimator(
        make_game(family, background, utility_parts), **kwargs
    )
    partial = permutation_estimator(
        make_game(family, background, utility_parts),
        n_permutations=4, seed=4,
    )
    assert partial.state.n_walks < full.state.n_walks
    resumed = permutation_estimator(
        make_game(family, background, utility_parts),
        backend=backend, n_shards=2, n_procs=2,
        resume_state=partial.state, **kwargs,
    )
    assert np.array_equal(resumed.values, full.values), (family, backend)
    assert np.array_equal(resumed.std_err, full.std_err)
    assert resumed.diagnostics["n_walks_completed"] == \
        full.diagnostics["n_walks_completed"]


def test_resume_state_crosses_process_boundary_as_dict(background,
                                                       utility_parts):
    """to_dict() state persisted by a worker run resumes in the parent."""
    import json

    kwargs = {"n_permutations": 7, "antithetic": False, "seed": 8}
    full = permutation_estimator(
        make_game("masking", background, utility_parts), **kwargs
    )
    partial = permutation_estimator(
        make_game("masking", background, utility_parts),
        n_permutations=3, antithetic=False, seed=8,
        backend="process", n_shards=2, n_procs=2,
    )
    payload = json.loads(json.dumps(partial.state.to_dict()))
    resumed = permutation_estimator(
        make_game("masking", background, utility_parts),
        resume_state=payload, **kwargs,
    )
    assert np.array_equal(resumed.values, full.values)
