"""Tests for actionable recourse on linear classifiers."""

import numpy as np
import pytest

from repro.counterfactual import LinearRecourse, recourse_audit


@pytest.fixture(scope="module")
def recourse(loan_data, loan_logistic):
    return LinearRecourse(
        loan_logistic.coef_, loan_logistic.intercept_, loan_data,
        grid_size=8, max_actions=3,
    )


@pytest.fixture(scope="module")
def denied_rows(loan_data, recourse):
    return [
        x for x in loan_data.X if recourse.score(x) < 0
    ][:10]


def test_already_positive_needs_no_actions(loan_data, recourse):
    positive = next(x for x in loan_data.X if recourse.score(x) >= 0)
    result = recourse.find(positive)
    assert result.feasible
    assert result.actions == []
    assert result.total_cost == 0.0


def test_found_actions_actually_flip(denied_rows, recourse):
    for x in denied_rows:
        result = recourse.find(x)
        if not result.feasible:
            continue
        flipped = x.copy()
        for action in result.actions:
            flipped[action.feature] = action.new_value
        assert recourse.score(flipped) >= 0
        assert result.new_score >= 0


def test_actions_only_touch_actionable_features(loan_data, denied_rows,
                                                recourse):
    non_actionable = {
        j for j, f in enumerate(loan_data.features) if not f.actionable
    }
    for x in denied_rows:
        result = recourse.find(x)
        for action in result.actions:
            assert action.feature not in non_actionable


def test_monotone_directions_respected(loan_data, denied_rows, recourse):
    for x in denied_rows:
        result = recourse.find(x)
        for action in result.actions:
            spec = loan_data.features[action.feature]
            if spec.monotone == +1:
                assert action.new_value >= action.old_value


def test_costs_are_percentile_shifts(loan_data, recourse, denied_rows):
    for x in denied_rows[:3]:
        result = recourse.find(x)
        for action in result.actions:
            spec = loan_data.features[action.feature]
            if spec.is_categorical:
                assert action.cost == 1.0
            else:
                col = loan_data.X[:, action.feature]
                expected = abs(
                    np.mean(col <= action.new_value)
                    - np.mean(col <= action.old_value)
                )
                assert action.cost == pytest.approx(expected)


def test_flipset_rendering(denied_rows, recourse):
    result = recourse.find(denied_rows[0])
    flipset = result.flipset()
    assert len(flipset) == len(result.actions)
    for name, (old, new) in flipset.items():
        assert old != new


def test_audit_structure_and_group_breakdown(loan_data, recourse):
    X = loan_data.X[:120]
    groups = X[:, loan_data.feature_index("gender")]
    audit = recourse_audit(recourse, X, groups=groups)
    assert "overall" in audit
    assert "group_0.0" in audit and "group_1.0" in audit
    overall = audit["overall"]
    assert overall["n_denied"] > 0
    assert 0.0 <= overall["feasible_rate"] <= 1.0
    # group counts partition the overall denials
    assert (
        audit["group_0.0"]["n_denied"] + audit["group_1.0"]["n_denied"]
        == overall["n_denied"]
    )


def test_mismatched_coef_width_rejected(loan_data):
    with pytest.raises(ValueError):
        LinearRecourse(np.zeros(3), 0.0, loan_data)
