"""Tests for data valuation: utility, LOO, TMC/Beta/KNN/distributional."""

import numpy as np
import pytest

from repro.datasets import flip_labels, make_classification
from repro.datavalue import (
    UtilityFunction,
    beta_shapley,
    beta_weights,
    distributional_shapley,
    gradient_shapley,
    knn_shapley,
    leave_one_out_values,
    tmc_shapley,
)
from repro.models import KNeighborsClassifier, LogisticRegression
from repro.models.model_selection import train_test_split


@pytest.fixture(scope="module")
def valuation_setup():
    """Small train set with known flipped labels + clean validation set."""
    data = make_classification(140, n_features=4, n_informative=3,
                               class_sep=2.5, seed=41)
    X_train, X_val, y_train, y_val = train_test_split(
        data.X, data.y, test_size=0.4, seed=0
    )
    rng = np.random.default_rng(7)
    n_flip = 8
    flipped = rng.choice(X_train.shape[0], size=n_flip, replace=False)
    y_noisy = y_train.copy()
    y_noisy[flipped] = 1 - y_noisy[flipped]
    utility = UtilityFunction(
        lambda: LogisticRegression(alpha=1.0),
        X_train, y_noisy, X_val, y_val,
    )
    return utility, flipped, (X_train, y_noisy, X_val, y_val)


class TestUtility:
    def test_empty_set_uses_majority_baseline(self, valuation_setup):
        utility, __, (___, ____, _____, y_val) = valuation_setup
        majority = max(np.mean(y_val), 1 - np.mean(y_val))
        assert utility(np.array([], dtype=int)) == pytest.approx(majority)

    def test_single_class_subset_handled(self, valuation_setup):
        utility, __, (X_train, y_noisy, ___, ____) = valuation_setup
        ones = np.where(y_noisy == 1)[0][:5]
        score = utility(ones)
        assert 0.0 <= score <= 1.0

    def test_cache_avoids_refits(self, valuation_setup):
        utility, __, ___ = valuation_setup
        before = utility.n_evaluations
        subset = np.arange(20)
        utility(subset)
        mid = utility.n_evaluations
        utility(subset[::-1])  # same set, different order
        assert utility.n_evaluations == mid
        assert mid >= before

    def test_full_score_reasonable(self, valuation_setup):
        utility, __, ___ = valuation_setup
        assert utility.full_score() > 0.6


class TestValuationSeparatesNoise:
    @staticmethod
    def detection_rate(values, flipped, k):
        worst = set(np.argsort(values)[:k].tolist())
        return len(worst & set(flipped.tolist())) / len(flipped)

    def test_tmc_flags_flipped_points(self, valuation_setup):
        utility, flipped, __ = valuation_setup
        values = tmc_shapley(utility, n_permutations=60, seed=0)
        rate = self.detection_rate(values.values, flipped, 2 * len(flipped))
        assert rate >= 0.5
        # flipped points are worth less on average
        mask = np.zeros(utility.n_points, dtype=bool)
        mask[flipped] = True
        assert values.values[mask].mean() < values.values[~mask].mean()

    def test_tmc_beats_random_ranking(self, valuation_setup, rng):
        utility, flipped, __ = valuation_setup
        values = tmc_shapley(utility, n_permutations=60, seed=0)
        random_rate = np.mean([
            self.detection_rate(rng.permutation(utility.n_points).astype(float),
                                flipped, 2 * len(flipped))
            for __ in range(20)
        ])
        tmc_rate = self.detection_rate(values.values, flipped, 2 * len(flipped))
        assert tmc_rate > random_rate

    def test_knn_shapley_flags_flipped_points(self, valuation_setup):
        __, flipped, (X_train, y_noisy, X_val, y_val) = valuation_setup
        values = knn_shapley(X_train, y_noisy, X_val, y_val, k=5)
        rate = self.detection_rate(values.values, flipped, 2 * len(flipped))
        assert rate >= 0.5

    def test_beta_shapley_small_coalition_emphasis(self, valuation_setup):
        utility, flipped, __ = valuation_setup
        values = beta_shapley(utility, alpha=16, beta=1,
                              n_permutations=40, seed=0)
        rate = self.detection_rate(values.values, flipped, 2 * len(flipped))
        assert rate >= 0.4


class TestLOO:
    def test_values_match_definition(self, valuation_setup):
        utility, __, ___ = valuation_setup
        att = leave_one_out_values(utility)
        full = utility.full_score()
        everything = np.arange(utility.n_points)
        i = 3
        expected = full - utility(np.delete(everything, i))
        assert att.values[i] == pytest.approx(expected)
        assert att.meta["n_retrainings"] == utility.n_points


class TestKnnShapleyExactness:
    def test_efficiency_identity(self):
        """Values must sum to U(D) − U(∅) per validation point."""
        rng = np.random.default_rng(3)
        X_train = rng.normal(0, 1, (30, 2))
        y_train = (X_train[:, 0] > 0).astype(int)
        X_val = rng.normal(0, 1, (10, 2))
        y_val = (X_val[:, 0] > 0).astype(int)
        k = 3
        att = knn_shapley(X_train, y_train, X_val, y_val, k=k)
        knn = KNeighborsClassifier(n_neighbors=k).fit(X_train, y_train)
        # Per-point utility: fraction of the k neighbors matching y_val,
        # averaged over validation points; empty-set utility is 0 in the
        # Jia et al. formulation.
        dist, idx = knn.kneighbors(X_val, n_neighbors=k)
        per_point = np.mean([
            np.mean(y_train[idx[i]] == y_val[i]) for i in range(len(y_val))
        ])
        assert att.values.sum() == pytest.approx(per_point, abs=1e-10)

    def test_matches_bruteforce_tmc_on_tiny_problem(self):
        rng = np.random.default_rng(9)
        X_train = rng.normal(0, 1, (8, 2))
        y_train = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        X_val = rng.normal(0, 1, (6, 2))
        y_val = (X_val[:, 0] > 0).astype(int)
        exact = knn_shapley(X_train, y_train, X_val, y_val, k=1)
        # brute force over the exact same game
        from repro.shapley import exact_shapley

        def v(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            out = np.zeros(masks.shape[0])
            for row, mask in enumerate(masks):
                subset = np.where(mask)[0]
                if subset.size == 0:
                    out[row] = 0.0
                    continue
                correct = 0.0
                for xv, yv in zip(X_val, y_val):
                    d = np.linalg.norm(X_train[subset] - xv, axis=1)
                    nearest = subset[np.argmin(d)]
                    correct += float(y_train[nearest] == yv)
                out[row] = correct / len(y_val)
            return out

        reference = exact_shapley(v, 8)
        assert np.allclose(exact.values, reference, atol=1e-10)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            knn_shapley(np.zeros((5, 2)), np.zeros(5), np.zeros((2, 2)),
                        np.zeros(2), k=9)


class TestBetaWeights:
    def test_uniform_beta_is_flat(self):
        w = beta_weights(20, alpha=1.0, beta=1.0)
        assert np.allclose(w, 1.0, atol=1e-10)

    def test_alpha_emphasizes_small_coalitions(self):
        w = beta_weights(20, alpha=16.0, beta=1.0)
        assert w[0] > w[-1]
        assert np.all(np.diff(w) <= 1e-9)

    def test_normalization(self):
        w = beta_weights(15, alpha=4.0, beta=2.0)
        assert w.sum() == pytest.approx(15.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            beta_weights(10, alpha=0.0, beta=1.0)


def test_distributional_shapley_interface(valuation_setup):
    utility, __, ___ = valuation_setup
    value, stderr = distributional_shapley(
        0, utility, n_draws=40, max_cardinality=30, seed=0
    )
    assert np.isfinite(value)
    assert stderr >= 0.0
    with pytest.raises(IndexError):
        distributional_shapley(10_000, utility)


def test_gradient_shapley_runs_and_separates(valuation_setup):
    __, flipped, (X_train, y_noisy, X_val, y_val) = valuation_setup
    att = gradient_shapley(
        lambda: LogisticRegression(alpha=1.0),
        X_train, y_noisy, X_val, y_val,
        n_permutations=30, learning_rate=0.1, seed=0,
    )
    assert att.values.shape == (X_train.shape[0],)
    mask = np.zeros(X_train.shape[0], dtype=bool)
    mask[flipped] = True
    assert att.values[mask].mean() < att.values[~mask].mean()
