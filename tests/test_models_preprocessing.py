"""Tests for preprocessing transformers, with round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.models.preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5, 3, (200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    @given(arrays(np.float64, (7, 3),
                  elements=st.floats(-1e6, 1e6)))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, X):
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X,
                           atol=1e-6 * (1 + np.abs(X).max()))


class TestMinMaxScaler:
    def test_range(self, rng):
        X = rng.normal(0, 10, (100, 2))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_round_trip(self, rng):
        X = rng.normal(0, 10, (50, 4))
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)


class TestOneHotEncoder:
    def test_expansion_layout(self):
        X = np.array([[0.0, 1.5], [1.0, 2.5], [2.0, 3.5]])
        enc = OneHotEncoder([0]).fit(X)
        Z = enc.transform(X)
        assert Z.shape == (3, 4)  # 3 categories + 1 passthrough
        assert Z[:, :3].sum(axis=1).tolist() == [1.0, 1.0, 1.0]
        assert Z[:, 3].tolist() == [1.5, 2.5, 3.5]
        assert enc.output_feature_of(0) == slice(0, 3)
        assert enc.output_feature_of(1) == slice(3, 4)

    def test_round_trip(self, rng):
        X = np.column_stack([
            rng.integers(0, 4, 50).astype(float),
            rng.normal(0, 1, 50),
            rng.integers(0, 2, 50).astype(float),
        ])
        enc = OneHotEncoder([0, 2]).fit(X)
        assert np.allclose(enc.inverse_transform(enc.transform(X)), X)

    def test_wrong_width_rejected(self):
        enc = OneHotEncoder([0]).fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            enc.transform(np.zeros((3, 5)))


class TestLabelEncoder:
    def test_round_trip_strings(self):
        y = ["cat", "dog", "cat", "bird"]
        enc = LabelEncoder().fit(y)
        codes = enc.transform(y)
        assert codes.dtype == int
        assert list(enc.inverse_transform(codes)) == y

    def test_unseen_label_rejected(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.transform(["c"])
