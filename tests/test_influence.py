"""Tests for influence functions, group influence and tree influence."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.influence import GroupInfluence, InfluenceFunctions, LeafInfluence
from repro.models import GradientBoostingClassifier, LogisticRegression
from repro.models.metrics import pearson_correlation
from repro.models.model_selection import train_test_split


@pytest.fixture(scope="module")
def setup():
    data = make_classification(160, n_features=4, class_sep=1.5, seed=51)
    X_train, X_test, y_train, y_test = train_test_split(
        data.X, data.y, test_size=0.3, seed=1
    )
    model = LogisticRegression(alpha=1.0).fit(X_train, y_train)
    return model, X_train, y_train, X_test, y_test


def total_loss(model, X, y):
    return model.loss(X, y) * len(np.atleast_1d(y))


class TestInfluenceFunctions:
    def test_correlates_with_actual_retraining(self, setup):
        model, X_train, y_train, X_test, y_test = setup
        influence = InfluenceFunctions(model, X_train, y_train)
        estimated = influence.influence_on_loss(X_test, y_test)
        indices = np.arange(40)
        actual = influence.actual_retrain_deltas(
            lambda: LogisticRegression(alpha=1.0),
            X_test, y_test, indices, total_loss,
        )
        assert pearson_correlation(estimated.values[indices], actual) > 0.9

    def test_cg_matches_direct_solver(self, setup):
        model, X_train, y_train, X_test, y_test = setup
        direct = InfluenceFunctions(model, X_train, y_train, solver="direct")
        cg = InfluenceFunctions(model, X_train, y_train, solver="cg")
        a = direct.influence_on_loss(X_test, y_test).values
        b = cg.influence_on_loss(X_test, y_test).values
        assert np.allclose(a, b, atol=1e-6)

    def test_parameter_influence_direction(self, setup):
        model, X_train, y_train, __, ___ = setup
        delta = influence_delta = InfluenceFunctions(
            model, X_train, y_train
        ).parameter_influence(0)
        # Compare to the actual retrain delta for the same point.
        retrained = LogisticRegression(alpha=1.0).fit(
            np.delete(X_train, 0, axis=0), np.delete(y_train, 0)
        )
        actual = retrained.params - model.params
        cosine = float(
            delta @ actual / (np.linalg.norm(delta) * np.linalg.norm(actual))
        )
        assert cosine > 0.95

    def test_damping_changes_nothing_when_zero(self, setup):
        model, X_train, y_train, X_test, y_test = setup
        a = InfluenceFunctions(model, X_train, y_train, damping=0.0)
        b = InfluenceFunctions(model, X_train, y_train, damping=1e-8)
        assert np.allclose(
            a.influence_on_loss(X_test, y_test).values,
            b.influence_on_loss(X_test, y_test).values,
            atol=1e-4,
        )

    def test_unknown_solver_rejected(self, setup):
        model, X_train, y_train, __, ___ = setup
        with pytest.raises(ValueError):
            InfluenceFunctions(model, X_train, y_train, solver="magic")


class TestGroupInfluence:
    def test_order_hierarchy_on_coherent_group(self, setup):
        model, X_train, y_train, __, ___ = setup
        # A coherent group: the 25 highest-x0 points (correlated rows).
        group = np.argsort(X_train[:, 0])[-25:]
        gi = GroupInfluence(model, X_train, y_train)
        actual = gi.actual_parameter_change(
            group, lambda: LogisticRegression(alpha=1.0)
        )
        errors = {}
        for order in ("first_order", "second_order", "newton"):
            estimated = gi.parameter_change(group, order)
            errors[order] = np.linalg.norm(estimated - actual)
        assert errors["second_order"] < errors["first_order"]
        assert errors["newton"] <= errors["second_order"] * 1.05

    def test_loss_change_sign_matches_retrain_for_harmful_group(self, setup):
        # A group of label-corrupted points: removing it clearly lowers
        # the clean test loss, so the first-order test-loss estimate has
        # an unambiguous sign to match.
        __, X_train, y_train, X_test, y_test = setup
        group = np.arange(25)
        y_corrupted = y_train.copy()
        y_corrupted[group] = 1 - y_corrupted[group]
        model = LogisticRegression(alpha=1.0).fit(X_train, y_corrupted)
        gi = GroupInfluence(model, X_train, y_corrupted)
        estimated = gi.loss_change(group, X_test, y_test, order="newton")
        keep = np.delete(np.arange(X_train.shape[0]), group)
        retrained = LogisticRegression(alpha=1.0).fit(
            X_train[keep], y_corrupted[keep]
        )
        actual = total_loss(retrained, X_test, y_test) - total_loss(
            model, X_test, y_test
        )
        assert actual < 0  # removing corrupted labels helps
        assert np.sign(estimated) == np.sign(actual)

    def test_unknown_order_rejected(self, setup):
        model, X_train, y_train, __, ___ = setup
        gi = GroupInfluence(model, X_train, y_train)
        with pytest.raises(ValueError):
            gi.parameter_change(np.arange(3), order="third")


class TestLeafInfluence:
    @pytest.fixture(scope="class")
    def gbm_setup(self):
        data = make_classification(150, n_features=4, seed=53)
        gbm = GradientBoostingClassifier(
            n_estimators=12, max_depth=2, seed=0
        ).fit(data.X, data.y)
        return gbm, data

    def test_prediction_influence_tracks_fixed_structure_retrain(self, gbm_setup):
        gbm, data = gbm_setup
        li = LeafInfluence(gbm, data.X, data.y)
        x = data.X[0]
        estimated = li.prediction_influence(x)
        # Ground truth under the SAME approximation contract: retrain with
        # structures fixed by deleting a point and recomputing leaf values
        # along the original (g, h) trajectory.
        j = int(np.argmax(np.abs(estimated.values)))
        lam = gbm.leaf_l2
        manual = 0.0
        for stage, tree in enumerate(gbm.estimators_):
            x_leaf = int(tree.tree_.apply(x[None, :])[0])
            j_leaf = int(tree.tree_.apply(data.X[j:j + 1])[0])
            if x_leaf != j_leaf:
                continue
            sum_g, sum_h = li._stage_sums[stage][x_leaf]
            g_j = li._stage_g[stage][j]
            h_j = li._stage_h[stage][j]
            before = sum_g / (sum_h + lam)
            after = (sum_g - g_j) / (sum_h - h_j + lam)
            manual += gbm.learning_rate * (after - before)
        assert estimated.values[j] == pytest.approx(manual, abs=1e-10)

    def test_influence_zero_for_points_never_sharing_leaves(self, gbm_setup):
        gbm, data = gbm_setup
        li = LeafInfluence(gbm, data.X, data.y)
        x = data.X[0]
        values = li.prediction_influence(x).values
        shares = np.zeros(data.n_samples, dtype=bool)
        for stage, tree in enumerate(gbm.estimators_):
            x_leaf = int(tree.tree_.apply(x[None, :])[0])
            shares |= li._stage_leaves[stage] == x_leaf
        assert np.all(values[~shares] == 0.0)

    def test_loss_influence_flags_mislabeled_point(self, gbm_setup):
        gbm, data = gbm_setup
        # Corrupt one label, retrain, and check it ranks among the most
        # loss-increasing points.
        y_noisy = data.y.copy()
        y_noisy[3] = 1 - y_noisy[3]
        gbm2 = GradientBoostingClassifier(
            n_estimators=12, max_depth=2, seed=0
        ).fit(data.X, y_noisy)
        li = LeafInfluence(gbm2, data.X, y_noisy)
        att = li.loss_influence(data.X[50:90], data.y[50:90])
        # Removing the corrupted point must be estimated to reduce the
        # clean-data loss (negative value) and land in the harmful half —
        # the fixed-(g, h) approximation only sees shared-leaf effects, so
        # a single flipped label is visible but not necessarily extreme.
        assert att.values[3] < 0
        rank = int(np.where(att.ranking(ascending=True) == 3)[0][0])
        assert rank < data.n_samples // 2

    def test_subsample_rejected(self, gbm_setup):
        __, data = gbm_setup
        gbm = GradientBoostingClassifier(
            n_estimators=3, subsample=0.5, seed=0
        ).fit(data.X, data.y)
        with pytest.raises(ValueError):
            LeafInfluence(gbm, data.X, data.y)
