"""Tests for the CXPlain causal-objective surrogate explainer."""

import numpy as np
import pytest

from repro.causal import CXPlainExplainer, granger_attributions
from repro.datasets import make_classification
from repro.models import LogisticRegression


@pytest.fixture(scope="module")
def setup():
    data = make_classification(400, n_features=5, n_informative=2,
                               class_sep=2.5, seed=7)
    model = LogisticRegression(alpha=0.5).fit(data.X, data.y)
    return data, model


class TestGrangerAttributions:
    def test_rows_are_distributions(self, setup):
        data, model = setup
        from repro.core.base import as_predict_fn

        A = granger_attributions(as_predict_fn(model), data.X[:50],
                                 data.y[:50])
        assert A.shape == (50, 5)
        assert np.all(A >= 0)
        assert np.allclose(A.sum(axis=1), 1.0)

    def test_informative_features_dominate(self, setup):
        data, model = setup
        from repro.core.base import as_predict_fn

        A = granger_attributions(as_predict_fn(model), data.X[:100],
                                 data.y[:100])
        means = A.mean(axis=0)
        assert means[:2].sum() > means[2:].sum()

    def test_useless_model_gives_uniform(self):
        X = np.random.default_rng(0).normal(0, 1, (30, 4))
        y = np.zeros(30)
        A = granger_attributions(lambda Z: np.full(len(Z), 0.5), X, y)
        assert np.allclose(A, 0.25)


class TestCXPlainExplainer:
    def test_amortized_explanations_match_signal(self, setup):
        data, model = setup
        explainer = CXPlainExplainer(model, n_bootstrap=3, seed=0)
        explainer.fit(data.X[:300], data.y[:300])
        top_hits = 0
        for x in data.X[300:310]:
            att = explainer.explain(x)
            if att.ranking()[0] in (0, 1):
                top_hits += 1
            assert np.all(att.values >= 0)
            assert att.values.sum() == pytest.approx(1.0, abs=1e-6)
            assert att.meta["uncertainty"].shape == (5,)
        assert top_hits >= 7

    def test_explain_before_fit_raises(self, setup):
        data, model = setup
        with pytest.raises(RuntimeError):
            CXPlainExplainer(model).explain(data.X[0])

    def test_direct_mode(self, setup):
        data, model = setup
        explainer = CXPlainExplainer(model, n_bootstrap=1, seed=0)
        explainer.fit(data.X[:100], data.y[:100])
        att = explainer.explain_direct(data.X[0], data.y[0])
        assert att.values.sum() == pytest.approx(1.0)

    def test_amortized_needs_no_model_queries(self, setup):
        data, model = setup
        calls = {"n": 0}
        from repro.core.base import as_predict_fn

        inner = as_predict_fn(model)

        def counting(X):
            calls["n"] += 1
            return inner(X)

        explainer = CXPlainExplainer(counting, n_bootstrap=2, seed=0)
        explainer.fit(data.X[:100], data.y[:100])
        before = calls["n"]
        explainer.explain(data.X[0])
        assert calls["n"] == before  # only surrogate forward passes
