"""Tests for repro.core.dataset."""

import numpy as np
import pytest

from repro.core import FeatureSpec, TabularDataset


def make_data():
    X = np.array([[1.0, 0], [2.0, 1], [3.0, 1], [4.0, 0]])
    y = np.array([0, 1, 1, 0])
    features = [
        FeatureSpec("size"),
        FeatureSpec("color", "categorical", categories=("red", "blue")),
    ]
    return TabularDataset(X, y, features, target_name="label")


def test_basic_shape_properties():
    data = make_data()
    assert data.n_samples == 4
    assert data.n_features == 2
    assert len(data) == 4
    assert data.feature_names == ["size", "color"]
    assert "label" in repr(data)


def test_rejects_mismatched_shapes():
    with pytest.raises(ValueError):
        TabularDataset(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        TabularDataset(np.zeros((3, 2)), np.zeros(3), ["only_one"])
    with pytest.raises(ValueError):
        TabularDataset(np.zeros(3), np.zeros(3))


def test_string_features_promoted_to_numeric_specs():
    data = TabularDataset(np.zeros((2, 2)), np.zeros(2), ["a", "b"])
    assert all(not f.is_categorical for f in data.features)


def test_feature_spec_validation():
    with pytest.raises(ValueError):
        FeatureSpec("x", "categorical")  # no categories
    with pytest.raises(ValueError):
        FeatureSpec("x", "weird_kind")
    with pytest.raises(ValueError):
        FeatureSpec("x", monotone=2)


def test_feature_index_and_categorical_split():
    data = make_data()
    assert data.feature_index("color") == 1
    with pytest.raises(KeyError):
        data.feature_index("missing")
    assert data.categorical_indices == [1]
    assert data.numeric_indices == [0]


def test_column_stats():
    data = make_data()
    stats = data.column_stats()
    assert stats["mean"][0] == pytest.approx(2.5)
    assert stats["frequencies"][0] is None
    freq = stats["frequencies"][1]
    assert freq == pytest.approx([0.5, 0.5])
    assert np.all(stats["std"] > 0)


def test_column_stats_constant_column_has_positive_std():
    data = TabularDataset(np.ones((5, 1)), np.zeros(5))
    assert data.column_stats()["std"][0] > 0


def test_subset_and_drop():
    data = make_data()
    sub = data.subset(np.array([0, 2]))
    assert sub.n_samples == 2
    assert sub.X[1, 0] == 3.0
    dropped = data.drop(np.array([0]))
    assert dropped.n_samples == 3
    assert dropped.X[0, 0] == 2.0
    # originals untouched
    assert data.n_samples == 4


def test_render_row_uses_category_labels():
    data = make_data()
    rendered = data.render_row(data.X[1])
    assert rendered["color"] == "blue"
    assert rendered["size"] == "2"
