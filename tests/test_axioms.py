"""Seeded property tests of the Shapley axioms, per game family.

:func:`repro.games.estimators.exact_enumeration` is the library's
ground-truth oracle, so it should satisfy the four axioms that uniquely
characterize the Shapley value [Shapley 1953] on every game adapter:

* **efficiency** — Σ_i φ_i = v(N) − v(∅);
* **symmetry** — players with identical marginal contributions to every
  coalition get identical values;
* **dummy** — a player whose marginal contribution is always zero gets
  value zero;
* **linearity** — φ(αu + βw) = αφ(u) + βφ(w).

Symmetry/dummy/linearity need games where the property holds *by
construction* (duplicate background columns, zero-weight features,
additive queries, noiseless SCMs), so each family builds its own
fixtures; stochastic games (the seeded SCM samplers) get their axioms
checked on a noiseless SCM where the value function is an exact
deterministic function of the mask, plus an efficiency check in the
stochastic regime via the drawn value table itself.

The approximate estimators are held to the axioms they claim:
permutation walks telescope (efficiency to fp round-off) and the kernel
WLS solver imposes efficiency as a hard constraint, so both are checked
within tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.datavalue.utility import UtilityFunction
from repro.db.relation import Relation
from repro.games.adapters import (
    DataValueGame,
    FeatureMaskingGame,
    InterventionalGame,
    TopologicalGame,
    TupleProvenanceGame,
)
from repro.games.estimators import (
    all_coalitions,
    exact_enumeration,
    kernel_wls_estimator,
    permutation_estimator,
)
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split

ATOL = 1e-12


def masks_in_enumeration_order(n: int) -> np.ndarray:
    subsets = all_coalitions(n)
    masks = np.zeros((len(subsets), n), dtype=bool)
    for row, subset in enumerate(subsets):
        masks[row, list(subset)] = True
    return masks


def grand_minus_empty(game) -> float:
    n = game.n_players
    empty = float(np.asarray(game.value(np.zeros((1, n), dtype=bool)))[0])
    grand = float(np.asarray(game.value(np.ones((1, n), dtype=bool)))[0])
    return grand - empty


# ------------------------------------------------------ feature masking


def linear_predict(weights):
    w = np.asarray(weights, dtype=float)
    return lambda X: np.atleast_2d(X) @ w


@pytest.fixture(scope="module")
def masking_parts():
    rng = np.random.default_rng(21)
    background = rng.normal(size=(20, 4))
    background[:, 1] = background[:, 0]  # columns 0 and 1 exchangeable
    x = np.array([0.8, 0.8, -1.2, 2.0])
    return background, x


def test_masking_efficiency(masking_parts):
    background, x = masking_parts
    game = FeatureMaskingGame(linear_predict([1.0, -2.0, 0.5, 0.25]), x,
                              background=background)
    phi = exact_enumeration(game)
    assert abs(phi.sum() - grand_minus_empty(game)) < 1e-9


def test_masking_symmetry_and_dummy(masking_parts):
    background, x = masking_parts
    # w0 == w1 on identical columns with x0 == x1 → symmetric; w3 == 0
    # → feature 3 never moves the output → dummy.
    game = FeatureMaskingGame(linear_predict([1.5, 1.5, -2.0, 0.0]), x,
                              background=background)
    phi = exact_enumeration(game)
    assert abs(phi[0] - phi[1]) < ATOL
    assert abs(phi[3]) < ATOL


def test_masking_linearity(masking_parts):
    background, x = masking_parts
    w_u, w_w = [1.0, -1.0, 2.0, 0.5], [0.5, 2.0, -0.5, 1.0]
    alpha, beta = 2.0, -0.75

    def phi_of(weights):
        return exact_enumeration(FeatureMaskingGame(
            linear_predict(weights), x, background=background))

    combined = alpha * np.asarray(w_u) + beta * np.asarray(w_w)
    assert np.allclose(phi_of(combined),
                       alpha * phi_of(w_u) + beta * phi_of(w_w), atol=1e-9)


# ---------------------------------------------------------- data values


class _ToyUtility:
    """Additive closed-form utility: U(S) = Σ_{i∈S} weight_i.

    Additivity makes every axiom checkable in closed form (φ_i is
    exactly weight_i) while still driving the real
    :class:`DataValueGame` mask → index-set → utility path.
    """

    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=float)
        self.n_points = int(self.weights.shape[0])
        self.empty_score = 0.0

    def full_score(self) -> float:
        return float(self.weights.sum())

    def __call__(self, indices) -> float:
        return float(self.weights[np.asarray(indices, dtype=int)].sum())


def test_datavalue_axioms_closed_form():
    weights = np.array([0.5, 0.5, -1.0, 0.0, 2.0])
    phi = exact_enumeration(DataValueGame(_ToyUtility(weights)))
    assert np.allclose(phi, weights, atol=ATOL)  # efficiency + all axioms
    assert abs(phi[0] - phi[1]) < ATOL           # symmetry
    assert abs(phi[3]) < ATOL                    # dummy


def test_datavalue_linearity():
    u, w = np.array([1.0, 2.0, -0.5, 0.0]), np.array([0.5, -1.0, 1.5, 2.0])
    alpha, beta = 3.0, -0.5
    phi_u = exact_enumeration(DataValueGame(_ToyUtility(u)))
    phi_w = exact_enumeration(DataValueGame(_ToyUtility(w)))
    phi_c = exact_enumeration(DataValueGame(_ToyUtility(alpha * u + beta * w)))
    assert np.allclose(phi_c, alpha * phi_u + beta * phi_w, atol=ATOL)


def test_datavalue_retraining_efficiency_and_symmetry():
    """The real retraining utility: duplicated training points are
    exchangeable, and efficiency holds on the actual fitted scores."""
    data = make_classification(50, n_features=3, n_informative=2,
                               class_sep=2.0, seed=13)
    Xtr, Xv, ytr, yv = train_test_split(data.X, data.y, test_size=0.4, seed=0)
    Xtr, ytr = Xtr[:6].copy(), ytr[:6].copy()
    Xtr[1], ytr[1] = Xtr[0], ytr[0]  # points 0 and 1 identical
    utility = UtilityFunction(lambda: LogisticRegression(alpha=1.0),
                              Xtr, ytr, Xv, yv)
    game = DataValueGame(utility)
    phi = exact_enumeration(game)
    assert abs(phi.sum() - (utility.full_score() - utility.empty_score)) < 1e-9
    assert abs(phi[0] - phi[1]) < ATOL


# ----------------------------------------------------- tuple provenance


def group_count_query(group):
    return lambda r: float(sum(1 for t in r.rows if t[1] == group))


@pytest.fixture(scope="module")
def relation():
    # groups: 0,0,1,1,2,2 — tuples 0/1 exchangeable for group-0 queries,
    # tuples 4/5 dummies for them.
    return Relation(["id", "grp"], [(i, i // 2) for i in range(6)])


def test_tuple_efficiency(relation):
    query = lambda r: (sum(1 for t in r.rows if t[1] == 0) * 2.0
                       + len(r.rows) * 0.1)
    game = TupleProvenanceGame(relation, query)
    phi = exact_enumeration(game)
    assert abs(phi.sum() - grand_minus_empty(game)) < 1e-9


def test_tuple_symmetry_and_dummy(relation):
    game = TupleProvenanceGame(relation, group_count_query(0))
    phi = exact_enumeration(game)
    assert abs(phi[0] - phi[1]) < ATOL  # same group, additive query
    assert np.allclose(phi[2:], 0.0, atol=ATOL)  # other groups never count


def test_tuple_linearity(relation):
    alpha, beta = 2.0, 5.0
    q0, q1 = group_count_query(0), group_count_query(1)
    combined = lambda r: alpha * q0(r) + beta * q1(r)
    phi0 = exact_enumeration(TupleProvenanceGame(relation, q0))
    phi1 = exact_enumeration(TupleProvenanceGame(relation, q1))
    phi_c = exact_enumeration(TupleProvenanceGame(relation, combined))
    assert np.allclose(phi_c, alpha * phi0 + beta * phi1, atol=ATOL)


# ------------------------------------------------- causal (noiseless SCM)


def make_noiseless_scm():
    """Three independent roots with zero noise: un-intervened variables
    are exactly 0, so v(S) is a deterministic function of the mask."""
    from repro.causal.scm import StructuralCausalModel

    scm = StructuralCausalModel()
    zero = lambda rng, n: np.zeros(n)
    for name in ("a", "b", "c"):
        scm.add_variable(name, [], lambda p, u: u, noise=zero)
    return scm


def make_noisy_chain_scm():
    from repro.causal.scm import StructuralCausalModel, linear_mechanism

    scm = StructuralCausalModel()
    scm.add_variable("a", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    scm.add_variable("b", ["a"], linear_mechanism({"a": 2.0}),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    scm.add_variable("c", ["b"], linear_mechanism({"b": 1.5}),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    return scm


ORDER = ["a", "b", "c"]
X_CAUSAL = np.array([1.0, 1.0, -2.0])


@pytest.mark.parametrize("family", ["topological", "interventional"])
def test_causal_axioms_noiseless(family):
    def make(weights):
        model = linear_predict(weights)
        if family == "topological":
            return TopologicalGame(make_noiseless_scm(), model, ORDER,
                                   X_CAUSAL, n_samples=10, seed=4)
        return InterventionalGame(make_noiseless_scm(), model, ORDER,
                                  X_CAUSAL, n_samples=10, seed=4)

    # w0·x0 == w1·x1 → symmetric; w2 == 0 → dummy.
    phi = exact_enumeration(make([2.0, 2.0, 0.0]))
    assert abs(phi[0] - phi[1]) < ATOL
    assert abs(phi[2]) < ATOL
    phi_eff = exact_enumeration(make([1.0, -1.5, 0.5]))
    eff_game = make([1.0, -1.5, 0.5])
    assert abs(phi_eff.sum() - grand_minus_empty(eff_game)) < 1e-9
    # Linearity in the model (identical draws under identical seeds).
    alpha, beta = 1.5, -2.0
    w_u, w_w = np.array([1.0, 0.5, 2.0]), np.array([-0.5, 1.0, 0.25])
    phi_u = exact_enumeration(make(w_u))
    phi_w = exact_enumeration(make(w_w))
    phi_c = exact_enumeration(make(alpha * w_u + beta * w_w))
    assert np.allclose(phi_c, alpha * phi_u + beta * phi_w, atol=1e-9)


@pytest.mark.parametrize("family", ["topological", "interventional"])
def test_causal_efficiency_stochastic(family):
    """In the stochastic regime, efficiency holds against the value table
    the enumeration actually drew — replayed by a fresh identical-seed
    game evaluating the same masks in the same row order."""
    model = linear_predict([1.0, 0.5, 2.0])

    def make():
        scm = make_noisy_chain_scm()
        if family == "topological":
            return TopologicalGame(scm, model, ORDER, X_CAUSAL,
                                   n_samples=40, seed=7)
        return InterventionalGame(scm, model, ORDER, X_CAUSAL,
                                  n_samples=40, seed=7)

    phi = exact_enumeration(make())
    masks = masks_in_enumeration_order(len(ORDER))
    replay = make()
    if hasattr(replay, "value_at"):
        table = replay.value_at(np.arange(masks.shape[0]), masks)
    else:
        table = replay.value(masks)
    assert abs(phi.sum() - (table[-1] - table[0])) < 1e-9


# --------------------------------------- approximate-estimator efficiency


def test_permutation_estimator_efficiency_within_tolerance(masking_parts):
    background, x = masking_parts
    game = FeatureMaskingGame(linear_predict([1.0, -2.0, 0.5, 0.25]), x,
                              background=background)
    est = permutation_estimator(game, n_permutations=8, seed=0)
    # Every walk telescopes to v(N) − v(∅); the mean of walks does too.
    assert abs(est.values.sum() - grand_minus_empty(game)) < 1e-8


def test_kernel_estimator_efficiency_within_tolerance(masking_parts):
    background, x = masking_parts
    game = FeatureMaskingGame(linear_predict([1.0, -2.0, 0.5, 0.25]), x,
                              background=background)
    phi, base = kernel_wls_estimator(game, n_samples=32, seed=0)
    n = game.n_players
    grand = float(np.asarray(game.value(np.ones((1, n), dtype=bool)))[0])
    # The WLS solver eliminates one variable against the efficiency
    # constraint, so the identity is structural, not statistical.
    assert abs(phi.sum() - (grand - base)) < 1e-8
