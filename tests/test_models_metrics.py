"""Tests for the metrics module, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    pearson_correlation,
    precision,
    r2_score,
    recall,
    roc_auc,
    spearman_correlation,
)


def test_accuracy_basic():
    assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)


def test_confusion_matrix_counts():
    C = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
    assert C.tolist() == [[1, 1], [0, 2]]
    assert C.sum() == 4


def test_precision_recall_f1_consistency():
    y_true = [1, 1, 0, 0, 1]
    y_pred = [1, 0, 1, 0, 1]
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    assert p == pytest.approx(2 / 3)
    assert r == pytest.approx(2 / 3)
    assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)


def test_degenerate_precision_recall():
    assert precision([1, 1], [0, 0]) == 0.0
    assert recall([0, 0], [1, 1]) == 0.0
    assert f1_score([0, 0], [0, 0]) == 0.0


def test_log_loss_perfect_and_bad():
    assert log_loss([1, 0], [1.0, 0.0]) < 1e-10
    assert log_loss([1, 0], [0.5, 0.5]) == pytest.approx(np.log(2))
    assert np.isfinite(log_loss([1], [0.0]))  # clipped


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        s = rng.random(2000)
        assert roc_auc(y, s) == pytest.approx(0.5, abs=0.05)

    def test_ties_give_half_credit(self):
        assert roc_auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc([1, 1], [0.1, 0.9])

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        s = rng.random(200)
        assert roc_auc(y, s) == pytest.approx(roc_auc(y, np.exp(3 * s)))


def test_regression_metrics():
    y, p = [1.0, 2.0, 3.0], [1.0, 2.0, 5.0]
    assert mean_squared_error(y, p) == pytest.approx(4 / 3)
    assert mean_absolute_error(y, p) == pytest.approx(2 / 3)
    assert r2_score(y, y) == 1.0
    assert r2_score(y, [2.0, 2.0, 2.0]) == 0.0


class TestCorrelations:
    def test_pearson_known_value(self):
        a = np.array([1.0, 2.0, 3.0])
        assert pearson_correlation(a, 2 * a + 1) == pytest.approx(1.0)
        assert pearson_correlation(a, -a) == pytest.approx(-1.0)
        assert pearson_correlation(a, np.ones(3)) == 0.0

    def test_spearman_monotone_invariance(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 100)
        assert spearman_correlation(a, np.exp(a)) == pytest.approx(1.0)

    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_pearson_bounded(self, values):
        a = np.asarray(values)
        b = np.sin(a) + 0.5 * a
        r = pearson_correlation(a, b)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
