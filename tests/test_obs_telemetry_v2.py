"""Telemetry v2: quantile histograms, profiling exports, the run ledger,
and the Prometheus exposition endpoint (served in-process over HTTP).

The load-bearing invariants:

* histogram quantiles track numpy ground truth within one log-bucket
  width, and histogram states merge additively (the property the
  process backend's worker-delta shipping rests on);
* trace sampling is a deterministic stride over *root* spans and
  structural (children follow their root), while metrics see everything;
* ledger rows round-trip bit-identically between the in-memory ring and
  the ``REPRO_LEDGER`` JSONL sink, and real ``explain()`` calls land in
  both the ledger and the ``explain.wall_ms`` histogram;
* ``/metrics`` emits parseable Prometheus text exposition 0.0.4 with
  cumulative bucket series and precomputed quantile gauges;
* folded-stack and phase-profile exports partition a span tree's wall
  time exactly (self + children == total).
"""

from __future__ import annotations

import json
import math
import re
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.obs import bench, metrics
from repro.obs.ledger import record_run


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.get_tracer().reset()
    metrics.reset_metrics()
    obs.reset_ledger()
    yield
    obs.get_tracer().reset()
    metrics.reset_metrics()
    obs.reset_ledger()
    obs.set_trace_sample(None)
    obs.set_enabled(True)


# ------------------------------------------------------ quantile histograms


def test_histogram_quantiles_track_numpy():
    rng = np.random.default_rng(0)
    samples = rng.lognormal(mean=3.0, sigma=1.2, size=5000)
    h = obs.Histogram("latency.ms")
    for value in samples:
        h.observe(value)
    # Relative error is bounded by one bucket width (10^(1/8) ≈ 1.33);
    # within-bucket interpolation usually does far better.
    for q in (0.50, 0.95, 0.99):
        truth = float(np.quantile(samples, q))
        assert abs(h.quantile(q) - truth) / truth < 0.34, q
    assert h.quantile(0.0) == samples.min()
    assert h.quantile(1.0) == samples.max()
    assert math.isclose(h.mean, samples.mean(), rel_tol=1e-9)


def test_histogram_single_observation_is_exact():
    h = obs.Histogram("one.ms")
    h.observe(42.5)
    assert h.p50 == h.p95 == h.p99 == 42.5


def test_histogram_merge_is_exactly_additive():
    rng = np.random.default_rng(1)
    fast = rng.exponential(5.0, size=400)
    slow = rng.exponential(500.0, size=300)
    combined = obs.Histogram("combined.ms")
    a = obs.Histogram("a.ms")
    b = obs.Histogram("b.ms")
    for v in fast:
        a.observe(v)
        combined.observe(v)
    for v in slow:
        b.observe(v)
        combined.observe(v)
    a.merge_state(b.state())
    assert a.count == combined.count
    assert a.buckets == combined.buckets
    assert a.min == combined.min and a.max == combined.max
    # Same buckets + same clamp window ⇒ identical quantile readout.
    assert a.p50 == combined.p50
    assert a.p95 == combined.p95
    assert a.p99 == combined.p99


def test_histogram_deltas_and_merge_roundtrip():
    metrics.histogram("d.ms").observe(5.0)
    before = metrics.histogram_states()
    metrics.histogram("d.ms").observe(50.0)
    metrics.histogram("e.ms").observe(1.0)
    deltas = metrics.histogram_deltas(before)
    assert set(deltas) == {"d.ms", "e.ms"}
    assert deltas["d.ms"]["count"] == 1
    assert deltas["d.ms"]["sum"] == 50.0
    # Merging the deltas into a fresh registry reproduces the increment.
    metrics.reset_metrics()
    metrics.merge_histogram_deltas(deltas)
    assert metrics.histogram("d.ms").count == 1
    assert metrics.histogram("e.ms").count == 1


def test_observe_duration_records_on_clean_exit_only():
    with metrics.observe_duration("blk.ms"):
        time.sleep(0.001)
    assert metrics.histogram("blk.ms").count == 1
    assert metrics.histogram("blk.ms").min >= 1.0
    with pytest.raises(ValueError):
        with metrics.observe_duration("blk.ms"):
            raise ValueError("attempt, not a latency sample")
    assert metrics.histogram("blk.ms").count == 1
    obs.set_enabled(False)
    with metrics.observe_duration("blk.ms"):
        pass
    assert metrics.histogram("blk.ms").count == 1


# ----------------------------------------------------------- trace sampling


def test_trace_sampling_is_a_deterministic_stride_over_roots():
    obs.set_trace_sample(0.25)
    for __ in range(8):
        with obs.span("root"):
            with obs.span("child"):
                pass
    spans = obs.get_tracer().spans()
    roots = [s for s in spans if s.name == "root"]
    children = [s for s in spans if s.name == "child"]
    # A stride of 4 keeps exactly 2 of 8 consecutive roots, whatever the
    # counter's phase — and children follow their root's fate, so every
    # sampled trace is a complete tree.
    assert len(roots) == 2
    assert len(children) == 2
    kept_ids = {s.span_id for s in roots}
    assert all(c.parent_id in kept_ids for c in children)


def test_sampling_never_gates_metrics():
    obs.set_trace_sample(0.0)  # drop every trace
    with obs.span("explain"):
        with metrics.observe_duration("work.ms"):
            pass
    assert obs.get_tracer().spans() == []
    assert metrics.histogram("work.ms").count == 1


def test_span_cpu_time_diverges_from_wall_on_sleep():
    with obs.span("sleepy"):
        time.sleep(0.02)
    (rec,) = obs.get_tracer().spans()
    assert rec.wall_ms >= 20.0
    assert rec.cpu_ms is not None and rec.cpu_ms < rec.wall_ms


# --------------------------------------------------------------- run ledger


def test_ledger_ring_and_file_roundtrip(tmp_path):
    path = tmp_path / "ledger.jsonl"
    led = obs.reset_ledger(str(path))
    led.record({"kind": "explain", "wall_ms": 1.5})
    led.record({"kind": "explain_batch", "wall_ms": 2.5})
    rows = led.tail(10)
    assert [r["kind"] for r in rows] == ["explain", "explain_batch"]
    assert all("ts" in r for r in rows)
    file_rows = [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]
    assert file_rows == rows
    assert len(led) == 2 and led.recorded == 2


def test_ledger_ring_evicts_oldest():
    led = obs.RunLedger(ring_size=2)
    for k in range(3):
        led.record({"k": k})
    assert [r["k"] for r in led.tail(10)] == [1, 2]
    assert led.recorded == 3


def test_params_hash_stable_and_scalar_only():
    class Cfg:
        def __init__(self):
            self.n_permutations = 100
            self.seed = 3
            self._model = object()  # private: excluded
            self.background = np.zeros(4)  # non-scalar: excluded

    a, b = obs.params_hash(Cfg()), obs.params_hash(Cfg())
    assert a == b and re.fullmatch(r"[0-9a-f]{12}", a)
    other = Cfg()
    other.seed = 4
    assert obs.params_hash(other) != a
    assert obs.params_hash(object()) is None


def test_explain_run_lands_in_ledger_and_histogram(loan_logistic, loan_data):
    from repro.shapley import SamplingShapleyExplainer

    led = obs.get_ledger()
    explainer = SamplingShapleyExplainer(
        loan_logistic, loan_data.X[:40], n_permutations=4, seed=0
    )
    explainer.explain(loan_data.X[0])
    (row,) = led.tail(5)
    assert row["kind"] == "explain"
    assert row["status"] == "ok"
    assert row["wall_ms"] > 0.0
    assert row["model_calls"] > 0 and row["model_rows"] > 0
    assert row["params_hash"]
    assert row["n_features"] == loan_data.X.shape[1]
    assert metrics.histogram("explain.wall_ms").count == 1


def test_record_run_failure_is_swallowed_and_counted():
    with obs.span("explain", explainer="unit") as sp:
        pass
    record_run(object(), explainer=None)  # no .attrs/.name: must not raise
    assert metrics.counter("obs.internal_errors").value == 1
    record_run(sp, explainer=None)
    assert obs.get_ledger().tail(1)[0]["kind"] == "explain"


# ------------------------------------------------------- profiling exports


def test_phase_profile_self_times_partition_the_tree():
    with obs.span("explain", explainer="unit"):
        with obs.span("coalition_eval"):
            time.sleep(0.02)
        with obs.span("solve"):
            pass
    rows = {r["phase"]: r for r in obs.phase_profile()}
    assert set(rows) == {"explain", "coalition_eval", "solve"}
    root = rows["explain"]
    spent = rows["coalition_eval"]["wall_ms"] + rows["solve"]["wall_ms"]
    assert math.isclose(root["self_wall_ms"], root["wall_ms"] - spent,
                        abs_tol=1e-9)
    # The sleeping phase is wide in wall, thin in CPU.
    assert rows["coalition_eval"]["cpu_ms"] < rows["coalition_eval"]["wall_ms"]
    table = obs.phase_table()
    assert table.splitlines()[0].startswith("phase")
    assert "coalition_eval" in table


def test_folded_stacks_and_render(tmp_path):
    with obs.span("explain"):
        with obs.span("coalition_eval"):
            time.sleep(0.002)
        with obs.span("coalition_eval"):
            pass
        with obs.span("solve"):
            pass
    folded = obs.folded_stacks()
    assert set(folded) == {
        "explain", "explain;coalition_eval", "explain;solve"
    }
    assert folded["explain;coalition_eval"] > 1.5  # both occurrences summed
    rendered = obs.render_folded(folded)
    for line in rendered.splitlines():
        path, weight = line.rsplit(" ", 1)
        assert int(weight) >= 0 and path
    # The JSONL round trip renders identically.
    out = tmp_path / "trace.jsonl"
    obs.get_tracer().export(str(out))
    assert obs.folded_from_jsonl(str(out)) == rendered
    with pytest.raises(ValueError):
        obs.folded_stacks(weight="bogus_ms")


# ------------------------------------------------- the exposition endpoint


_SAMPLE_LINE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (\S+)$'
)


def _parse_exposition(body: str) -> dict[str, list[tuple[str | None, float]]]:
    """{metric name: [(le label or None, value)]}; asserts the grammar."""
    series: dict[str, list[tuple[str | None, float]]] = {}
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert re.match(r"^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* ", line
                            ), line
            continue
        m = _SAMPLE_LINE.match(line)
        assert m, f"unparseable exposition line: {line!r}"
        name, le, raw = m.groups()
        value = float("inf") if raw == "+Inf" else float(raw)
        series.setdefault(name, []).append((le, value))
    return series


def _get(host: str, port: int, route: str) -> tuple[int, str]:
    with urllib.request.urlopen(
        f"http://{host}:{port}{route}", timeout=10
    ) as resp:
        return resp.status, resp.read().decode("utf-8")


def test_metrics_endpoint_serves_valid_prometheus():
    metrics.counter("model.calls").inc(3)
    metrics.gauge("exec.utilization").set(0.75)
    h = metrics.histogram("explain.wall_ms")
    for v in (12.0, 180.0, 950.0, 40.0):
        h.observe(v)
    host, port = obs.start_metrics_server(port=0)
    try:
        status, body = _get(host, port, "/metrics")
    finally:
        obs.stop_metrics_server()
    assert status == 200
    series = _parse_exposition(body)
    assert series["repro_model_calls"] == [(None, 3.0)]
    assert series["repro_exec_utilization"] == [(None, 0.75)]
    buckets = series["repro_explain_wall_ms_bucket"]
    # Cumulative, le-sorted, ending at +Inf == _count.
    les = [float("inf") if le == "+Inf" else float(le) for le, __ in buckets]
    counts = [v for __, v in buckets]
    assert les == sorted(les) and les[-1] == float("inf")
    assert counts == sorted(counts) and counts[-1] == 4.0
    assert series["repro_explain_wall_ms_count"] == [(None, 4.0)]
    assert math.isclose(series["repro_explain_wall_ms_sum"][0][1], 1182.0)
    p50 = series["repro_explain_wall_ms_p50"][0][1]
    p95 = series["repro_explain_wall_ms_p95"][0][1]
    p99 = series["repro_explain_wall_ms_p99"][0][1]
    assert p50 <= p95 <= p99 <= 950.0


def test_health_and_ledger_tail_endpoints():
    led = obs.get_ledger()
    led.record({"kind": "explain", "wall_ms": 3.0})
    led.record({"kind": "explain", "wall_ms": 4.0})
    host, port = obs.start_metrics_server(port=0)
    try:
        status, body = _get(host, port, "/health")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["obs_enabled"] is True
        assert health["ledger_rows"] == 2
        assert health["internal_errors"] == 0
        assert health["trace_sample"] == 1.0
        status, body = _get(host, port, "/ledger/tail?n=1")
        assert status == 200
        rows = [json.loads(line) for line in body.splitlines() if line]
        assert len(rows) == 1 and rows[0]["wall_ms"] == 4.0
        with pytest.raises(urllib.error.HTTPError):
            _get(host, port, "/nope")
        # Idempotent start: a second call reuses the running server.
        assert obs.start_metrics_server() == (host, port)
        assert obs.metrics_server_address() == (host, port)
    finally:
        obs.stop_metrics_server()
    assert obs.metrics_server_address() is None


# ------------------------------------------------------- summary + bench


def test_summary_footer_flags_internal_errors():
    with obs.span("explain", explainer="unit"):
        pass
    assert "WARNING" not in obs.summary()
    metrics.counter("obs.internal_errors").inc()
    text = obs.summary()
    assert "obs.internal_errors=1" in text
    assert obs.internal_errors() == 1


def test_cli_trace_fails_when_instrumentation_swallows(tmp_path, capsys,
                                                       monkeypatch):
    from repro import cli
    from repro.obs import ledger as ledger_mod

    def broken_ledger():
        raise RuntimeError("ledger sink down")

    monkeypatch.setattr(ledger_mod, "get_ledger", broken_ledger)
    rc = cli.main(
        ["trace", "--out", str(tmp_path / "t.jsonl"), "demo",
         "--instance", "1"]
    )
    captured = capsys.readouterr()
    assert rc == 1
    assert "WARNING" in captured.out + captured.err
    assert "obs.internal_errors" in captured.out + captured.err


def test_bench_payloads_carry_schema_and_git_provenance(tmp_path):
    sha = bench.git_sha()
    assert sha is None or re.fullmatch(r"[0-9a-f]{4,40}", sha)
    json_path = bench.write_benchmark_result(
        str(tmp_path), "E99_provenance", ["row one"], wall_s=1.0
    )
    payload = json.loads(open(json_path, encoding="utf-8").read())
    assert payload["schema_version"] == bench.SCHEMA_VERSION
    assert payload["git_sha"] == sha
    summary_path = tmp_path / "SUMMARY.json"
    bench.update_bench_summary(str(summary_path), "E99_provenance",
                               {"wall_s": 1.0})
    merged = json.loads(summary_path.read_text(encoding="utf-8"))
    assert merged["schema_version"] == bench.SCHEMA_VERSION
    assert merged["git_sha"] == sha
    assert merged["experiments"]["E99_provenance"]["wall_s"] == 1.0
