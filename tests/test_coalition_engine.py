"""Coalition-evaluation engine: expansion, caching, chunking, parity.

Covers the perf-engine contract end to end:

* broadcast expansion is bitwise identical to the historical loop;
* the packed-bit value cache dedupes within and across calls and exports
  hit/miss counters through ``repro.obs.metrics``;
* chunking bounds rows-per-call without changing results;
* seeded attributions from kernel SHAP, sampling SHAP and QII are
  numerically identical between the legacy path and the engine path;
* parallel ``explain_batch(n_jobs=2)`` matches serial output row-for-row
  and keeps span accounting intact.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import base as core_base
from repro.core.coalition_engine import (
    CoalitionEngine,
    batched_predict,
    broadcast_expand,
    legacy_expand,
    resolve_max_batch_rows,
)
from repro.core.sampling import MaskingSampler
from repro.shapley import (
    KernelShapExplainer,
    SamplingShapleyExplainer,
    shapley_qii,
)
from repro.shapley.qii import _resample_features
from repro.shapley.sampling import permutation_shapley
from repro.shapley.conditional import empirical_conditional_value_function
from repro.surrogate import LimeTabularExplainer


def _random_setup(seed=0, n_c=40, n_b=17, d=9):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=d)
    background = rng.normal(size=(n_b, d))
    coalitions = rng.random((n_c, d)) < rng.random((n_c, 1))
    return x, background, coalitions


class TestExpansion:
    def test_broadcast_matches_legacy_bitwise(self):
        for seed in range(5):
            x, background, coalitions = _random_setup(seed)
            new = broadcast_expand(x, coalitions, background)
            old = legacy_expand(x, coalitions, background)
            assert new.dtype == old.dtype
            assert np.array_equal(new, old)

    def test_masking_sampler_is_engine_backed(self):
        x, background, coalitions = _random_setup(3)
        sampler = MaskingSampler(background, max_background=background.shape[0])
        assert isinstance(sampler, CoalitionEngine)
        assert np.array_equal(
            sampler.expand(x, coalitions),
            legacy_expand(x, coalitions, background),
        )

    def test_single_coalition_vector(self):
        x, background, __ = _random_setup(1)
        mask = np.zeros(x.shape[0], dtype=bool)
        mask[2] = True
        rows = broadcast_expand(x, mask, background)
        assert rows.shape == background.shape
        assert np.all(rows[:, 2] == x[2])
        untouched = np.ones(x.shape[0], dtype=bool)
        untouched[2] = False
        assert np.array_equal(rows[:, untouched], background[:, untouched])


class TestValueCache:
    def test_dedupes_within_and_across_calls(self):
        x, background, __ = _random_setup(2, d=6)
        engine = CoalitionEngine(background)
        calls = {"rows": 0}

        def counting_fn(X):
            calls["rows"] += X.shape[0]
            return X.sum(axis=1)

        v = engine.value_function(counting_fn, x)
        masks = np.array([[True, False, True, False, False, False],
                          [False, True, False, False, False, True],
                          [True, False, True, False, False, False]])
        first = v(masks)
        rows_after_first = calls["rows"]
        # Row 2 duplicates row 0: only two unique coalitions evaluated.
        assert rows_after_first == 2 * engine.n_background
        assert first[0] == first[2]
        second = v(masks)
        assert calls["rows"] == rows_after_first  # all served from cache
        assert np.array_equal(first, second)
        assert v.cache.hits == 1 + 3
        assert v.cache.misses == 2

    def test_counters_exported_through_metrics(self):
        obs.reset_metrics()
        x, background, coalitions = _random_setup(4, n_c=12, d=5)
        engine = CoalitionEngine(background)
        v = engine.value_function(lambda X: X.sum(axis=1), x)
        v(coalitions)
        v(coalitions)
        hits = obs.counter("coalition.cache.hits").value
        misses = obs.counter("coalition.cache.misses").value
        assert hits + misses == 2 * coalitions.shape[0]
        assert hits >= coalitions.shape[0]  # the whole second call
        assert misses == len(v.cache)

    def test_cache_disabled_reevaluates(self):
        x, background, __ = _random_setup(5, d=4)
        engine = CoalitionEngine(background)
        calls = {"n": 0}

        def counting_fn(X):
            calls["n"] += 1
            return X.sum(axis=1)

        v = engine.value_function(counting_fn, x, cache=False)
        mask = np.array([[True, False, True, False]])
        v(mask)
        v(mask)
        assert calls["n"] == 2
        assert v.cache is None

    def test_values_match_legacy_path(self):
        x, background, coalitions = _random_setup(6)
        engine = CoalitionEngine(background)
        fn = lambda X: np.tanh(X @ np.linspace(-1, 1, X.shape[1]))
        v_new = engine.value_function(fn, x)
        v_old = engine.legacy_value_function(fn, x)
        assert np.array_equal(v_new(coalitions), v_old(coalitions))


class TestChunking:
    def test_batched_predict_bounds_rows_per_call(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(103, 4))
        sizes = []

        def spy(X):
            sizes.append(X.shape[0])
            return X.sum(axis=1)

        out = batched_predict(spy, rows, max_batch_rows=25)
        assert max(sizes) <= 25
        assert len(sizes) == 5
        assert np.array_equal(out, rows.sum(axis=1))

    def test_engine_chunking_preserves_values(self):
        x, background, coalitions = _random_setup(7, n_c=33, n_b=10)
        fn = lambda X: np.cos(X).sum(axis=1)
        whole = CoalitionEngine(background).value_function(fn, x)(coalitions)
        chunked_engine = CoalitionEngine(background, max_batch_rows=35)
        sizes = []

        def spy(X):
            sizes.append(X.shape[0])
            return fn(X)

        chunked = chunked_engine.value_function(spy, x)(coalitions)
        assert max(sizes) <= 35
        assert np.array_equal(whole, chunked)

    def test_chunk_geometry_lands_in_spans(self):
        x, background, coalitions = _random_setup(8, n_c=8, n_b=10)
        engine = CoalitionEngine(background, max_batch_rows=30)
        tracer = obs.get_tracer()
        mark = tracer.mark()
        engine.value_function(lambda X: X.sum(axis=1), x)(coalitions)
        spans = [s for s in tracer.spans_since(mark) if s.name == "coalition_eval"]
        assert spans
        attrs = spans[-1].attrs
        assert attrs["chunk_rows"] == 30
        assert attrs["n_chunks"] == 3
        assert attrs["cache_misses"] == 8

    def test_resolve_max_batch_rows_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_BATCH_ROWS", "123")
        assert resolve_max_batch_rows() == 123
        assert resolve_max_batch_rows(7) == 7
        monkeypatch.setenv("REPRO_MAX_BATCH_ROWS", "not-an-int")
        assert resolve_max_batch_rows() == 65_536


@pytest.fixture(scope="module")
def loan_model(loan_data):
    from repro.models import LogisticRegression

    return LogisticRegression(alpha=1.0).fit(loan_data.X, loan_data.y)


class TestSeededParity:
    """Engine path == legacy path, bit for bit, at the same seed."""

    def test_kernel_shap_parity(self, loan_data, loan_model):
        x = loan_data.X[3]
        kwargs = dict(n_samples=80, max_background=40, seed=5)
        new = KernelShapExplainer(loan_model, loan_data.X, **kwargs).explain(x)
        old = KernelShapExplainer(
            loan_model, loan_data.X, engine=False, **kwargs
        ).explain(x)
        assert np.array_equal(new.values, old.values)
        assert new.base_value == old.base_value

    def test_sampling_shap_parity(self, loan_data, loan_model):
        x = loan_data.X[8]
        kwargs = dict(n_permutations=12, max_background=30, seed=2)
        new = SamplingShapleyExplainer(loan_model, loan_data.X, **kwargs).explain(x)
        old = SamplingShapleyExplainer(
            loan_model, loan_data.X, engine=False, **kwargs
        ).explain(x)
        assert np.array_equal(new.values, old.values)
        assert new.base_value == old.base_value

    def test_qii_parity_with_pre_engine_loop(self, loan_data, loan_model):
        """New batched QII == a verbatim copy of the pre-engine value fn."""
        from repro.core.base import as_predict_fn

        predict_fn = as_predict_fn(loan_model)
        x = np.asarray(loan_data.X[5], dtype=float).ravel()
        n = x.shape[0]
        background = loan_data.X[:60]
        seed, n_permutations, n_samples = 4, 8, 40

        rng = np.random.default_rng(seed)

        def legacy_value_fn(masks):
            masks = np.atleast_2d(masks)
            out = np.zeros(masks.shape[0])
            for row, mask in enumerate(masks):
                absent = [j for j in range(n) if not mask[j]]
                if not absent:
                    out[row] = float(predict_fn(x[None, :])[0])
                    continue
                rows = _resample_features(x, background, absent, n_samples, rng)
                out[row] = float(np.mean(predict_fn(rows)))
            return out

        legacy_phi, __ = permutation_shapley(
            legacy_value_fn, n, n_permutations=n_permutations, seed=seed
        )
        new_phi = shapley_qii(
            predict_fn, x, background,
            n_permutations=n_permutations, n_samples=n_samples, seed=seed,
        )
        assert np.array_equal(new_phi, legacy_phi)

    def test_qii_parity_under_chunking(self, loan_data, loan_model):
        from repro.core.base import as_predict_fn

        predict_fn = as_predict_fn(loan_model)
        x = loan_data.X[5]
        background = loan_data.X[:60]
        whole = shapley_qii(
            predict_fn, x, background, n_permutations=6, n_samples=30, seed=1
        )
        chunked = shapley_qii(
            predict_fn, x, background, n_permutations=6, n_samples=30, seed=1,
            max_batch_rows=64,
        )
        assert np.array_equal(whole, chunked)

    def test_conditional_value_fn_cache_parity(self, loan_data, loan_model):
        """Cached+batched conditional v(S) == per-mask legacy evaluation."""
        from repro.core.base import as_predict_fn

        predict_fn = as_predict_fn(loan_model)
        data = loan_data.X[:80]
        x = np.asarray(loan_data.X[2], dtype=float).ravel()
        k = 15
        scale = np.maximum(data.std(axis=0), 1e-12)

        def legacy_v(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            out = np.zeros(masks.shape[0])
            for row, mask in enumerate(masks):
                if not mask.any():
                    out[row] = float(np.mean(predict_fn(data)))
                    continue
                if mask.all():
                    out[row] = float(predict_fn(x[None, :])[0])
                    continue
                deltas = (data[:, mask] - x[mask]) / scale[mask]
                distances = np.sqrt((deltas ** 2).sum(axis=1))
                neighbors = np.argsort(distances, kind="stable")[:k]
                rows = data[neighbors].copy()
                rows[:, mask] = x[mask]
                out[row] = float(np.mean(predict_fn(rows)))
            return out

        rng = np.random.default_rng(0)
        masks = rng.random((25, x.shape[0])) < 0.5
        masks[0] = False
        masks[1] = True
        masks[7] = masks[3]  # duplicate → cache hit
        v = empirical_conditional_value_function(predict_fn, data, x, k=k)
        got = v(masks)
        assert np.array_equal(got, legacy_v(masks))
        assert v.cache.hits >= 1
        # Second call: fully cached, same numbers, no new misses.
        before = v.cache.misses
        assert np.array_equal(v(masks), got)
        assert v.cache.misses == before


class TestParallelExplainBatch:
    def test_resolve_n_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        assert core_base.resolve_n_jobs() == 1
        assert core_base.resolve_n_jobs(3) == 3
        monkeypatch.setenv("REPRO_N_JOBS", "4")
        assert core_base.resolve_n_jobs() == 4
        assert core_base.resolve_n_jobs(2) == 2
        monkeypatch.setenv("REPRO_N_JOBS", "junk")
        assert core_base.resolve_n_jobs() == 1
        assert core_base.resolve_n_jobs(-1) >= 1

    def test_parallel_matches_serial_row_for_row(self, loan_data, loan_model):
        X = loan_data.X[:6]
        explainer = KernelShapExplainer(
            loan_model, loan_data.X, n_samples=40, max_background=25, seed=0
        )
        serial = explainer.explain_batch(X)
        parallel = explainer.explain_batch(X, n_jobs=2)
        assert len(serial) == len(parallel) == X.shape[0]
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.values, p.values)
            assert s.base_value == p.base_value
            assert s.prediction == p.prediction

    def test_env_var_enables_parallelism(self, loan_data, loan_model, monkeypatch):
        X = loan_data.X[:3]
        explainer = SamplingShapleyExplainer(
            loan_model, loan_data.X, n_permutations=6, max_background=20, seed=1
        )
        serial = explainer.explain_batch(X)
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        from_env = explainer.explain_batch(X)
        for s, p in zip(serial, from_env):
            assert np.array_equal(s.values, p.values)

    def test_parallel_spans_roll_up(self, loan_data, loan_model):
        data = loan_data
        explainer = LimeTabularExplainer(loan_model, data, n_samples=80, seed=0)
        tracer = obs.get_tracer()
        mark = tracer.mark()
        explainer.explain_batch(data.X[:4], n_jobs=2)
        spans = tracer.spans_since(mark)
        batch = [s for s in spans if s.name == "explain_batch"]
        children = [s for s in spans if s.name == "explain"]
        assert len(batch) == 1
        assert len(children) == 4
        assert all(c.parent_id == batch[0].span_id for c in children)
        assert batch[0].rows_evaluated == sum(c.rows_evaluated for c in children)
        assert batch[0].rows_evaluated > 0
