"""Tests for the multi-method decision report."""

import numpy as np
import pytest

from repro.report import decision_report


@pytest.fixture(scope="module")
def report(loan_data, loan_gbm):
    return decision_report(loan_gbm, loan_data, loan_data.X[0], seed=0)


def test_contains_all_sections(report):
    for heading in (
        "# Decision report",
        "## Why — feature attribution",
        "## Cross-check — local surrogate (LIME)",
        "## When — anchor rule",
        "## What would change it — counterfactual",
        "## Trust — faithfulness spot-check",
    ):
        assert heading in report


def test_decision_line_present(report, loan_gbm, loan_data):
    from repro.core.base import as_predict_fn

    score = as_predict_fn(loan_gbm)(loan_data.X[:1])[0]
    expected = "POSITIVE" if score >= 0.5 else "NEGATIVE"
    assert f"**Decision:** {expected}" in report
    assert f"score {score:.3f}" in report


def test_input_features_listed(report, loan_data):
    for name in loan_data.feature_names:
        assert f"- {name}:" in report


def test_attribution_additivity_reported(report):
    assert "additivity check" in report
    # exact SHAP on 7 features → a tiny gap is reported
    line = next(l for l in report.splitlines() if "additivity" in l)
    gap = float(line.split("=")[-1].strip())
    assert gap < 1e-6


def test_wide_inputs_fall_back_to_kernel_shap(loan_gbm, loan_data):
    report = decision_report(
        loan_gbm, loan_data, loan_data.X[1], max_shap_features=3, seed=0
    )
    assert "Kernel SHAP (sampled)" in report


def test_renderable_blocks_fenced(report):
    assert report.count("```") % 2 == 0
    assert report.count("```") >= 6  # three fenced blocks


def test_cost_telemetry_footer(report):
    assert "## Cost — model-query telemetry" in report
    footer = report.split("## Cost — model-query telemetry", 1)[1]
    # Every explainer section shows up as a cost row with nonzero evals.
    for section in ("attribution", "lime", "anchor", "counterfactual"):
        assert section in footer
    assert "report.section" in footer
