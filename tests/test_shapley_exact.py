"""Tests for exact Shapley values, including the axioms (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shapley import ExactShapleyExplainer, all_coalitions, exact_shapley


def test_all_coalitions_count_and_order():
    subsets = all_coalitions(3)
    assert len(subsets) == 8
    assert subsets[0] == ()
    assert subsets[-1] == (0, 1, 2)


def test_additive_game_gives_per_player_value():
    weights = np.array([1.0, -2.0, 3.0])

    def v(masks):
        return np.atleast_2d(masks).astype(float) @ weights

    phi = exact_shapley(v, 3)
    assert np.allclose(phi, weights)


def test_symmetric_interaction_split_equally():
    # v(S) = 1 iff both players present: each gets 1/2.
    def v(masks):
        masks = np.atleast_2d(masks)
        return (masks[:, 0] & masks[:, 1]).astype(float)

    phi = exact_shapley(v, 2)
    assert np.allclose(phi, [0.5, 0.5])


def test_glove_game():
    # Classic: players 0,1 own left gloves, 2 owns a right glove;
    # v = number of pairs. Known Shapley values (1/6, 1/6, 4/6).
    def v(masks):
        masks = np.atleast_2d(masks)
        lefts = masks[:, 0].astype(int) + masks[:, 1].astype(int)
        rights = masks[:, 2].astype(int)
        return np.minimum(lefts, rights).astype(float)

    phi = exact_shapley(v, 3)
    assert np.allclose(phi, [1 / 6, 1 / 6, 4 / 6])


def test_too_many_players_rejected():
    with pytest.raises(ValueError):
        exact_shapley(lambda m: np.zeros(len(np.atleast_2d(m))), 25)


class TestAxiomsOnRandomGames:
    """Property-based verification of the four Shapley axioms."""

    @staticmethod
    def random_game(seed: int, n: int):
        rng = np.random.default_rng(seed)
        table = rng.normal(0, 1, 2 ** n)
        table[0] = 0.0

        def v(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            idx = masks @ (1 << np.arange(n))
            return table[idx]

        return v, table

    @given(st.integers(0, 10_000), st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_efficiency(self, seed, n):
        v, table = self.random_game(seed, n)
        phi = exact_shapley(v, n)
        assert phi.sum() == pytest.approx(table[-1] - table[0], abs=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_null_player(self, seed):
        # Make player 2 null by copying values from games without it.
        n = 3
        v, table = self.random_game(seed, n)
        t = table.copy()
        for s in range(2 ** n):
            if s & 4:
                t[s] = t[s & ~4]

        def v_null(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            return t[masks @ (1 << np.arange(n))]

        phi = exact_shapley(v_null, n)
        assert phi[2] == pytest.approx(0.0, abs=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_symmetry(self, seed):
        # Symmetrize players 0 and 1 by averaging over the swap.
        n = 3
        __, table = self.random_game(seed, n)

        def swap_bits(s):
            b0, b1 = s & 1, (s >> 1) & 1
            return (s & ~3) | (b0 << 1) | b1

        t = np.array([(table[s] + table[swap_bits(s)]) / 2
                      for s in range(2 ** n)])

        def v_sym(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            return t[masks @ (1 << np.arange(n))]

        phi = exact_shapley(v_sym, n)
        assert phi[0] == pytest.approx(phi[1], abs=1e-9)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_linearity(self, seed_a, seed_b):
        n = 3
        va, ta = self.random_game(seed_a, n)
        vb, tb = self.random_game(seed_b, n)

        def v_sum(masks):
            return va(masks) + 2.0 * vb(masks)

        phi = exact_shapley(v_sum, n)
        expected = exact_shapley(va, n) + 2.0 * exact_shapley(vb, n)
        assert np.allclose(phi, expected, atol=1e-9)


def test_explainer_additivity_on_model(loan_logistic, loan_data):
    explainer = ExactShapleyExplainer(
        loan_logistic, loan_data.X[:40], max_background=40
    )
    att = explainer.explain(loan_data.X[0], feature_names=loan_data.feature_names)
    assert att.additivity_gap() < 1e-10
    assert att.feature_names == loan_data.feature_names
    assert att.meta["n_evaluations"] == 2 ** loan_data.n_features
