"""Tests for Shapley-of-tuples and intervention-based query explanation."""

import numpy as np
import pytest

from repro.db import Relation, explain_aggregate, shapley_of_tuples


@pytest.fixture()
def sales():
    return Relation(
        ["region", "product", "amount"],
        [("east", "widget", 10.0), ("east", "gadget", 30.0),
         ("west", "widget", 5.0), ("west", "gadget", 100.0),
         ("east", "widget", 20.0)],
        name="sales",
    )


def total_amount(rel):
    return sum(t["amount"] for t in rel.to_dicts())


class TestTupleShapley:
    def test_additive_query_gives_per_tuple_amounts(self, sales):
        phi = shapley_of_tuples(sales, total_amount)
        amounts = [t[2] for t in sales.rows]
        for i, amount in enumerate(amounts):
            assert phi[i] == pytest.approx(amount)

    def test_efficiency_for_nonadditive_query(self, sales):
        def max_amount(rel):
            values = [t["amount"] for t in rel.to_dicts()]
            return max(values) if values else 0.0

        phi = shapley_of_tuples(sales, max_amount)
        assert sum(phi.values()) == pytest.approx(max_amount(sales))
        # the max tuple carries most of the credit
        assert max(phi, key=phi.get) == 3

    def test_boolean_query_responsibility(self, sales):
        def east_has_gadget(rel):
            return float(any(
                t["region"] == "east" and t["product"] == "gadget"
                for t in rel.to_dicts()
            ))

        phi = shapley_of_tuples(sales, east_has_gadget)
        assert phi[1] == pytest.approx(1.0)  # sole witness gets all credit
        for i in (0, 2, 3, 4):
            assert phi[i] == pytest.approx(0.0)

    def test_exogenous_tuples_fixed(self, sales):
        phi = shapley_of_tuples(sales, total_amount, endogenous=[0, 1])
        assert set(phi) == {0, 1}
        assert sum(phi.values()) == pytest.approx(10.0 + 30.0)

    def test_sampling_close_to_exact(self, sales):
        def skewed(rel):
            values = sorted(t["amount"] for t in rel.to_dicts())
            return sum(v * (i + 1) for i, v in enumerate(values))

        exact = shapley_of_tuples(sales, skewed, method="exact")
        sampled = shapley_of_tuples(
            sales, skewed, method="sampling", n_permutations=400, seed=0
        )
        for i in exact:
            assert sampled[i] == pytest.approx(exact[i], abs=3.0)

    def test_unknown_method_rejected(self, sales):
        with pytest.raises(ValueError):
            shapley_of_tuples(sales, total_amount, method="guess")


class TestExplainAggregate:
    def test_top_explanation_is_the_outlier_group(self, sales):
        explanations = explain_aggregate(
            sales, total_amount, direction="lower", top_k=3
        )
        # Removing the gadget product (or west/gadget tuples) drops the
        # total the most: the 100.0 tuple dominates.
        assert "gadget" in explanations[0].description or \
            "west" in explanations[0].description
        assert explanations[0].score > 0

    def test_scores_are_actual_interventions(self, sales):
        for explanation in explain_aggregate(sales, total_amount, top_k=5):
            remaining = sales.select(
                lambda t, p=explanation.predicate: not p(t)
            )
            assert explanation.after_removal == pytest.approx(
                total_amount(remaining)
            )
            assert explanation.n_removed == len(sales) - len(remaining)

    def test_direction_higher(self, sales):
        def avg_amount(rel):
            values = [t["amount"] for t in rel.to_dicts()]
            return sum(values) / len(values) if values else 0.0

        explanations = explain_aggregate(
            sales, avg_amount, direction="higher", top_k=3
        )
        # Raising the average means removing cheap tuples.
        assert explanations[0].after_removal > avg_amount(sales)

    def test_normalization_penalizes_mass_deletion(self, sales):
        raw = explain_aggregate(sales, total_amount, top_k=10)
        normalized = explain_aggregate(
            sales, total_amount, top_k=10, normalize=True
        )
        raw_best = raw[0]
        norm_best = normalized[0]
        assert norm_best.n_removed <= raw_best.n_removed

    def test_invalid_direction(self, sales):
        with pytest.raises(ValueError):
            explain_aggregate(sales, total_amount, direction="sideways")

    def test_conjunctions_refine_explanations(self, sales):
        explanations = explain_aggregate(
            sales, total_amount, top_k=20, use_conjunctions=True
        )
        assert any(" AND " in e.description for e in explanations)
