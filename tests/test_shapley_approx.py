"""Tests for sampling and Kernel SHAP approximations against the oracle."""

import numpy as np
import pytest

from repro.shapley import (
    KernelShapExplainer,
    SamplingShapleyExplainer,
    exact_shapley,
    kernel_shap,
    permutation_shapley,
    shapley_kernel_weight,
)


def linear_game(weights):
    def v(masks):
        return np.atleast_2d(masks).astype(float) @ weights

    return v


class TestPermutationSampling:
    def test_exact_on_additive_game(self):
        weights = np.array([1.0, 2.0, -3.0, 0.5])
        phi, err = permutation_shapley(linear_game(weights), 4,
                                       n_permutations=10, seed=0)
        # Additive games have zero-variance marginals: exact regardless of m.
        assert np.allclose(phi, weights)
        assert np.allclose(err, 0.0, atol=1e-12)

    def test_converges_to_exact_on_random_game(self):
        rng = np.random.default_rng(5)
        table = rng.normal(0, 1, 2 ** 5)

        def v(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            return table[masks @ (1 << np.arange(5))]

        reference = exact_shapley(v, 5)
        coarse, __ = permutation_shapley(v, 5, n_permutations=20, seed=1)
        fine, __ = permutation_shapley(v, 5, n_permutations=800, seed=1)
        assert np.abs(fine - reference).max() < np.abs(coarse - reference).max()
        assert np.abs(fine - reference).max() < 0.1

    def test_antithetic_reduces_error(self):
        rng = np.random.default_rng(7)
        table = rng.normal(0, 1, 2 ** 6)

        def v(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            return table[masks @ (1 << np.arange(6))]

        reference = exact_shapley(v, 6)
        errors = {"anti": [], "plain": []}
        for seed in range(5):
            anti, __ = permutation_shapley(v, 6, 100, antithetic=True, seed=seed)
            plain, __ = permutation_shapley(v, 6, 100, antithetic=False, seed=seed)
            errors["anti"].append(np.abs(anti - reference).mean())
            errors["plain"].append(np.abs(plain - reference).mean())
        assert np.mean(errors["anti"]) <= np.mean(errors["plain"]) * 1.25


class TestKernelShap:
    def test_kernel_weight_formula(self):
        # n=4, |S|=1: 3 / (C(4,1)·1·3) = 1/4.
        assert shapley_kernel_weight(4, 1) == pytest.approx(0.25)
        assert shapley_kernel_weight(4, 0) == float("inf")
        assert shapley_kernel_weight(4, 4) == float("inf")
        # symmetric in size
        assert shapley_kernel_weight(5, 2) == pytest.approx(
            shapley_kernel_weight(5, 3)
        )

    def test_exact_with_full_enumeration(self):
        rng = np.random.default_rng(9)
        table = rng.normal(0, 1, 2 ** 6)

        def v(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            return table[masks @ (1 << np.arange(6))]

        reference = exact_shapley(v, 6)
        phi, base = kernel_shap(v, 6, n_samples=2 ** 6)
        assert np.allclose(phi, reference, atol=1e-8)
        assert base == pytest.approx(table[0])

    def test_efficiency_holds_even_when_sampled(self):
        rng = np.random.default_rng(11)
        table = rng.normal(0, 1, 2 ** 10)

        def v(masks):
            masks = np.atleast_2d(np.asarray(masks, dtype=bool))
            return table[masks @ (1 << np.arange(10))]

        phi, base = kernel_shap(v, 10, n_samples=200, seed=3)
        assert base + phi.sum() == pytest.approx(table[-1], abs=1e-8)

    def test_single_player(self):
        phi, base = kernel_shap(linear_game(np.array([2.0])), 1)
        assert phi[0] == pytest.approx(2.0)
        assert base == pytest.approx(0.0)


class TestExplainersOnModel:
    def test_kernel_matches_exact_explainer(self, loan_logistic, loan_data):
        from repro.shapley import ExactShapleyExplainer

        background = loan_data.X[:30]
        x = loan_data.X[2]
        exact = ExactShapleyExplainer(
            loan_logistic, background, max_background=30
        ).explain(x)
        kernel = KernelShapExplainer(
            loan_logistic, background, n_samples=2 ** 7 - 2, max_background=30
        ).explain(x)
        assert np.allclose(exact.values, kernel.values, atol=1e-6)

    def test_sampling_close_to_exact(self, loan_logistic, loan_data):
        from repro.shapley import ExactShapleyExplainer

        background = loan_data.X[:30]
        x = loan_data.X[2]
        exact = ExactShapleyExplainer(
            loan_logistic, background, max_background=30
        ).explain(x)
        sampled = SamplingShapleyExplainer(
            loan_logistic, background, n_permutations=300, max_background=30
        ).explain(x)
        assert np.abs(exact.values - sampled.values).max() < 0.02
        assert "std_err" in sampled.meta
