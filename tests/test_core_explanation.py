"""Tests for repro.core.explanation result objects."""

import numpy as np
import pytest

from repro.core import (
    CounterfactualExplanation,
    DataAttribution,
    FeatureAttribution,
    Predicate,
    RuleExplanation,
)


class TestFeatureAttribution:
    def test_ranking_and_top(self):
        att = FeatureAttribution(
            values=np.array([0.1, -2.0, 0.5]),
            feature_names=["a", "b", "c"],
        )
        assert att.ranking() == [1, 2, 0]
        assert att.top(2) == [("b", -2.0), ("c", 0.5)]

    def test_additivity_gap(self):
        att = FeatureAttribution(
            values=np.array([1.0, 2.0]),
            feature_names=["a", "b"],
            base_value=0.5,
            prediction=3.5,
        )
        assert att.additivity_gap() == pytest.approx(0.0)
        att.prediction = 4.0
        assert att.additivity_gap() == pytest.approx(0.5)

    def test_additivity_gap_requires_prediction(self):
        att = FeatureAttribution(np.array([1.0]), ["a"])
        with pytest.raises(ValueError):
            att.additivity_gap()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FeatureAttribution(np.array([1.0, 2.0]), ["only"])

    def test_as_dict(self):
        att = FeatureAttribution(np.array([1.5]), ["a"])
        assert att.as_dict() == {"a": 1.5}


class TestPredicate:
    def test_all_operators(self):
        X = np.array([[1.0], [2.0], [3.0]])
        assert Predicate(0, "==", 2.0).holds(X).tolist() == [False, True, False]
        assert Predicate(0, "!=", 2.0).holds(X).tolist() == [True, False, True]
        assert Predicate(0, "<=", 2.0).holds(X).tolist() == [True, True, False]
        assert Predicate(0, "<", 2.0).holds(X).tolist() == [True, False, False]
        assert Predicate(0, ">=", 2.0).holds(X).tolist() == [False, True, True]
        assert Predicate(0, ">", 2.0).holds(X).tolist() == [False, False, True]

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Predicate(0, "~", 1.0)

    def test_str_uses_feature_name(self):
        assert str(Predicate(0, ">", 1.0, "age")) == "age > 1"


class TestRuleExplanation:
    def test_holds_is_conjunction(self):
        rule = RuleExplanation(
            predicates=[Predicate(0, ">", 1.0), Predicate(1, "<=", 0.5)],
            outcome=1.0, precision=0.9, coverage=0.2,
        )
        X = np.array([[2.0, 0.3], [2.0, 0.9], [0.5, 0.3]])
        assert rule.holds(X).tolist() == [True, False, False]
        assert len(rule) == 2

    def test_empty_rule_holds_everywhere(self):
        rule = RuleExplanation([], outcome=1.0, precision=1.0, coverage=1.0)
        assert rule.holds(np.zeros((3, 2))).all()
        assert "TRUE" in str(rule)


class TestCounterfactualExplanation:
    def test_changes_and_sparsity(self):
        cf = CounterfactualExplanation(
            factual=np.array([1.0, 2.0, 3.0]),
            counterfactuals=np.array([[1.0, 5.0, 3.0], [0.0, 2.0, 9.0]]),
            factual_outcome=0.2,
            target_outcome=1.0,
            feature_names=["a", "b", "c"],
        )
        assert cf.n_counterfactuals == 2
        assert cf.changes(0) == {"b": (2.0, 5.0)}
        assert cf.sparsity(0) == 1
        assert cf.sparsity(1) == 2


class TestDataAttribution:
    def test_ranking_directions(self):
        att = DataAttribution(np.array([0.3, -1.0, 0.7]))
        assert att.ranking(ascending=True).tolist() == [1, 0, 2]
        assert att.ranking(ascending=False).tolist() == [2, 0, 1]
        assert att.top(1) == [(1, -1.0)]
