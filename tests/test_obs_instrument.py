"""Instrumentation coverage: one black-box explainer per family reports a
span with nonzero model-eval counters (the ISSUE-1 acceptance criterion),
and the CLI/report surfaces render the telemetry."""

import json

import numpy as np
import pytest

from repro import obs
from repro.counterfactual import GecoExplainer
from repro.rules import AnchorExplainer
from repro.shapley import KernelShapExplainer
from repro.surrogate import LimeTabularExplainer


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.get_tracer().reset()
    yield
    obs.get_tracer().reset()


def _explain_span(name="explain"):
    spans = [s for s in obs.get_tracer().spans() if s.name == name]
    assert spans, f"no {name!r} span recorded"
    return spans[-1]


def test_shapley_family_kernel_shap_span(loan_gbm, loan_data):
    explainer = KernelShapExplainer(loan_gbm, loan_data.X[:30],
                                    n_samples=64, seed=0)
    explainer.explain(loan_data.X[0])
    s = _explain_span()
    assert s.attrs["explainer"] == "kernel_shap"
    assert s.attrs["n_features"] == loan_data.n_features
    assert s.model_evals > 0
    assert s.rows_evaluated > 0
    assert s.wall_ms > 0


def test_surrogate_family_lime_span(loan_gbm, loan_data):
    explainer = LimeTabularExplainer(loan_gbm, loan_data,
                                     n_samples=200, seed=0)
    explainer.explain(loan_data.X[0])
    s = _explain_span()
    assert s.attrs["explainer"] == "lime"
    assert s.model_evals > 0
    assert s.rows_evaluated >= 200


def test_rules_family_anchor_span(loan_gbm, loan_data):
    explainer = AnchorExplainer(loan_gbm, loan_data,
                                precision_target=0.8, seed=0)
    explainer.explain(loan_data.X[0])
    s = _explain_span()
    assert s.attrs["explainer"] == "anchors"
    assert s.model_evals > 0
    assert s.rows_evaluated > 0


def test_counterfactual_family_geco_span(loan_gbm, loan_data):
    explainer = GecoExplainer(loan_gbm, loan_data, population=30,
                              generations=4, seed=0)
    explainer.explain(loan_data.X[0])
    s = _explain_span()
    assert s.attrs["explainer"] == "geco"
    assert s.model_evals > 0
    assert s.rows_evaluated > 0


def test_instrumentation_disabled_is_transparent(loan_gbm, loan_data):
    explainer = KernelShapExplainer(loan_gbm, loan_data.X[:20],
                                    n_samples=32, seed=0)
    obs.set_enabled(False)
    try:
        att = explainer.explain(loan_data.X[1])
    finally:
        obs.set_enabled(True)
    assert att.values.shape == (loan_data.n_features,)
    assert obs.get_tracer().spans() == []


def test_no_double_span_for_subclass_and_decorator():
    # instrument_explainer must be idempotent even if applied twice.
    from repro.obs.instrument import instrument_explainer

    class Fake:
        method_name = "fake"

        def explain(self, x):
            return x

    wrapped_once = instrument_explainer(Fake)
    first = wrapped_once.__dict__["explain"]
    wrapped_twice = instrument_explainer(wrapped_once)
    assert wrapped_twice.__dict__["explain"] is first
    Fake().explain(np.zeros(3))
    assert len([s for s in obs.get_tracer().spans()
                if s.name == "explain"]) == 1


def test_summary_table_lists_explainers(loan_gbm, loan_data):
    KernelShapExplainer(loan_gbm, loan_data.X[:20], n_samples=32,
                        seed=0).explain(loan_data.X[0])
    table = obs.summary()
    assert "kernel_shap" in table
    assert "total" in table
    rows = obs.summary_dict()
    assert rows and rows[0]["model_evals"] > 0


def test_cli_trace_exports_jsonl_and_prints_summary(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "demo.jsonl"
    rc = main(["trace", "--out", str(out), "demo", "--instance", "1"])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "observability summary" in captured
    assert "trace written to" in captured
    records = [json.loads(line)
               for line in out.read_text().strip().splitlines()]
    assert records, "trace export is empty"
    names = {r["name"] for r in records}
    assert "explain" in names
    assert any(r["model_evals"] > 0 for r in records)
