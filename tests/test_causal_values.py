"""Tests for SCM-backed coalition value functions (repro.causal.values)."""

import numpy as np
import pytest

from repro.causal import (
    StructuralCausalModel,
    conditional_value_function,
    interventional_value_function,
    linear_mechanism,
)


@pytest.fixture(scope="module")
def chain():
    scm = StructuralCausalModel()
    scm.add_variable("a", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    scm.add_variable("b", ["a"], linear_mechanism({"a": 2.0}),
                     noise=lambda rng, n: rng.normal(0, 0.2, n))
    return scm


def model_fn(X):
    return 3.0 * X[:, 1]  # uses only b


class TestInterventional:
    def test_width_mismatch_rejected(self, chain):
        with pytest.raises(ValueError):
            interventional_value_function(
                chain, model_fn, ["a", "b"], np.zeros(3)
            )

    def test_empty_coalition_is_marginal_mean(self, chain):
        v = interventional_value_function(
            chain, model_fn, ["a", "b"], np.array([1.0, 2.0]),
            n_samples=4000, seed=0,
        )
        # E[3b] = 3·E[2a] = 0
        assert v(np.array([[False, False]]))[0] == pytest.approx(0.0, abs=0.15)

    def test_do_upstream_propagates(self, chain):
        x = np.array([1.0, 0.0])
        v = interventional_value_function(
            chain, model_fn, ["a", "b"], x, n_samples=4000, seed=0
        )
        # do(a=1): E[3b] = 3·2·1 = 6
        assert v(np.array([[True, False]]))[0] == pytest.approx(6.0, abs=0.15)

    def test_do_downstream_blocks_mechanism(self, chain):
        x = np.array([0.0, 5.0])
        v = interventional_value_function(
            chain, model_fn, ["a", "b"], x, n_samples=2000, seed=0
        )
        # do(b=5) pins b regardless of a
        assert v(np.array([[False, True]]))[0] == pytest.approx(15.0, abs=1e-9)


class TestConditional:
    def test_conditioning_differs_from_intervening_upstream(self, chain):
        """Conditioning on b tells us about a; intervening does not —
        but the model only reads b here, so use a model reading a."""
        def reads_a(X):
            return X[:, 0]

        x = np.array([0.0, 4.0])  # b = 4 implies a ≈ 2
        conditional = conditional_value_function(
            chain, reads_a, ["a", "b"], x, n_samples=200, seed=0
        )
        interventional = interventional_value_function(
            chain, reads_a, ["a", "b"], x, n_samples=3000, seed=0
        )
        cond_value = conditional(np.array([[False, True]]))[0]
        int_value = interventional(np.array([[False, True]]))[0]
        assert cond_value == pytest.approx(2.0, abs=0.35)
        assert int_value == pytest.approx(0.0, abs=0.15)

    def test_full_coalition_pins_instance(self, chain):
        x = np.array([0.5, 1.5])
        v = conditional_value_function(
            chain, model_fn, ["a", "b"], x, n_samples=100, seed=0
        )
        assert v(np.array([[True, True]]))[0] == pytest.approx(
            model_fn(x[None, :])[0], abs=1e-9
        )

    def test_empty_coalition_is_observational_mean(self, chain):
        v = conditional_value_function(
            chain, model_fn, ["a", "b"], np.array([0.0, 0.0]),
            n_samples=3000, seed=0,
        )
        assert v(np.array([[False, False]]))[0] == pytest.approx(0.0, abs=0.3)
