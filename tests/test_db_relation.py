"""Tests for the mini relational engine and its provenance propagation."""

import pytest

from repro.db import CountingSemiring, Relation, WhySemiring


@pytest.fixture()
def employees():
    return Relation(
        ["name", "dept", "salary"],
        [("ann", "cs", 100), ("bob", "cs", 120), ("cal", "ee", 90),
         ("dee", "ee", 200), ("eve", "cs", 110)],
        name="emp",
    )


@pytest.fixture()
def departments():
    return Relation(
        ["dept", "building"],
        [("cs", "X"), ("ee", "Y"), ("me", "Z")],
        name="dept",
    )


def test_schema_validation():
    with pytest.raises(ValueError):
        Relation(["a", "b"], [(1,)])
    with pytest.raises(ValueError):
        Relation(["a"], [(1,)], annotations=[])


def test_select_keeps_annotations(employees):
    rich = employees.select(lambda t: t["salary"] > 100)
    assert len(rich) == 3
    assert {t[0] for t in rich} == {"bob", "dee", "eve"}
    # annotations still identify the original base tuples
    assert rich.annotations[0] == frozenset([frozenset(["emp:1"])])


def test_project_merges_duplicate_witnesses(employees):
    depts = employees.project(["dept"])
    assert len(depts) == 2
    cs_annotation = depts.annotations[depts.rows.index(("cs",))]
    # why-provenance: three alternative single-tuple witnesses
    assert cs_annotation == frozenset([
        frozenset(["emp:0"]), frozenset(["emp:1"]), frozenset(["emp:4"])
    ])


def test_join_multiplies_annotations(employees, departments):
    joined = employees.join(departments)
    assert len(joined) == 5
    assert joined.columns == ["name", "dept", "salary", "building"]
    first = joined.annotations[0]
    # the witness pairs the employee tuple with its department tuple
    assert first == frozenset([frozenset(["emp:0", "dept:0"])])


def test_join_drops_unmatched(employees, departments):
    joined = employees.join(departments)
    assert all(t[3] in ("X", "Y") for t in joined)  # no 'me' building


def test_union_set_semantics(employees):
    cs = employees.select(lambda t: t["dept"] == "cs")
    rich = employees.select(lambda t: t["salary"] >= 110)
    both = cs.union(rich)
    names = {t[0] for t in both}
    assert names == {"ann", "bob", "eve", "dee"}
    assert len(both) == 4  # duplicates merged


def test_union_requires_same_schema(employees, departments):
    with pytest.raises(ValueError):
        employees.union(departments)


def test_group_by_aggregates(employees):
    for agg, column, expected in [
        ("count", None, {("cs", 3), ("ee", 2)}),
        ("sum", "salary", {("cs", 330), ("ee", 290)}),
        ("avg", "salary", {("cs", 110.0), ("ee", 145.0)}),
        ("min", "salary", {("cs", 100), ("ee", 90)}),
        ("max", "salary", {("cs", 120), ("ee", 200)}),
    ]:
        result = employees.group_by(["dept"], agg, column)
        assert set(result.rows) == expected


def test_group_by_validation(employees):
    with pytest.raises(ValueError):
        employees.group_by(["dept"], "median", "salary")
    with pytest.raises(ValueError):
        employees.group_by(["dept"], "sum")


def test_counting_semiring_counts_derivations():
    r = Relation(["a"], [(1,), (1,), (2,)], semiring=CountingSemiring())
    projected = r.project(["a"])
    counts = dict(zip([t[0] for t in projected], projected.annotations))
    assert counts == {1: 2, 2: 1}


def test_to_dicts(employees):
    dicts = employees.to_dicts()
    assert dicts[0] == {"name": "ann", "dept": "cs", "salary": 100}


def test_missing_column_keyerror(employees):
    with pytest.raises(KeyError):
        employees.project(["ghost"])


def test_missing_column_error_names_relation_and_columns(employees):
    # The KeyError must be actionable: which relation, which column,
    # and what *is* available (not list.index's cryptic ValueError).
    with pytest.raises(KeyError) as excinfo:
        employees.project(["ghost"])
    message = str(excinfo.value)
    assert "'emp'" in message
    assert "'ghost'" in message
    assert "name" in message and "dept" in message and "salary" in message


def test_join_no_shared_columns_is_cartesian_product(employees):
    # No shared columns: the join hashes on the empty tuple, so every
    # pair matches — a cartesian product with annotations still ⊗-ed.
    sites = Relation(["site"], [("north",), ("south",)], name="sites")
    product = employees.join(sites)
    assert product.columns == ["name", "dept", "salary", "site"]
    assert len(product) == len(employees) * len(sites)
    assert product.rows[0] == ("ann", "cs", 100, "north")
    assert product.rows[1] == ("ann", "cs", 100, "south")
    # ⊗ of two why-tags is the joint witness set.
    assert product.annotations[0] == frozenset([
        frozenset(["emp:0", "sites:0"])
    ])


def test_insert_delete_maintain_indexes(employees):
    dept_index = employees.indexes.hash_index(("dept",))
    salary_index = employees.indexes.sort_index("salary")
    assert dept_index.lookup(("cs",)) == [0, 1, 4]
    new_id = employees.insert(("fay", "cs", 95))
    assert new_id == 5
    assert dept_index.lookup(("cs",)) == [0, 1, 4, 5]
    assert 5 in salary_index.range_ids(90, 100)
    employees.delete(0)  # ann; every later id shifts down by one
    assert dept_index.lookup(("cs",)) == [0, 3, 4]
    assert employees.rows[0] == ("bob", "cs", 120)


def test_insert_tags_never_reuse_deleted_ids(employees):
    employees.delete(4)
    inserted = employees.insert(("zed", "me", 50))
    annotation = employees.annotations[inserted]
    assert annotation == frozenset([frozenset(["emp:5"])])


def test_subset_shares_schema_and_annotations(employees):
    sub = employees.subset([4, 0])
    assert sub.columns == employees.columns
    assert sub.rows == [employees.rows[4], employees.rows[0]]
    assert sub.annotations == [employees.annotations[4],
                               employees.annotations[0]]
    assert sub.name == employees.name
    assert sub.semiring is employees.semiring
