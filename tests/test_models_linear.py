"""Tests for linear/ridge regression, including the white-box interface."""

import numpy as np
import pytest

from repro.models import LinearRegression, RidgeRegression


@pytest.fixture(scope="module")
def linear_problem():
    rng = np.random.default_rng(1)
    X = rng.normal(0, 1, (200, 4))
    coef = np.array([2.0, -1.0, 0.5, 0.0])
    y = X @ coef + 3.0 + rng.normal(0, 0.01, 200)
    return X, y, coef


def test_ols_recovers_coefficients(linear_problem):
    X, y, coef = linear_problem
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.coef_, coef, atol=0.02)
    assert model.intercept_ == pytest.approx(3.0, abs=0.02)
    assert model.score(X, y) > 0.999


def test_ridge_shrinks_toward_zero(linear_problem):
    X, y, __ = linear_problem
    ols = LinearRegression().fit(X, y)
    ridge = RidgeRegression(alpha=1000.0).fit(X, y)
    assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)


def test_intercept_not_regularized():
    # With a huge penalty and constant-shifted targets, the intercept must
    # still absorb the mean.
    X = np.random.default_rng(0).normal(0, 1, (100, 2))
    y = np.full(100, 7.0)
    model = RidgeRegression(alpha=1e6).fit(X, y)
    assert model.intercept_ == pytest.approx(7.0, abs=0.01)


def test_sample_weights_equal_duplication():
    rng = np.random.default_rng(2)
    X = rng.normal(0, 1, (50, 2))
    y = X @ np.array([1.0, 2.0]) + rng.normal(0, 0.1, 50)
    weighted = RidgeRegression(alpha=0.1).fit(
        X, y, sample_weight=np.array([2.0] * 25 + [1.0] * 25)
    )
    duplicated = RidgeRegression(alpha=0.1).fit(
        np.vstack([X[:25], X]), np.concatenate([y[:25], y])
    )
    assert np.allclose(weighted.coef_, duplicated.coef_, atol=1e-8)


def test_grad_matches_finite_differences(linear_problem):
    X, y, __ = linear_problem
    model = RidgeRegression(alpha=0.5).fit(X, y)
    theta = model.params
    g = model.grad(X[:3], y[:3]).sum(axis=0)
    eps = 1e-6
    for j in range(theta.shape[0]):
        bumped = theta.copy()
        bumped[j] += eps
        model.set_params_vector(bumped)
        loss_hi = 0.5 * np.sum((model.predict(X[:3]) - y[:3]) ** 2)
        bumped[j] -= 2 * eps
        model.set_params_vector(bumped)
        loss_lo = 0.5 * np.sum((model.predict(X[:3]) - y[:3]) ** 2)
        assert g[j] == pytest.approx((loss_hi - loss_lo) / (2 * eps), rel=1e-4)
    model.set_params_vector(theta)


def test_hessian_shape_and_symmetry(linear_problem):
    X, y, __ = linear_problem
    model = RidgeRegression(alpha=0.5).fit(X, y)
    H = model.hessian(X, y)
    assert H.shape == (5, 5)
    assert np.allclose(H, H.T)
    assert np.all(np.linalg.eigvalsh(H) > 0)


def test_gradient_zero_at_optimum_for_unregularized():
    rng = np.random.default_rng(3)
    X = rng.normal(0, 1, (80, 3))
    y = X @ np.array([1.0, -2.0, 0.3]) + 1.0
    model = LinearRegression().fit(X, y)
    total_grad = model.grad(X, y).sum(axis=0)
    assert np.allclose(total_grad, 0.0, atol=1e-8)


def test_negative_alpha_rejected():
    with pytest.raises(ValueError):
        RidgeRegression(alpha=-1.0)


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        RidgeRegression().predict(np.zeros((2, 2)))
