"""Fault-tolerant runtime: guard, budgets, fault injection, degradation.

Covers the repro.robust contract end to end: typed input/output
validation across every sampling explainer, deterministic seeded fault
injection, retry/backoff of transient failures, per-explanation
deadlines and query budgets with partial-result degradation, graceful
``explain_batch`` with poisoned rows (serial and parallel), and the
coalition engine's chunk-level retry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import AttributionExplainer, as_predict_fn
from repro.core.coalition_engine import CoalitionEngine
from repro.core.dataset import TabularDataset
from repro.obs import metrics
from repro.robust import (
    BatchRowError,
    BudgetExceededError,
    FaultyModel,
    GuardConfig,
    InputValidationError,
    ModelEvaluationError,
    NonFiniteOutputError,
    OutputShapeError,
    PartialBatchError,
    ReproError,
    TransientModelError,
    check_instance,
    guard_predict_fn,
    guard_scope,
)
from repro.shapley import (
    ConditionalShapExplainer,
    KernelShapExplainer,
    QIIExplainer,
    SamplingShapleyExplainer,
)
from repro.surrogate import LimeTabularExplainer

N_FEATURES = 4
WEIGHTS = np.array([1.0, -2.0, 0.5, 0.0])


def linear_model(X: np.ndarray) -> np.ndarray:
    return np.atleast_2d(X) @ WEIGHTS


def nan_model(X: np.ndarray) -> np.ndarray:
    return np.full(np.atleast_2d(X).shape[0], np.nan)


@pytest.fixture(scope="module")
def background():
    rng = np.random.default_rng(3)
    return rng.normal(size=(40, N_FEATURES))


def _make_explainer(name: str, model, background: np.ndarray):
    """Fast-setting instance of every registered sampling explainer."""
    if name == "kernel":
        return KernelShapExplainer(model, background, n_samples=32)
    if name == "sampling":
        return SamplingShapleyExplainer(model, background, n_permutations=6)
    if name == "qii":
        return QIIExplainer(model, background, n_permutations=4, n_samples=10)
    if name == "conditional":
        return ConditionalShapExplainer(model, background, k=5,
                                        n_permutations=6)
    if name == "lime":
        data = TabularDataset(background,
                              np.zeros(background.shape[0], dtype=int))
        return LimeTabularExplainer(model, data, n_samples=40)
    raise AssertionError(name)


EXPLAINERS = ("kernel", "sampling", "qii", "conditional", "lime")


# ---------------------------------------------------------------- errors


def test_error_hierarchy():
    assert issubclass(ModelEvaluationError, ReproError)
    assert issubclass(NonFiniteOutputError, ModelEvaluationError)
    assert issubclass(OutputShapeError, ModelEvaluationError)
    assert issubclass(BudgetExceededError, ReproError)
    assert issubclass(TransientModelError, ReproError)
    # Input validation keeps ValueError compatibility so legacy
    # `except ValueError` call sites still work.
    assert issubclass(InputValidationError, ValueError)
    # Every robust failure is catchable via the single root.
    for exc in (ModelEvaluationError("m"), BudgetExceededError("b"),
                TransientModelError("t"), InputValidationError("i")):
        assert isinstance(exc, ReproError)


def test_batch_row_error_record():
    record = BatchRowError(index=3, error=ValueError("boom"))
    assert record.error_type == "ValueError"
    payload = record.to_dict()
    assert payload["index"] == 3
    assert payload["error_type"] == "ValueError"
    assert "boom" in payload["message"]


# ---------------------------------------------- input validation (typed)


@pytest.mark.parametrize("name", EXPLAINERS)
def test_wrong_width_instance_raises_typed_error(name, background):
    explainer = _make_explainer(name, linear_model, background)
    with pytest.raises(InputValidationError, match="features"):
        explainer.explain(np.zeros(N_FEATURES + 2))


@pytest.mark.parametrize("name", EXPLAINERS)
def test_nonfinite_instance_raises_typed_error(name, background):
    explainer = _make_explainer(name, linear_model, background)
    x = background[0].copy()
    x[1] = np.nan
    with pytest.raises(InputValidationError, match="non-finite"):
        explainer.explain(x)


@pytest.mark.parametrize("name", EXPLAINERS)
def test_nan_model_raises_nonfinite_error(name, background):
    explainer = _make_explainer(name, nan_model, background)
    with pytest.raises(NonFiniteOutputError):
        explainer.explain(background[0])


def test_empty_batch_raises_typed_error(background):
    explainer = _make_explainer("kernel", linear_model, background)
    with pytest.raises(InputValidationError, match="non-empty"):
        explainer.explain_batch(np.empty((0, N_FEATURES)))


def test_check_instance_contract():
    assert check_instance([1, 2, 3]).dtype == float
    with pytest.raises(InputValidationError, match="empty"):
        check_instance([])
    with pytest.raises(InputValidationError, match="convertible"):
        check_instance(["a", "b"])
    with pytest.raises(InputValidationError, match="expected 2"):
        check_instance([1.0, 2.0, 3.0], n_features=2)


# -------------------------------------------------------- guarded calls


def test_transient_failures_are_retried_then_recover():
    attempts = []

    def flaky(X):
        attempts.append(len(attempts))
        if len(attempts) < 3:
            raise TransientModelError("503")
        return np.zeros(np.atleast_2d(X).shape[0])

    guarded = guard_predict_fn(flaky, GuardConfig(retries=4, backoff_s=0.0))
    before = metrics.counter("robust.retries").value
    out = guarded(np.zeros((2, 3)))
    assert out.shape == (2,) and len(attempts) == 3
    assert metrics.counter("robust.retries").value == before + 2


def test_retries_exhausted_raises_model_evaluation_error():
    def always_down(X):
        raise TransientModelError("503")

    guarded = guard_predict_fn(always_down,
                               GuardConfig(retries=2, backoff_s=0.0))
    with pytest.raises(ModelEvaluationError) as excinfo:
        guarded(np.zeros((1, 3)))
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.__cause__, TransientModelError)


def test_deterministic_failures_fail_fast():
    calls = []

    def buggy(X):
        calls.append(1)
        raise IndexError("broadcast bug")

    guarded = guard_predict_fn(buggy, GuardConfig(retries=5, backoff_s=0.0))
    with pytest.raises(ModelEvaluationError):
        guarded(np.zeros((1, 3)))
    assert len(calls) == 1  # no retries for a deterministic bug


def test_wrong_shape_output_retried_then_typed():
    def truncating(X):
        return np.zeros(np.atleast_2d(X).shape[0] - 1)

    guarded = guard_predict_fn(truncating,
                               GuardConfig(retries=1, backoff_s=0.0))
    with pytest.raises(OutputShapeError):
        guarded(np.zeros((4, 3)))


def test_nonfinite_policies():
    def half_nan(X):
        out = np.arange(float(np.atleast_2d(X).shape[0]))
        out[0] = np.inf
        return out

    raising = guard_predict_fn(half_nan, GuardConfig(retries=0))
    with pytest.raises(NonFiniteOutputError):
        raising(np.zeros((4, 2)))

    imputing = guard_predict_fn(
        half_nan, GuardConfig(retries=0, on_nonfinite="impute")
    )
    out = imputing(np.zeros((4, 2)))
    # Bad entry replaced by the finite mean of the same batch.
    assert out[0] == pytest.approx(np.mean([1.0, 2.0, 3.0]))

    all_bad = guard_predict_fn(
        nan_model, GuardConfig(retries=0, on_nonfinite="impute",
                               impute_value=0.5)
    )
    assert np.all(all_bad(np.zeros((3, 2))) == 0.5)


def test_requery_recovers_from_intermittent_nan():
    calls = []

    def sometimes_nan(X):
        calls.append(1)
        n = np.atleast_2d(X).shape[0]
        return np.full(n, np.nan) if len(calls) == 1 else np.ones(n)

    guarded = guard_predict_fn(
        sometimes_nan,
        GuardConfig(retries=2, backoff_s=0.0, on_nonfinite="requery"),
    )
    assert np.all(guarded(np.zeros((2, 2))) == 1.0)
    assert len(calls) == 2


def test_guard_is_idempotent():
    fn = as_predict_fn(linear_model)
    assert fn.__repro_guarded__ and as_predict_fn(fn) is fn


def test_guard_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_RETRIES", "0")
    monkeypatch.setenv("REPRO_BACKOFF", "0")

    def always_down(X):
        raise TransientModelError("503")

    guarded = guard_predict_fn(always_down)
    with pytest.raises(ModelEvaluationError) as excinfo:
        guarded(np.zeros((1, 2)))
    assert excinfo.value.attempts == 1  # env disabled the retries


# ------------------------------------------------------------- budgets


def test_query_budget_enforced_in_scope():
    fn = as_predict_fn(linear_model)
    with guard_scope(GuardConfig(query_budget=5)) as scope:
        fn(np.zeros((3, N_FEATURES)))
        assert scope.rows_spent == 3
        with pytest.raises(BudgetExceededError) as excinfo:
            fn(np.zeros((3, N_FEATURES)))
    assert excinfo.value.kind == "queries"
    assert excinfo.value.budget == 5


def test_deadline_enforced_in_scope():
    fn = as_predict_fn(linear_model)
    with guard_scope(GuardConfig(deadline_s=1e-9)):
        import time

        time.sleep(0.002)
        with pytest.raises(BudgetExceededError) as excinfo:
            fn(np.zeros((1, N_FEATURES)))
    assert excinfo.value.kind == "deadline"


def test_budget_exhaustion_returns_partial_explanation():
    # Wide feature space so the coalition cache cannot serve every walk
    # (4 features would dedup to only 16 coalitions and never exhaust).
    rng = np.random.default_rng(0)
    wide = rng.normal(size=(40, 9))
    weights = np.linspace(-2.0, 2.0, 9)
    explainer = SamplingShapleyExplainer(
        lambda X: np.atleast_2d(X) @ weights, wide,
        n_permutations=40, seed=0,
        guard=GuardConfig(query_budget=4000),
    )
    fa = explainer.explain(wide[0])
    convergence = fa.meta["convergence"]
    assert convergence["converged"] is False
    assert 0 < convergence["n_walks_completed"] < \
        convergence["n_walks_requested"]
    assert "budget" in convergence["budget_error"]
    # The surviving walks still form an unbiased estimator; for a linear
    # game every walk yields the same marginals, so the partial estimate
    # matches the closed form w_i * (x_i - E[X_i]) tightly.
    exact = weights * (wide[0] - wide.mean(axis=0))
    assert np.allclose(fa.values, exact, atol=0.05)


def test_budget_too_small_for_base_value_raises(background):
    explainer = SamplingShapleyExplainer(
        linear_model, background, n_permutations=10, seed=0,
        guard=GuardConfig(query_budget=1),
    )
    with pytest.raises(BudgetExceededError):
        explainer.explain(background[0])


def test_scopes_are_per_explanation(background):
    # A budget that survives one explanation must survive a second one:
    # rows_spent resets per explain() call, not per explainer.
    explainer = KernelShapExplainer(
        linear_model, background, n_samples=16, seed=0,
        guard=GuardConfig(query_budget=5000),
    )
    first = explainer.explain(background[0])
    second = explainer.explain(background[0])
    assert np.allclose(first.values, second.values)


# ------------------------------------------------------ fault injection


def test_faulty_model_is_deterministic():
    rates = dict(error_rate=0.2, nan_rate=0.2, shape_rate=0.1)
    logs = []
    for _ in range(2):
        fm = FaultyModel(linear_model, seed=42, **rates)
        for i in range(50):
            try:
                fm(np.zeros((2, N_FEATURES)))
            except TransientModelError:
                pass
        logs.append(list(fm.fault_log))
    assert logs[0] == logs[1] and len(logs[0]) > 0
    kinds = {kind for _, kind in logs[0]}
    assert kinds <= {"error", "nan", "shape"}


def test_faulty_model_reset_rewinds_stream():
    fm = FaultyModel(linear_model, error_rate=0.5, seed=7)
    def drive():
        out = []
        for _ in range(20):
            try:
                fm(np.zeros((1, N_FEATURES)))
                out.append("ok")
            except TransientModelError:
                out.append("err")
        return out

    first = drive()
    fm.reset()
    assert drive() == first and fm.calls == 20


def test_faulty_model_rates_validation():
    with pytest.raises(ValueError, match="sum to at most 1"):
        FaultyModel(linear_model, error_rate=0.8, nan_rate=0.5)


def test_guard_recovers_exact_values_from_faulty_model(background):
    clean = _make_explainer("kernel", linear_model, background)
    faulty = KernelShapExplainer(
        FaultyModel(linear_model, error_rate=0.3, seed=5),
        background, n_samples=32,
        guard=GuardConfig(retries=25, backoff_s=0.0),
    )
    a, b = clean.explain(background[0]), faulty.explain(background[0])
    # Retries re-ask until the clean answer comes back: zero drift.
    assert np.allclose(a.values, b.values)


# ------------------------------------------------------ batch degradation


class _PoisonRowExplainer(AttributionExplainer):
    """Minimal explainer whose explain() dies on a marked row."""

    method_name = "poison_probe"

    def explain(self, x, **kwargs):
        from repro.core.explanation import FeatureAttribution

        x = np.asarray(x, dtype=float).ravel()
        if x[0] > 1e5:
            raise ModelEvaluationError("poisoned row")
        values = self.predict_fn(x[None, :]) * np.ones(x.shape[0])
        return FeatureAttribution(
            values=values / x.shape[0],
            feature_names=[f"x{i}" for i in range(x.shape[0])],
            base_value=0.0,
            prediction=float(values[0]),
            method=self.method_name,
        )


@pytest.mark.parametrize("n_jobs", [1, 3])
def test_explain_batch_survives_poisoned_row(n_jobs, background):
    explainer = _PoisonRowExplainer(linear_model)
    X = background[:5].copy()
    X[2, 0] = 1e9  # poison
    before = metrics.counter("robust.rows_failed").value

    results, errors = explainer.explain_batch(X, n_jobs=n_jobs,
                                              return_errors=True)
    assert len(results) == 5
    assert results[2] is None
    assert all(results[i] is not None for i in (0, 1, 3, 4))
    assert [e.index for e in errors] == [2]
    assert isinstance(errors[0].error, ModelEvaluationError)
    assert metrics.counter("robust.rows_failed").value == before + 1

    with pytest.raises(PartialBatchError) as excinfo:
        explainer.explain_batch(X, n_jobs=n_jobs)
    partial = excinfo.value
    assert partial.completed_indices == [0, 1, 3, 4]
    assert partial.partial[2] is None
    assert partial.partial[0].method == "poison_probe"


def test_explain_batch_clean_path_unchanged(background):
    explainer = _PoisonRowExplainer(linear_model)
    results = explainer.explain_batch(background[:3])
    assert isinstance(results, list) and len(results) == 3
    assert all(r.method == "poison_probe" for r in results)


def test_explain_batch_parallel_budgets_are_per_row(background):
    # Every row individually fits the budget; together they would not.
    # Per-row scoping means all rows succeed, even on the pool path.
    explainer = KernelShapExplainer(
        linear_model, background, n_samples=16, seed=0,
        guard=GuardConfig(query_budget=5000),
    )
    results = explainer.explain_batch(background[:4], n_jobs=2)
    assert len(results) == 4 and all(r is not None for r in results)


# ------------------------------------------------- coalition chunk retry


def test_coalition_engine_chunk_retry_keeps_cache_consistent(background):
    x = background[0]
    calls = {"n": 0}

    metered = as_predict_fn(linear_model, guard=False)

    def flaky_once(X):
        calls["n"] += 1
        if calls["n"] == 1:
            raise ModelEvaluationError("first chunk dies")
        return metered(X)

    engine = CoalitionEngine(background, chunk_retries=1)
    v = engine.value_function(
        guard_predict_fn(flaky_once, GuardConfig(retries=0)), x
    )
    masks = np.zeros((3, N_FEATURES), dtype=bool)
    masks[1, 0] = True
    masks[2, :2] = True
    before = metrics.counter("robust.chunk_retries").value
    values = v(masks)
    assert metrics.counter("robust.chunk_retries").value == before + 1
    # The retried evaluation matches a never-faulty engine: nothing
    # partial was committed to the coalition cache.
    clean = CoalitionEngine(background).value_function(metered, x)
    assert np.allclose(values, clean(masks))
    # The repeat call is answered fully from cache.
    misses_before = v.cache.misses
    assert np.allclose(v(masks), values)
    assert v.cache.misses == misses_before


def test_coalition_engine_chunk_retries_exhausted(background):
    calls = {"n": 0}

    def always_down(X):
        calls["n"] += 1
        raise ModelEvaluationError("down")

    engine = CoalitionEngine(background, chunk_retries=2)
    v = engine.value_function(always_down, background[0])
    with pytest.raises(ModelEvaluationError):
        v(np.zeros((1, N_FEATURES), dtype=bool))
    assert calls["n"] == 3  # initial attempt + 2 chunk retries


# --------------------------------------------- process-backend degradation


@pytest.mark.parametrize("return_errors", [True, False])
def test_explain_batch_process_backend_poisoned_rows(return_errors, background):
    """Poisoned rows inside forked workers degrade exactly like serial ones."""
    explainer = _PoisonRowExplainer(linear_model)
    X = background[:6].copy()
    X[2, 0] = 1e9  # poison
    before = metrics.counter("robust.rows_failed").value

    if return_errors:
        results, errors = explainer.explain_batch(
            X, backend="process", n_procs=3, return_errors=True
        )
        assert len(results) == 6
        assert results[2] is None
        assert all(results[i] is not None for i in (0, 1, 3, 4, 5))
        assert [e.index for e in errors] == [2]
        # The worker's exception does not cross the pickle boundary as a
        # live object, but its type name and message survive verbatim.
        assert errors[0].error_type == "ModelEvaluationError"
        assert "poisoned row" in str(errors[0].error)
        assert metrics.counter("robust.rows_failed").value == before + 1
    else:
        with pytest.raises(PartialBatchError) as excinfo:
            explainer.explain_batch(X, backend="process", n_procs=3)
        partial = excinfo.value
        assert partial.completed_indices == [0, 1, 3, 4, 5]
        assert partial.partial[2] is None
        assert partial.partial[0].method == "poison_probe"


class _WorkerKillerExplainer(AttributionExplainer):
    """Explainer that hard-kills its own process on a marked row."""

    method_name = "worker_killer"

    def explain(self, x, **kwargs):
        import os as _os

        from repro.core.explanation import FeatureAttribution
        from repro.exec import in_worker

        x = np.asarray(x, dtype=float).ravel()
        if x[0] > 1e5 and in_worker():
            _os._exit(13)  # simulates a segfaulting / OOM-killed worker
        return FeatureAttribution(
            values=np.zeros(x.shape[0]),
            feature_names=[f"x{i}" for i in range(x.shape[0])],
            base_value=0.0,
            prediction=0.0,
            method=self.method_name,
        )


def test_explain_batch_worker_death_surfaces_as_partial(background):
    """A worker dying mid-shard fails that shard's rows; no hang, no loss
    of the batch contract (one outcome per input row)."""
    explainer = _WorkerKillerExplainer(linear_model)
    X = background[:6].copy()
    X[1, 0] = 1e9  # kills whichever worker draws shard 0
    results, errors = explainer.explain_batch(
        X, backend="process", n_procs=2, return_errors=True
    )
    assert len(results) == 6
    assert results[1] is None
    failed = {e.index for e in errors}
    assert 1 in failed
    # A broken pool may take sibling shards down with it, but every row
    # is accounted for either way.
    assert all((results[i] is None) == (i in failed) for i in range(6))
    assert any("ShardError" == e.error_type or "shard" in str(e.error).lower()
               for e in errors)


def test_worker_robust_counters_merge_into_parent(background):
    """robust.* counters incremented inside forked workers show up in the
    parent's metrics snapshot after the join."""
    flaky = FaultyModel(linear_model, error_rate=0.3, seed=11)
    explainer = KernelShapExplainer(
        flaky, background, n_samples=16, seed=0,
        guard=GuardConfig(retries=10, backoff_s=0.0),
    )
    before = metrics.counter("robust.retries").value
    results = explainer.explain_batch(background[:4], backend="process",
                                      n_procs=2)
    assert len(results) == 4 and all(r is not None for r in results)
    assert metrics.counter("robust.retries").value > before


# ------------------------------------------- backoff jitter + scope threads


def test_backoff_jitter_is_seeded_deterministic_and_capped():
    """Full-jitter delays replay exactly under a seed and never exceed
    the capped-exponential envelope."""
    from repro.robust import seed_backoff_jitter
    from repro.robust.guard import BACKOFF_CAP_S

    def run_once() -> list[float]:
        delays: list[float] = []

        def always_down(X):
            raise TransientModelError("503")

        guarded = guard_predict_fn(
            always_down,
            GuardConfig(retries=4, backoff_s=0.1, sleep=delays.append),
        )
        with pytest.raises(ModelEvaluationError):
            guarded(np.zeros((1, 3)))
        return delays

    seed_backoff_jitter(1234)
    first = run_once()
    seed_backoff_jitter(1234)
    second = run_once()
    try:
        assert first == second  # seeded: bitwise-replayable
        assert len(first) == 4
        for attempt, delay in enumerate(first, start=1):
            cap = min(0.1 * 2.0 ** (attempt - 1), BACKOFF_CAP_S)
            assert 0.0 <= delay <= cap
        # Full jitter actually jitters: four draws are not all equal.
        assert len(set(first)) > 1
    finally:
        seed_backoff_jitter(None)


def test_faulty_model_seeds_the_backoff_jitter():
    """Fault injection pins the jitter stream, so fault-injected runs
    (and their golden assertions) replay exactly."""
    from repro.robust import seed_backoff_jitter
    from repro.robust import guard as guard_mod

    try:
        FaultyModel(linear_model, error_rate=0.1, seed=77)
        first = [guard_mod._jitter_rng.uniform(0, 1) for __ in range(3)]
        FaultyModel(linear_model, error_rate=0.1, seed=77)
        second = [guard_mod._jitter_rng.uniform(0, 1) for __ in range(3)]
        assert first == second
    finally:
        seed_backoff_jitter(None)


def test_overlapping_scopes_on_threads_do_not_leak_budget():
    """Two guard scopes open concurrently on different threads each see
    their own deadline; neither clock leaks into the other."""
    import threading
    import time

    from repro.robust import remaining_s

    seen: dict[str, float | None] = {}
    barrier = threading.Barrier(2)

    def worker(name: str, deadline_s: float) -> None:
        with guard_scope(GuardConfig(deadline_s=deadline_s)):
            barrier.wait()      # both scopes are open at the same time
            time.sleep(0.05)
            seen[name] = remaining_s()
            barrier.wait()      # neither exits before the other measured

    threads = [
        threading.Thread(target=worker, args=("short", 0.2)),
        threading.Thread(target=worker, args=("long", 30.0)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert seen["short"] is not None and seen["short"] < 0.2
    # The long scope still has essentially all its budget: the short
    # scope's 0.2 s deadline did not clip it.
    assert seen["long"] is not None and seen["long"] > 25.0


def test_request_envelope_clips_nested_scopes_and_stays_thread_local():
    import threading
    import time

    from repro.robust import request_envelope
    from repro.robust.guard import envelope_remaining_s

    with request_envelope(0.5) as envelope:
        time.sleep(0.1)
        # A scope with a *larger* own deadline is clipped to what is
        # left of the envelope (queue wait eats the compute budget)...
        with guard_scope(GuardConfig(deadline_s=60.0)) as scope:
            assert scope.deadline_s is not None
            assert scope.deadline_s <= 0.41
        # ...while a tighter own deadline survives.
        with guard_scope(GuardConfig(deadline_s=0.01)) as scope:
            assert scope.deadline_s <= 0.01
        # Envelopes are thread-local: another thread sees none.
        elsewhere: list = []
        t = threading.Thread(
            target=lambda: elsewhere.append(envelope_remaining_s())
        )
        t.start()
        t.join(timeout=10)
        assert elsewhere == [None]
        assert envelope.remaining_s() is not None
    assert envelope_remaining_s() is None
