"""Tests for the Anchors explainer and the KL-LUCB bandit."""

import numpy as np
import pytest

from repro.rules import AnchorExplainer, KLLucb, kl_bernoulli, kl_lower_bound, kl_upper_bound


class TestKLBounds:
    def test_kl_zero_at_equal(self):
        assert kl_bernoulli(0.3, 0.3) == pytest.approx(0.0, abs=1e-9)

    def test_kl_positive_and_asymmetric(self):
        assert kl_bernoulli(0.2, 0.8) > 0
        assert kl_bernoulli(0.2, 0.5) != pytest.approx(kl_bernoulli(0.5, 0.2))

    def test_bounds_bracket_the_mean(self):
        for p_hat in (0.1, 0.5, 0.9):
            lo = kl_lower_bound(p_hat, 100, beta=3.0)
            hi = kl_upper_bound(p_hat, 100, beta=3.0)
            assert lo <= p_hat <= hi

    def test_bounds_tighten_with_samples(self):
        narrow = kl_upper_bound(0.5, 1000, 3.0) - kl_lower_bound(0.5, 1000, 3.0)
        wide = kl_upper_bound(0.5, 10, 3.0) - kl_lower_bound(0.5, 10, 3.0)
        assert narrow < wide

    def test_no_samples_gives_trivial_bounds(self):
        assert kl_upper_bound(0.5, 0, 3.0) == 1.0
        assert kl_lower_bound(0.5, 0, 3.0) == 0.0


class TestKLLucb:
    def test_identifies_best_arm(self, rng):
        means = [0.2, 0.5, 0.9, 0.4]

        def make_arm(p):
            state = np.random.default_rng(int(p * 1000))
            return lambda batch: float(np.mean(state.random(batch) < p))

        bandit = KLLucb([make_arm(p) for p in means], delta=0.05)
        top, est, counts = bandit.top_arms(k=1, epsilon=0.05)
        assert top[0] == 2
        assert counts.sum() > 0

    def test_k_geq_arms_returns_all(self):
        bandit = KLLucb([lambda b: 0.5, lambda b: 0.7])
        top, __, __ = bandit.top_arms(k=5)
        assert sorted(top.tolist()) == [0, 1]

    def test_adaptive_allocation_focuses_on_contenders(self):
        means = [0.05, 0.48, 0.52, 0.05]

        def make_arm(p, seed):
            state = np.random.default_rng(seed)
            return lambda batch: float(np.mean(state.random(batch) < p))

        bandit = KLLucb(
            [make_arm(p, i) for i, p in enumerate(means)], delta=0.1
        )
        bandit.top_arms(k=1, epsilon=0.02, max_pulls=4000)
        # The two contenders must receive more pulls than the clear losers.
        assert bandit.counts[1] + bandit.counts[2] > bandit.counts[0] + bandit.counts[3]


class TestAnchors:
    def test_anchor_holds_for_instance(self, loan_data, loan_gbm):
        anchors = AnchorExplainer(loan_gbm, loan_data, precision_target=0.9,
                                  seed=0)
        x = loan_data.X[0]
        rule = anchors.explain(x)
        assert rule.holds(x[None, :])[0]
        assert 1 <= len(rule) <= anchors.max_predicates * 2

    def test_high_precision_on_holdout_perturbations(self, loan_data, loan_gbm):
        anchors = AnchorExplainer(loan_gbm, loan_data, precision_target=0.9,
                                  seed=0)
        x = loan_data.X[5]
        rule = anchors.explain(x)
        held_out = anchors.empirical_precision(rule, x, n=1500, seed=99)
        assert held_out >= 0.75  # generous slack for bandit noise

    def test_coverage_estimated_in_unit_interval(self, loan_data, loan_gbm):
        anchors = AnchorExplainer(loan_gbm, loan_data, seed=1)
        rule = anchors.explain(loan_data.X[7])
        assert 0.0 <= rule.coverage <= 1.0

    def test_beam_search_coverage_at_least_greedy(self, loan_data, loan_gbm):
        """The paper's beam search explores alternatives the greedy path
        misses; at matched precision targets its anchors should cover at
        least as much (up to bandit noise)."""
        greedy_cov, beam_cov = [], []
        for i in range(3):
            greedy = AnchorExplainer(
                loan_gbm, loan_data, precision_target=0.9,
                beam_width=1, seed=i,
            ).explain(loan_data.X[i])
            beam = AnchorExplainer(
                loan_gbm, loan_data, precision_target=0.9,
                beam_width=3, seed=i,
            ).explain(loan_data.X[i])
            greedy_cov.append(greedy.coverage)
            beam_cov.append(beam.coverage)
            assert beam.meta["beam_width"] == 3
        assert np.mean(beam_cov) >= np.mean(greedy_cov) - 0.05

    def test_beam_rule_still_holds_for_instance(self, loan_data, loan_gbm):
        anchors = AnchorExplainer(loan_gbm, loan_data, beam_width=3, seed=1)
        x = loan_data.X[2]
        rule = anchors.explain(x)
        assert rule.holds(x[None, :])[0]

    def test_trivial_model_yields_short_anchor(self, loan_data):
        # A constant model is perfectly anchored by a single predicate.
        anchors = AnchorExplainer(lambda X: np.ones(len(X)), loan_data,
                                  precision_target=0.9, seed=0)
        rule = anchors.explain(loan_data.X[0])
        assert rule.precision == pytest.approx(1.0)
        assert len(rule) <= 2
