"""Tests for causally consistent counterfactual projection."""

import numpy as np
import pytest

from repro.causal import StructuralCausalModel, linear_mechanism
from repro.core.explanation import CounterfactualExplanation
from repro.counterfactual import causal_inconsistency, project_counterfactual


@pytest.fixture(scope="module")
def chain_scm():
    """education → income → savings (all linear, deterministic-ish)."""
    scm = StructuralCausalModel()
    scm.add_variable("education", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(2, 1, n))
    scm.add_variable("income", ["education"],
                     linear_mechanism({"education": 2.0}, intercept=1.0),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    scm.add_variable("savings", ["income"],
                     linear_mechanism({"income": 0.5}),
                     noise=lambda rng, n: rng.normal(0, 0.2, n))
    return scm


ORDER = ["education", "income", "savings"]


def test_intervention_propagates_downstream(chain_scm):
    factual = np.array([2.0, 5.5, 3.0])
    # A naive counterfactual raises education but freezes income/savings.
    naive = np.array([4.0, 5.5, 3.0])
    projected = project_counterfactual(chain_scm, ORDER, factual, naive)
    # education pinned to the requested value
    assert projected[0] == pytest.approx(4.0)
    # income re-derived: old noise = 5.5 − (2·2 + 1) = 0.5 → 2·4+1+0.5
    assert projected[1] == pytest.approx(9.5)
    # savings re-derived from the new income with its own noise
    old_savings_noise = 3.0 - 0.5 * 5.5
    assert projected[2] == pytest.approx(0.5 * 9.5 + old_savings_noise)


def test_explicitly_changed_downstream_values_are_respected(chain_scm):
    factual = np.array([2.0, 5.5, 3.0])
    # The counterfactual also changes income explicitly: both are
    # interventions, so income stays at its requested value.
    cf = np.array([4.0, 20.0, 3.0])
    projected = project_counterfactual(chain_scm, ORDER, factual, cf)
    assert projected[1] == pytest.approx(20.0)
    # savings follows the intervened income
    old_savings_noise = 3.0 - 0.5 * 5.5
    assert projected[2] == pytest.approx(0.5 * 20.0 + old_savings_noise)


def test_no_change_is_a_fixed_point(chain_scm):
    factual = np.array([2.0, 5.5, 3.0])
    projected = project_counterfactual(chain_scm, ORDER, factual, factual)
    assert np.allclose(projected, factual)


def test_upstream_only_change_projects_to_itself_upstream(chain_scm):
    factual = np.array([2.0, 5.5, 3.0])
    cf = np.array([2.0, 5.5, 9.0])  # savings is a sink: no descendants
    projected = project_counterfactual(chain_scm, ORDER, factual, cf)
    assert np.allclose(projected, cf)


class TestInconsistency:
    def test_zero_for_projected_counterfactual(self, chain_scm):
        factual = np.array([2.0, 5.5, 3.0])
        consistent = project_counterfactual(
            chain_scm, ORDER, factual, np.array([4.0, 5.5, 3.0])
        )
        cf = CounterfactualExplanation(
            factual=factual, counterfactuals=consistent[None, :],
            factual_outcome=0.0, target_outcome=1.0, feature_names=ORDER,
        )
        # education is the declared action; everything downstream must
        # satisfy its mechanism exactly.
        gap = causal_inconsistency(
            chain_scm, ORDER, cf, np.ones(3), exempt={"education"}
        )
        assert gap == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_frozen_descendants(self, chain_scm):
        factual = np.array([2.0, 5.5, 3.0])
        naive = np.array([4.0, 5.5, 3.0])
        cf = CounterfactualExplanation(
            factual=factual, counterfactuals=naive[None, :],
            factual_outcome=0.0, target_outcome=1.0, feature_names=ORDER,
        )
        gap = causal_inconsistency(
            chain_scm, ORDER, cf, np.ones(3), exempt={"education"}
        )
        assert gap > 1.0  # income alone violates its mechanism by 4

    def test_per_variable_residuals(self, chain_scm):
        from repro.counterfactual import mechanism_residuals

        factual = np.array([2.0, 5.5, 3.0])
        naive = np.array([4.0, 5.5, 3.0])  # income frozen under new education
        residuals = mechanism_residuals(
            chain_scm, ORDER, factual, naive, np.ones(3),
            exempt={"education"},
        )
        # income should be 2·4 + 1 + 0.5 = 9.5, found 5.5: residual 4.
        assert residuals["income"] == pytest.approx(4.0)
        # savings' parent (income) did not change: mechanism still holds.
        assert residuals["savings"] == pytest.approx(0.0)
