"""Tests for DiCE- and GeCo-style counterfactual generators + metrics."""

import numpy as np
import pytest

from repro.core.base import as_predict_fn
from repro.core.explanation import CounterfactualExplanation
from repro.counterfactual import (
    DiceExplainer,
    GecoExplainer,
    evaluate_counterfactuals,
    mad_scale,
    validity,
)


@pytest.fixture(scope="module")
def denied_instance(loan_data, loan_logistic):
    fn = as_predict_fn(loan_logistic)
    scores = fn(loan_data.X)
    denied = np.where(scores < 0.4)[0]
    return loan_data.X[denied[0]]


class TestMetrics:
    def test_mad_scale_positive_and_robust(self, loan_data):
        scale = mad_scale(loan_data.X)
        assert np.all(scale > 0)
        # inserting a wild outlier barely moves the MAD
        X = loan_data.X.copy()
        X[0] = X[0] * 1e6
        shifted = mad_scale(X)
        assert np.all(shifted < scale * 10)

    def test_validity_directions(self):
        cf = CounterfactualExplanation(
            factual=np.zeros(2),
            counterfactuals=np.array([[1.0, 0.0], [0.0, 0.0]]),
            factual_outcome=0.0,
            target_outcome=1.0,
            feature_names=["a", "b"],
        )
        fn = lambda X: X[:, 0]  # score = first feature
        assert validity(cf, fn, threshold=0.5) == 0.5


@pytest.mark.parametrize("explainer_cls", [DiceExplainer, GecoExplainer])
class TestGenerators:
    def test_counterfactuals_flip_the_model(
        self, explainer_cls, loan_data, loan_logistic, denied_instance
    ):
        explainer = explainer_cls(loan_logistic, loan_data, seed=0)
        cf = explainer.explain(denied_instance)
        fn = as_predict_fn(loan_logistic)
        metrics = evaluate_counterfactuals(cf, fn, loan_data.X)
        assert metrics["validity"] >= 0.5
        assert cf.factual_outcome < 0.5
        assert cf.target_outcome == 1.0

    def test_immutable_features_never_change(
        self, explainer_cls, loan_data, loan_logistic, denied_instance
    ):
        explainer = explainer_cls(loan_logistic, loan_data, seed=1)
        cf = explainer.explain(denied_instance)
        for j, spec in enumerate(loan_data.features):
            if not spec.actionable:
                assert np.allclose(
                    cf.counterfactuals[:, j], cf.factual[j]
                ), spec.name

    def test_monotone_constraints_respected(
        self, explainer_cls, loan_data, loan_logistic, denied_instance
    ):
        explainer = explainer_cls(loan_logistic, loan_data, seed=2)
        cf = explainer.explain(denied_instance)
        for j, spec in enumerate(loan_data.features):
            if spec.monotone == +1:
                assert np.all(
                    cf.counterfactuals[:, j] >= cf.factual[j] - 1e-9
                ), spec.name


def test_dice_produces_diverse_set(loan_data, loan_logistic, denied_instance):
    dice = DiceExplainer(loan_logistic, loan_data, total_cfs=4, seed=0)
    cf = dice.explain(denied_instance)
    assert cf.n_counterfactuals == 4
    fn = as_predict_fn(loan_logistic)
    metrics = evaluate_counterfactuals(cf, fn, loan_data.X)
    assert metrics["diversity"] > 0


def test_geco_is_sparser_than_dice(loan_data, loan_logistic, denied_instance):
    fn = as_predict_fn(loan_logistic)
    dice = DiceExplainer(loan_logistic, loan_data, seed=0).explain(denied_instance)
    geco = GecoExplainer(loan_logistic, loan_data, seed=0).explain(denied_instance)
    m_dice = evaluate_counterfactuals(dice, fn, loan_data.X)
    m_geco = evaluate_counterfactuals(geco, fn, loan_data.X)
    assert m_geco["sparsity"] <= m_dice["sparsity"] + 0.5


def test_geco_custom_constraint_enforced(loan_data, loan_logistic,
                                         denied_instance):
    j = loan_data.feature_index("credit_score")
    cap = denied_instance[j] + 40.0

    def no_big_credit_jump(candidate, factual):
        return candidate[j] <= cap

    geco = GecoExplainer(
        loan_logistic, loan_data, constraints=[no_big_credit_jump], seed=3
    )
    cf = geco.explain(denied_instance)
    assert np.all(cf.counterfactuals[:, j] <= cap + 1e-9)


def test_already_approved_instance_targets_denial(loan_data, loan_logistic):
    fn = as_predict_fn(loan_logistic)
    approved = loan_data.X[np.argmax(fn(loan_data.X))]
    cf = GecoExplainer(loan_logistic, loan_data, seed=4).explain(approved)
    assert cf.target_outcome == 0.0
