"""Tests for train/test splitting and cross-validation."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.models import LogisticRegression
from repro.models.model_selection import KFold, cross_val_score, train_test_split


class TestTrainTestSplit:
    def test_partition_is_complete_and_disjoint(self):
        X = np.arange(100).reshape(50, 2).astype(float)
        y = np.arange(50)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.2, seed=0)
        assert Xtr.shape[0] + Xte.shape[0] == 50
        assert set(ytr) | set(yte) == set(range(50))
        assert set(ytr) & set(yte) == set()

    def test_test_size_fraction(self):
        X = np.zeros((100, 1))
        y = np.zeros(100)
        __, Xte, __, __ = train_test_split(X, y, test_size=0.3, seed=1)
        assert Xte.shape[0] == 30

    def test_stratified_preserves_proportions(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.zeros((100, 1))
        __, __, ytr, yte = train_test_split(
            X, y, test_size=0.25, seed=2, stratify=True
        )
        assert np.mean(yte) == pytest.approx(0.2, abs=0.05)
        assert np.mean(ytr) == pytest.approx(0.2, abs=0.05)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(10), test_size=1.5)


class TestKFold:
    def test_every_index_tested_exactly_once(self):
        folds = list(KFold(n_splits=5, seed=0).split(53))
        tested = np.concatenate([test for __, test in folds])
        assert sorted(tested.tolist()) == list(range(53))

    def test_train_test_disjoint_per_fold(self):
        for train, test in KFold(n_splits=4, seed=1).split(40):
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))


def test_cross_val_score_reasonable():
    data = make_classification(250, seed=9, class_sep=2.0)
    scores = cross_val_score(
        lambda: LogisticRegression(alpha=1.0), data.X, data.y, n_splits=4
    )
    assert scores.shape == (4,)
    assert scores.mean() > 0.8
