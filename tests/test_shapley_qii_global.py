"""Tests for QII and global aggregation of local explanations."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.models import GradientBoostingClassifier, LogisticRegression
from repro.shapley import (
    QIIExplainer,
    TreeShapExplainer,
    aggregate_attributions,
    permutation_importance,
    set_qii,
    unary_qii,
)


@pytest.fixture(scope="module")
def setup():
    data = make_classification(300, n_features=5, n_informative=2, seed=21)
    model = LogisticRegression(alpha=0.5).fit(data.X, data.y)
    return data, model


def test_unary_qii_ranks_informative_features(setup):
    data, model = setup
    from repro.core.base import as_predict_fn

    fn = as_predict_fn(model)
    scores = np.mean(
        [np.abs(unary_qii(fn, x, data.X, n_samples=200)) for x in data.X[:10]],
        axis=0,
    )
    # informative features are 0 and 1
    assert min(scores[0], scores[1]) > max(scores[2:])


def test_set_qii_empty_set_is_zero(setup):
    data, model = setup
    from repro.core.base import as_predict_fn

    assert set_qii(as_predict_fn(model), data.X[0], data.X, []) == 0.0


def test_qii_explainer_additivity(setup):
    data, model = setup
    explainer = QIIExplainer(model, data.X[:80], n_permutations=30,
                             n_samples=60, seed=0)
    att = explainer.explain(data.X[0])
    # Shapley QII is efficient w.r.t. its own game by construction.
    assert att.additivity_gap() < 1e-9


def test_global_aggregation_and_ranking(setup):
    data, __ = setup
    gbm = GradientBoostingClassifier(n_estimators=15, max_depth=2, seed=0)
    gbm.fit(data.X, data.y)
    explainer = TreeShapExplainer(gbm)
    global_att = aggregate_attributions(explainer, data.X[:40])
    assert global_att.matrix.shape == (40, 5)
    ranking = global_att.ranking()
    assert set(ranking[:2]) <= {0, 1, 2}  # informative features dominate
    top = global_att.top(2)
    assert len(top) == 2 and top[0][1] >= top[1][1]


def test_permutation_importance_identifies_signal(setup):
    data, model = setup
    imp = permutation_importance(model, data.X, data.y, n_repeats=3, seed=0)
    assert imp.shape == (5,)
    assert max(imp[0], imp[1]) > max(np.abs(imp[2:]))


def test_shap_and_permutation_importance_agree_on_top_feature(setup):
    data, __ = setup
    gbm = GradientBoostingClassifier(n_estimators=20, max_depth=2, seed=0)
    gbm.fit(data.X, data.y)
    shap_global = aggregate_attributions(TreeShapExplainer(gbm), data.X[:40])
    perm = permutation_importance(gbm, data.X, data.y, n_repeats=3, seed=1)
    assert shap_global.ranking()[0] == int(np.argmax(perm))
