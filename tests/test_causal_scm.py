"""Tests for the structural causal model substrate."""

import numpy as np
import pytest

from repro.causal import StructuralCausalModel, linear_mechanism


def chain_scm():
    scm = StructuralCausalModel()
    scm.add_variable("a", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    scm.add_variable("b", ["a"], linear_mechanism({"a": 2.0}, intercept=1.0),
                     noise=lambda rng, n: rng.normal(0, 0.1, n))
    scm.add_variable("c", ["b"], linear_mechanism({"b": -1.0}),
                     noise=lambda rng, n: rng.normal(0, 0.1, n))
    return scm


def test_topological_order_and_parents():
    scm = chain_scm()
    assert scm.variables == ["a", "b", "c"]
    assert scm.parents("c") == ["b"]
    assert scm.topological_index() == {"a": 0, "b": 1, "c": 2}


def test_parent_must_exist_first():
    scm = StructuralCausalModel()
    with pytest.raises(ValueError):
        scm.add_variable("child", ["ghost"], lambda p, u: u)


def test_duplicate_variable_rejected():
    scm = chain_scm()
    with pytest.raises(ValueError):
        scm.add_variable("a", [], lambda p, u: u)


def test_observational_means_follow_mechanisms():
    scm = chain_scm()
    values = scm.sample(20_000, seed=0)
    assert values["a"].mean() == pytest.approx(0.0, abs=0.05)
    assert values["b"].mean() == pytest.approx(1.0, abs=0.05)
    assert values["c"].mean() == pytest.approx(-1.0, abs=0.05)


def test_intervention_breaks_upstream_dependence():
    scm = chain_scm()
    forced = scm.sample(5_000, seed=1, interventions={"b": 10.0})
    assert np.all(forced["b"] == 10.0)
    assert forced["c"].mean() == pytest.approx(-10.0, abs=0.05)
    # a is unaffected by intervening downstream
    assert forced["a"].mean() == pytest.approx(0.0, abs=0.1)
    # and b no longer correlates with a
    assert abs(np.corrcoef(forced["a"], forced["c"])[0, 1]) < 0.05


def test_sample_matrix_column_order():
    scm = chain_scm()
    M = scm.sample_matrix(100, ["c", "a"], seed=2)
    values = scm.sample(100, seed=2)
    assert np.allclose(M[:, 0], values["c"])
    assert np.allclose(M[:, 1], values["a"])


def test_counterfactual_replay_is_exact():
    scm = chain_scm()
    values, noise = scm.sample(500, seed=3, return_noise=True)
    # Replay without intervention reproduces the factual world exactly.
    replay = scm.counterfactual(noise)
    for name in scm.variables:
        assert np.allclose(replay[name], values[name])
    # Counterfactual world: do(a = a + 1) shifts b by exactly 2.
    twin = scm.counterfactual(noise, {"a": values["a"] + 1.0})
    assert np.allclose(twin["b"] - values["b"], 2.0)


def test_conditional_sample_respects_condition():
    scm = chain_scm()
    cond = scm.conditional_sample(200, {"a": 1.0}, seed=4)
    assert np.all(np.abs(cond["a"] - 1.0) <= 0.3)
    # b | a≈1 concentrates near 3
    assert cond["b"].mean() == pytest.approx(3.0, abs=0.3)


def test_conditional_sample_impossible_condition_raises():
    scm = chain_scm()
    with pytest.raises(RuntimeError):
        scm.conditional_sample(
            10, {"a": 100.0}, tolerance={"a": 0.01}, max_batches=3
        )
