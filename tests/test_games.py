"""The cooperative-game layer: seeded parity across every Shapley family,
shared telemetry, and graceful degradation under budgets.

The games refactor's contract is that routing a workload through
``repro.games`` changes *nothing numerically*: every family keeps a
``legacy_*`` implementation (or an ``engine=False`` switch), and these
tests pin the new path to the old one bitwise at equal seeds.
"""

import numpy as np
import pytest

from repro import obs
from repro.causal import (
    AsymmetricShapleyExplainer,
    CausalShapleyExplainer,
    StructuralCausalModel,
    conditional_value_function,
    linear_mechanism,
    sample_topological_permutation,
)
from repro.datavalue import (
    UtilityFunction,
    beta_shapley,
    distributional_shapley,
    gradient_shapley,
    legacy_beta_shapley,
    legacy_distributional_shapley,
    legacy_gradient_shapley,
    legacy_tmc_shapley,
    tmc_shapley,
)
from repro.db import Relation, shapley_of_tuples
from repro.games import (
    DataValueGame,
    FunctionGame,
    TupleProvenanceGame,
    as_game,
    exact_enumeration,
    game_value_function,
    kernel_wls_estimator,
    permutation_estimator,
    sample_topological_order,
    stratified_estimator,
)
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split
from repro.obs.metrics import counter, reset_metrics
from repro.robust import GuardConfig, TransientModelError, guard_scope
from repro.shapley import exact_shapley, kernel_shap, permutation_shapley
from repro.shapley.sampling import legacy_permutation_shapley


def _quadratic_game(n):
    """A deterministic, asymmetric value function over n players."""
    weights = np.arange(1.0, n + 1.0)

    def v(masks):
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        s = masks @ weights
        return s + 0.1 * s**2

    return v


@pytest.fixture(scope="module")
def tiny_utility_pair():
    """Two independent utilities over the same 12-point valuation task."""
    X, y = _make_valuation_data()
    X_train, X_val, y_train, y_val = train_test_split(
        X, y, test_size=0.4, seed=0
    )

    def build():
        return UtilityFunction(
            lambda: LogisticRegression(alpha=1.0),
            X_train[:12], y_train[:12], X_val, y_val,
        )

    return build


def _make_valuation_data():
    from repro.datasets import make_classification

    data = make_classification(60, n_features=3, n_informative=2,
                               class_sep=2.0, seed=13)
    return data.X, data.y


class TestGameProtocol:
    def test_as_game_wraps_callables(self):
        v = _quadratic_game(4)
        game = as_game(v, 4)
        assert isinstance(game, FunctionGame)
        assert game.n_players == 4
        masks = np.eye(4, dtype=bool)
        assert np.array_equal(game.value(masks), v(masks))

    def test_as_game_requires_n_players_for_callables(self):
        with pytest.raises(ValueError):
            as_game(_quadratic_game(3))

    def test_as_game_rejects_non_games(self):
        with pytest.raises(TypeError):
            as_game(object())

    def test_game_value_function_caches_deterministic_games(self):
        utility = _CountingValue(3)
        v = game_value_function(utility.as_game())
        masks = np.array([[True, False, False]] * 4)
        out = v(masks)
        assert np.array_equal(out, np.full(4, 1.0))
        assert utility.calls == 1  # three duplicates served by the cache
        assert v.cache.hits == 3 and v.cache.misses == 1

    def test_cache_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_COALITION_CACHE", "0")
        utility = _CountingValue(3)
        v = game_value_function(utility.as_game())
        v(np.array([[True, False, False]] * 4))
        assert utility.calls == 4
        assert v.cache is None


class _CountingValue:
    def __init__(self, n):
        self.n = n
        self.calls = 0

    def as_game(self):
        outer = self

        class G:
            n_players = outer.n
            deterministic = True

            def value(self, masks):
                outer.calls += masks.shape[0]
                return np.asarray(masks, dtype=float).sum(axis=1)

        return G()


class TestSamplingParity:
    """games permutation_estimator == the retained legacy walk loop."""

    @pytest.mark.parametrize("antithetic", [True, False])
    @pytest.mark.parametrize("n_permutations", [1, 2, 9, 40])
    def test_bitwise(self, antithetic, n_permutations):
        v = _quadratic_game(5)
        new = permutation_shapley(
            v, 5, n_permutations=n_permutations, antithetic=antithetic,
            seed=3, return_diagnostics=True,
        )
        old = legacy_permutation_shapley(
            v, 5, n_permutations=n_permutations, antithetic=antithetic,
            seed=3, return_diagnostics=True,
        )
        assert np.array_equal(new[0], old[0])
        assert np.array_equal(new[1], old[1])
        assert new[2] == old[2]

    def test_exact_matches_linear_game(self):
        # For the linear part of the game Shapley is the weight itself;
        # the quadratic part is symmetric in coalition weight-sum.
        weights = np.arange(1.0, 5.0)
        v = lambda masks: np.atleast_2d(masks) @ weights
        phi = exact_shapley(v, 4)
        assert np.allclose(phi, weights)
        assert np.array_equal(phi, exact_enumeration(v, n_players=4))

    def test_kernel_delegation_is_bitwise(self):
        v = _quadratic_game(6)
        direct = kernel_wls_estimator(v, n_players=6, n_samples=40, seed=2)
        via_shapley = kernel_shap(v, 6, n_samples=40, seed=2)
        assert np.array_equal(direct[0], via_shapley[0])
        assert direct[1] == via_shapley[1]


class TestDataValueParity:
    def test_tmc_bitwise(self, tiny_utility_pair):
        new = tmc_shapley(tiny_utility_pair(), n_permutations=15, seed=4)
        old = legacy_tmc_shapley(tiny_utility_pair(), n_permutations=15, seed=4)
        assert np.array_equal(new.values, old.values)
        assert new.meta["full_score"] == old.meta["full_score"]
        assert (new.meta["mean_truncation_position"]
                == old.meta["mean_truncation_position"])
        assert (new.meta["n_utility_evaluations"]
                == old.meta["n_utility_evaluations"])
        assert new.meta["convergence"]["converged"] is True

    def test_beta_bitwise(self, tiny_utility_pair):
        new = beta_shapley(tiny_utility_pair(), alpha=4.0, beta=1.0,
                           n_permutations=10, seed=6)
        old = legacy_beta_shapley(tiny_utility_pair(), alpha=4.0, beta=1.0,
                                  n_permutations=10, seed=6)
        assert np.array_equal(new.values, old.values)
        assert new.method == old.method

    def test_distributional_bitwise(self, tiny_utility_pair):
        new = distributional_shapley(2, tiny_utility_pair(), n_draws=25, seed=1)
        old = legacy_distributional_shapley(
            2, tiny_utility_pair(), n_draws=25, seed=1
        )
        assert new == old

    def test_distributional_bad_index(self, tiny_utility_pair):
        with pytest.raises(IndexError):
            distributional_shapley(99, tiny_utility_pair(), n_draws=2)

    def test_gradient_bitwise(self):
        X, y = _make_valuation_data()
        X_train, X_val, y_train, y_val = train_test_split(
            X, y, test_size=0.5, seed=2
        )
        kwargs = dict(n_permutations=8, learning_rate=0.1, seed=9)
        new = gradient_shapley(
            lambda: LogisticRegression(alpha=1.0),
            X_train[:10], y_train[:10], X_val, y_val, **kwargs,
        )
        old = legacy_gradient_shapley(
            lambda: LogisticRegression(alpha=1.0),
            X_train[:10], y_train[:10], X_val, y_val, **kwargs,
        )
        assert np.array_equal(new.values, old.values)

    def test_stratified_estimator_rejects_bad_player(self):
        with pytest.raises(IndexError):
            stratified_estimator(_quadratic_game(4), 7, n_players=4)


@pytest.fixture()
def sales():
    return Relation(
        ["region", "amount"],
        [("east", 10.0), ("east", 30.0), ("west", 5.0), ("west", 100.0)],
        name="sales",
    )


def _total(rel):
    return sum(t["amount"] for t in rel.to_dicts())


class TestTupleParity:
    def test_exact_engine_matches_legacy(self, sales):
        new = shapley_of_tuples(sales, _total, method="exact")
        old = shapley_of_tuples(sales, _total, method="exact", engine=False)
        assert new == old

    def test_sampling_engine_matches_legacy(self, sales):
        kwargs = dict(method="sampling", n_permutations=30, seed=2)
        new = shapley_of_tuples(sales, _total, **kwargs)
        old = shapley_of_tuples(sales, _total, engine=False, **kwargs)
        assert new == old

    def test_game_respects_exogenous_context(self, sales):
        game = TupleProvenanceGame(sales, _total, endogenous=[0, 1])
        assert game.n_players == 2
        assert game.player_names == ["t0", "t1"]
        # ∅ still includes the exogenous west tuples.
        assert game.value(np.array([[False, False]]))[0] == 105.0
        assert game.grand_value() == 145.0


@pytest.fixture(scope="module")
def chain_scm():
    scm = StructuralCausalModel()
    scm.add_variable("a", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    scm.add_variable("b", ["a"], linear_mechanism({"a": 1.0}),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    return scm


def _chain_model(X):
    return X[:, 0] + 2.0 * X[:, 1]


class TestCausalParity:
    def test_asymmetric_bitwise(self, chain_scm):
        x = np.array([1.0, 0.5])
        kwargs = dict(n_permutations=12, n_samples=60, seed=5)
        new = AsymmetricShapleyExplainer(
            _chain_model, chain_scm, ["a", "b"], **kwargs
        ).explain(x)
        old = AsymmetricShapleyExplainer(
            _chain_model, chain_scm, ["a", "b"], engine=False, **kwargs
        ).explain(x)
        assert np.array_equal(new.values, old.values)
        assert new.base_value == old.base_value

    def test_asymmetric_custom_value_fn_bitwise(self, chain_scm):
        x = np.array([0.5, -1.0])
        kwargs = dict(n_permutations=6, n_samples=40, seed=8)
        results = []
        for engine in (True, False):
            v = conditional_value_function(
                chain_scm, _chain_model, ["a", "b"], x,
                n_samples=40, seed=8,
            )
            att = AsymmetricShapleyExplainer(
                _chain_model, chain_scm, ["a", "b"], engine=engine, **kwargs
            ).explain(x, value_fn=v)
            results.append(att)
        assert np.array_equal(results[0].values, results[1].values)
        assert results[0].base_value == results[1].base_value

    def test_causal_bitwise(self, chain_scm):
        x = np.array([1.0, 1.0])
        kwargs = dict(n_permutations=10, n_samples=50, seed=3)
        new = CausalShapleyExplainer(
            _chain_model, chain_scm, ["a", "b"], **kwargs
        ).explain(x)
        old = CausalShapleyExplainer(
            _chain_model, chain_scm, ["a", "b"], engine=False, **kwargs
        ).explain(x)
        assert np.array_equal(new.values, old.values)
        assert np.array_equal(new.meta["direct"], old.meta["direct"])
        assert np.array_equal(new.meta["indirect"], old.meta["indirect"])
        assert new.base_value == old.base_value
        assert np.allclose(
            new.meta["direct"] + new.meta["indirect"], new.values
        )

    def test_topological_sampler_matches_legacy_and_respects_dag(
        self, chain_scm
    ):
        legacy = sample_topological_permutation(
            chain_scm, ["a", "b"], np.random.default_rng(0)
        )
        generic = sample_topological_order(
            chain_scm.parents, ["a", "b"], np.random.default_rng(0)
        )
        assert np.array_equal(legacy, generic)
        for seed in range(10):
            order = sample_topological_order(
                chain_scm.parents, ["a", "b"], np.random.default_rng(seed)
            )
            # a (index 0) causes b (index 1): a must come first.
            assert list(order) == [0, 1]


class TestSharedTelemetry:
    """The same counters and spans fire for every game family."""

    def test_datavalue_run_emits_cache_counters(self, tiny_utility_pair):
        reset_metrics()
        utility = tiny_utility_pair()
        tmc_shapley(utility, n_permutations=6, seed=0)
        assert counter("datavalue.cache.misses").value > 0
        assert counter("coalition.cache.misses").value > 0
        # A second estimate over the same utility starts with a fresh
        # coalition cache, so repeated prefixes fall through to the
        # utility memo — the cross-estimator dedup layer.
        tmc_shapley(utility, n_permutations=6, seed=0)
        assert counter("datavalue.cache.hits").value > 0
        assert utility.cache_hits > 0 and utility.cache_misses > 0

    def test_db_run_emits_coalition_cache_counters(self, sales):
        reset_metrics()
        tracer = obs.get_tracer()
        mark = tracer.mark()
        shapley_of_tuples(sales, _total, method="sampling",
                          n_permutations=10, seed=0)
        assert counter("coalition.cache.hits").value > 0
        assert counter("coalition.cache.misses").value > 0
        spans = [s for s in tracer.spans_since(mark)
                 if s.name == "coalition_eval"]
        assert spans and spans[0].attrs["game"] == "TupleProvenanceGame"

    def test_causal_run_emits_spans_and_cache_hits(self, chain_scm):
        reset_metrics()
        tracer = obs.get_tracer()
        mark = tracer.mark()
        AsymmetricShapleyExplainer(
            _chain_model, chain_scm, ["a", "b"],
            n_permutations=6, n_samples=30, seed=0,
        ).explain(np.array([1.0, -0.5]))
        # Walks repeat ∅ and prefixes at fixed positions: position-keyed
        # cache hits replace SCM re-sampling.
        assert counter("coalition.cache.hits").value > 0
        spans = [s for s in tracer.spans_since(mark)
                 if s.name == "coalition_eval"]
        assert spans and spans[0].attrs["game"] == "TopologicalGame"


class TestGracefulDegradationAcrossGames:
    """PR 3's budget/retry semantics now apply to non-model games too."""

    def test_flaky_datavalue_game_degrades_to_partial(
        self, tiny_utility_pair, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKOFF", "0")
        reset_metrics()
        utility = tiny_utility_pair()
        state = {"calls": 0}

        class FlakyUtility:
            n_points = utility.n_points
            empty_score = utility.empty_score

            def full_score(self):
                return utility.full_score()

            def __call__(self, indices):
                state["calls"] += 1
                if state["calls"] % 7 == 3:
                    raise TransientModelError("utility service hiccup")
                return utility(indices)

        game = DataValueGame(FlakyUtility())
        with guard_scope(GuardConfig(query_budget=60)):
            est = permutation_estimator(
                game, n_permutations=50, antithetic=False, seed=0,
                truncation_tolerance=0.01,
                truncation_target=utility.full_score(),
                empty_value=utility.empty_score,
                aggregate="sum_counts",
            )
        assert est.diagnostics["converged"] is False
        assert est.diagnostics["budget_error"] is not None
        assert 0 < est.diagnostics["n_walks_completed"] < 50
        assert np.all(np.isfinite(est.values))
        # Transient failures were retried (not fatal), and the budget
        # exhaustion was counted.
        assert counter("robust.retries").value > 0
        assert counter("robust.budget_exhausted").value > 0

    def test_budget_exhaustion_before_any_walk_raises(self, tiny_utility_pair):
        from repro.robust import BudgetExceededError

        game = DataValueGame(tiny_utility_pair())
        with guard_scope(GuardConfig(query_budget=1)):
            with pytest.raises(BudgetExceededError):
                permutation_estimator(
                    game, n_permutations=5, antithetic=False, seed=0,
                    empty_value=game.empty_value, aggregate="sum_counts",
                )


class TestResumableEstimators:
    """Anytime estimation: resumed walk streams re-join bitwise."""

    @pytest.mark.parametrize("aggregate", ["mean_walks", "sum_counts"])
    @pytest.mark.parametrize("antithetic", [True, False])
    def test_partial_plus_resume_is_bitwise(self, aggregate, antithetic):
        v = _quadratic_game(5)
        kwargs = dict(n_players=5, antithetic=antithetic, seed=3,
                      aggregate=aggregate)
        full = permutation_estimator(v, n_permutations=20, **kwargs)
        partial = permutation_estimator(v, n_permutations=8, **kwargs)
        resumed = permutation_estimator(
            v, n_permutations=20, resume_state=partial.state, **kwargs
        )
        assert np.array_equal(resumed.values, full.values)
        if full.std_err is not None:
            assert np.array_equal(resumed.std_err, full.std_err)
        assert resumed.state.n_walks == full.state.n_walks
        assert resumed.diagnostics["n_walks_completed"] == \
            full.diagnostics["n_walks_completed"]

    def test_state_roundtrips_through_json_dict(self):
        v = _quadratic_game(4)
        kwargs = dict(n_players=4, antithetic=True, seed=11)
        full = permutation_estimator(v, n_permutations=12, **kwargs)
        partial = permutation_estimator(v, n_permutations=6, **kwargs)
        import json

        payload = json.loads(json.dumps(partial.state.to_dict()))
        resumed = permutation_estimator(
            v, n_permutations=12, resume_state=payload, **kwargs
        )
        assert np.array_equal(resumed.values, full.values)

    def test_mid_antithetic_pair_resume(self):
        from repro.games import EstimatorState

        v = _quadratic_game(5)
        kwargs = dict(n_players=5, antithetic=True, seed=9)
        full = permutation_estimator(v, n_permutations=10, **kwargs)
        # A state cut mid-pair: 5 completed walks = 2.5 antithetic
        # batches, so the resume must re-enter at the reverse walk of
        # the third permutation.
        state = full.state
        cut = EstimatorState(
            n_walks=5,
            aggregate="mean_walks",
            contributions=[np.array(c) for c in state.contributions[:5]],
            params=dict(state.params),
        )
        resumed = permutation_estimator(
            v, n_permutations=10, resume_state=cut, **kwargs
        )
        assert np.array_equal(resumed.values, full.values)

    def test_budget_exhausted_partial_resumes_to_full(self, tiny_utility_pair):
        game = DataValueGame(tiny_utility_pair())
        kwargs = dict(n_permutations=6, antithetic=False, seed=2,
                      empty_value=game.empty_value, aggregate="sum_counts")
        full = permutation_estimator(game, **kwargs)

        flaky_game = DataValueGame(tiny_utility_pair())
        with guard_scope(GuardConfig(query_budget=30)):
            partial = permutation_estimator(flaky_game, **kwargs)
        assert partial.diagnostics["converged"] is False
        assert 0 < partial.state.n_walks < 6

        resume_game = DataValueGame(tiny_utility_pair())
        resumed = permutation_estimator(
            resume_game, resume_state=partial.state.to_dict(), **kwargs
        )
        assert resumed.diagnostics["converged"] is True
        assert np.array_equal(resumed.values, full.values)

    def test_param_mismatch_rejected(self):
        v = _quadratic_game(4)
        partial = permutation_estimator(v, n_players=4, n_permutations=4,
                                        antithetic=True, seed=1)
        with pytest.raises(ValueError, match="resume_state"):
            permutation_estimator(v, n_players=4, n_permutations=8,
                                  antithetic=True, seed=2,
                                  resume_state=partial.state)

    def test_explicit_rng_rejected_with_resume(self):
        v = _quadratic_game(4)
        partial = permutation_estimator(v, n_players=4, n_permutations=4,
                                        seed=1)
        with pytest.raises(ValueError, match="rng"):
            permutation_estimator(
                v, n_players=4, n_permutations=8, seed=1,
                rng=np.random.default_rng(1), resume_state=partial.state,
            )

    def test_fully_complete_state_is_a_no_op_resume(self):
        v = _quadratic_game(4)
        kwargs = dict(n_players=4, antithetic=True, seed=6)
        full = permutation_estimator(v, n_permutations=8, **kwargs)
        resumed = permutation_estimator(
            v, n_permutations=8, resume_state=full.state, **kwargs
        )
        assert np.array_equal(resumed.values, full.values)
        assert resumed.state.n_walks == full.state.n_walks
