"""Cross-module integration scenarios mirroring the tutorial's narrative."""

import numpy as np
import pytest

from repro.core.base import as_predict_fn


def test_one_instance_many_explainers_agree_on_top_feature(
    loan_data, loan_logistic
):
    """Feature-based explainers (§2.1) should broadly agree on an easy,
    near-linear model: the same feature family dominates."""
    from repro.shapley import ExactShapleyExplainer, KernelShapExplainer
    from repro.surrogate import LimeTabularExplainer

    x = loan_data.X[int(np.argmax(loan_data.X[:, -1]))]  # max credit score
    background = loan_data.X[:40]
    exact = ExactShapleyExplainer(loan_logistic, background).explain(x)
    kernel = KernelShapExplainer(
        loan_logistic, background, n_samples=126
    ).explain(x)
    # SHAP variants must agree exactly; LIME at least on sign of the top.
    assert exact.ranking()[0] == kernel.ranking()[0]
    lime = LimeTabularExplainer(
        loan_logistic, loan_data, n_samples=1500, seed=0
    ).explain(x)
    top = exact.ranking()[0]
    assert np.sign(lime.values[top]) == np.sign(exact.values[top])


def test_counterfactual_is_consistent_with_recourse(loan_data, loan_logistic):
    """§2.1.4: the recourse flipset must itself be a valid counterfactual."""
    from repro.counterfactual import LinearRecourse

    fn = as_predict_fn(loan_logistic)
    recourse = LinearRecourse(
        loan_logistic.coef_, loan_logistic.intercept_, loan_data
    )
    denied = next(x for x in loan_data.X if recourse.score(x) < 0)
    result = recourse.find(denied)
    assert result.feasible
    flipped = denied.copy()
    for action in result.actions:
        flipped[action.feature] = action.new_value
    assert fn(flipped[None, :])[0] >= 0.5


def test_rule_and_reason_precision_relationship(small_classification):
    """§2.2: a logically sufficient reason is an anchor with precision 1
    under ANY perturbation distribution over the free features."""
    from repro.logic import minimal_sufficient_reason, reason_to_rule
    from repro.models import DecisionTreeClassifier

    data = small_classification
    tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(data.X, data.y)
    x = data.X[0]
    reason = minimal_sufficient_reason(tree, x)
    rule = reason_to_rule(tree, x, reason, reference=data.X)
    rng = np.random.default_rng(0)
    # adversarially resample the free features from a wide distribution
    rows = np.tile(x, (500, 1))
    free = [j for j in range(data.n_features) if j not in reason]
    rows[:, free] = rng.normal(0, 10, (500, len(free)))
    predictions = tree.predict(rows)
    assert np.all(predictions == rule.outcome)


def test_data_shapley_and_influence_agree_on_harmful_points():
    """§2.3: both training-data attribution families should flag the
    same flipped labels."""
    from repro.datasets import make_classification
    from repro.datavalue import UtilityFunction, tmc_shapley
    from repro.influence import InfluenceFunctions
    from repro.models import LogisticRegression
    from repro.models.model_selection import train_test_split

    data = make_classification(120, n_features=4, class_sep=2.5, seed=111)
    X_train, X_val, y_train, y_val = train_test_split(
        data.X, data.y, test_size=0.35, seed=0
    )
    rng = np.random.default_rng(1)
    flipped = rng.choice(X_train.shape[0], size=6, replace=False)
    y_train[flipped] = 1 - y_train[flipped]
    model = LogisticRegression(alpha=1.0).fit(X_train, y_train)

    shapley = tmc_shapley(
        UtilityFunction(lambda: LogisticRegression(alpha=1.0),
                        X_train, y_train, X_val, y_val),
        n_permutations=50, seed=0,
    )
    influence = InfluenceFunctions(model, X_train, y_train).influence_on_loss(
        X_val, y_val
    )
    k = 15
    shapley_worst = set(shapley.ranking()[:k].tolist())
    influence_worst = set(influence.ranking()[:k].tolist())
    flipped_set = set(flipped.tolist())
    assert len(shapley_worst & flipped_set) >= 3
    assert len(influence_worst & flipped_set) >= 3


def test_unlearning_after_valuation_improves_model():
    """Close the valuation loop: drop the lowest-valued points, accuracy
    on clean validation should not degrade (usually improves)."""
    from repro.datasets import make_classification
    from repro.datavalue import knn_shapley
    from repro.models import KNeighborsClassifier
    from repro.models.model_selection import train_test_split

    data = make_classification(300, n_features=4, class_sep=1.8, seed=113)
    X_train, X_val, y_train, y_val = train_test_split(
        data.X, data.y, test_size=0.3, seed=0
    )
    rng = np.random.default_rng(2)
    flipped = rng.choice(X_train.shape[0], size=25, replace=False)
    y_train[flipped] = 1 - y_train[flipped]
    values = knn_shapley(X_train, y_train, X_val, y_val, k=5)
    keep = values.ranking()[30:]  # drop the 30 lowest-valued points
    before = KNeighborsClassifier(5).fit(X_train, y_train).score(X_val, y_val)
    after = KNeighborsClassifier(5).fit(
        X_train[keep], y_train[keep]
    ).score(X_val, y_val)
    assert after >= before


def test_tutorial_pipeline_scm_to_explanations(loan_scm):
    """§2.1.3 + §2.1.2 composition: causal and marginal Shapley run on the
    same SCM-backed instance and both satisfy their efficiency axioms."""
    from repro.causal import CausalShapleyExplainer
    from repro.datasets import make_loan_dataset
    from repro.models import LogisticRegression
    from repro.shapley import ExactShapleyExplainer

    data = make_loan_dataset(400, seed=23)
    model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    x = data.X[0]
    marginal = ExactShapleyExplainer(model, data.X[:40]).explain(x)
    causal = CausalShapleyExplainer(
        model, loan_scm, data.feature_names,
        n_permutations=12, n_samples=250, seed=0,
    ).explain(x)
    assert marginal.additivity_gap() < 1e-9
    assert causal.additivity_gap() < 0.25  # Monte-Carlo tolerance
    # gender has no descendant-free direct path: its direct effect is ~0
    g = data.feature_index("gender")
    assert abs(causal.meta["direct"][g]) < 0.1
