"""Tests for provenance pipelines and stage-level blame."""

import numpy as np
import pytest

from repro.core.dataset import TabularDataset
from repro.core.explanation import DataAttribution
from repro.datasets import make_classification
from repro.models import LogisticRegression
from repro.pipelines import (
    ProvenancePipeline,
    Stage,
    intervention_blame,
    provenance_blame,
)


@pytest.fixture()
def raw_and_test():
    """One generation process split into pipeline input and clean test."""
    full = make_classification(700, n_features=4, class_sep=2.0, seed=101)
    raw = TabularDataset(full.X[:400], full.y[:400], list(full.features))
    return raw, full.X[400:], full.y[400:]


@pytest.fixture()
def raw_data(raw_and_test):
    return raw_and_test[0]


def corrupting_stage():
    """Relabels every row with x0 > 0.8 to class 0 — the bad stage."""

    def corrupt(X, y):
        y = y.copy()
        y[X[:, 0] > 0.8] = 0
        return y

    return Stage.relabel("bad_relabel", corrupt)


def benign_filter():
    return Stage.filter_rows("clip_outliers", lambda X: np.abs(X[:, 1]) < 3.0)


class TestPipelineMechanics:
    def test_reports_and_provenance_shapes(self, raw_data):
        pipeline = ProvenancePipeline([benign_filter(), corrupting_stage()])
        output, provenance, reports = pipeline.run(raw_data)
        assert len(provenance) == output.n_samples
        assert [r.name for r in reports] == ["clip_outliers", "bad_relabel"]
        assert reports[0].n_in == raw_data.n_samples
        assert reports[0].n_out == output.n_samples
        assert reports[1].n_modified > 0

    def test_provenance_tracks_source_rows(self, raw_data):
        pipeline = ProvenancePipeline([benign_filter()])
        output, provenance, __ = pipeline.run(raw_data)
        for i, record in enumerate(provenance):
            assert np.allclose(raw_data.X[record.source_row], output.X[i])

    def test_modified_by_records_the_right_stage(self, raw_data):
        pipeline = ProvenancePipeline([corrupting_stage()])
        output, provenance, __ = pipeline.run(raw_data)
        for i, record in enumerate(provenance):
            was_hit = raw_data.X[record.source_row, 0] > 0.8 and \
                raw_data.y[record.source_row] == 1
            assert ("bad_relabel" in record.modified_by) == was_hit

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            ProvenancePipeline([benign_filter(), benign_filter()])

    def test_run_without_unknown_stage(self, raw_data):
        pipeline = ProvenancePipeline([benign_filter()])
        with pytest.raises(KeyError):
            pipeline.run_without(raw_data, "ghost")

    def test_map_rows_marks_modified(self, raw_data):
        def clip(X):
            X[:, 0] = np.minimum(X[:, 0], 1.0)
            return X

        pipeline = ProvenancePipeline([Stage.map_rows("clip_x0", clip)])
        __, provenance, reports = pipeline.run(raw_data)
        expected = int(np.sum(raw_data.X[:, 0] > 1.0))
        assert reports[0].n_modified == expected


class TestBlame:
    def test_intervention_blame_flags_corrupting_stage(self, raw_and_test):
        raw, X_test, y_test = raw_and_test
        pipeline = ProvenancePipeline([benign_filter(), corrupting_stage()])
        blame = intervention_blame(
            pipeline, raw,
            lambda: LogisticRegression(alpha=0.5),
            X_test, y_test,
        )
        assert blame["bad_relabel"] > blame["clip_outliers"]
        assert blame["bad_relabel"] > 0.0

    def test_provenance_blame_lift(self, raw_data):
        pipeline = ProvenancePipeline([corrupting_stage()])
        output, provenance, __ = pipeline.run(raw_data)
        # Use an oracle attribution that scores corrupted rows as harmful.
        values = np.ones(output.n_samples)
        for i, record in enumerate(provenance):
            if "bad_relabel" in record.modified_by:
                values[i] = -1.0
        attribution = DataAttribution(values=values, method="oracle")
        blame = provenance_blame(
            provenance, attribution, ["bad_relabel"], harmful_quantile=0.1
        )
        assert blame["bad_relabel"] > 1.0  # lift above base rate

    def test_provenance_blame_zero_for_untouched_stage(self, raw_data):
        pipeline = ProvenancePipeline([corrupting_stage()])
        output, provenance, __ = pipeline.run(raw_data)
        attribution = DataAttribution(np.zeros(output.n_samples))
        blame = provenance_blame(provenance, attribution, ["never_ran"])
        assert blame["never_ran"] == 0.0

    def test_length_mismatch_rejected(self, raw_data):
        pipeline = ProvenancePipeline([corrupting_stage()])
        __, provenance, ___ = pipeline.run(raw_data)
        with pytest.raises(ValueError):
            provenance_blame(provenance, DataAttribution(np.zeros(3)), ["s"])


def test_end_to_end_influence_to_stage_blame(raw_and_test):
    """The §3 story: influence ranks rows, provenance lifts to stages."""
    from repro.influence import InfluenceFunctions

    raw, X_test, y_test = raw_and_test
    pipeline = ProvenancePipeline([benign_filter(), corrupting_stage()])
    output, provenance, __ = pipeline.run(raw)
    model = LogisticRegression(alpha=1.0).fit(output.X, output.y)
    influence = InfluenceFunctions(model, output.X, output.y)
    attribution = influence.influence_on_loss(X_test, y_test)
    blame = provenance_blame(
        provenance, attribution, ["clip_outliers", "bad_relabel"],
        harmful_quantile=0.15,
    )
    assert blame["bad_relabel"] > blame["clip_outliers"]
    assert blame["bad_relabel"] > 1.5
