"""Tests for the intrinsically interpretable GAM classifier."""

import numpy as np
import pytest

from repro.datasets import make_classification, make_xor
from repro.models import ExplainableBoostingClassifier, LogisticRegression


@pytest.fixture(scope="module")
def additive_setup():
    """Data with a purely additive nonlinear decision surface."""
    rng = np.random.default_rng(3)
    X = rng.uniform(-2, 2, (600, 3))
    logits = np.sin(2 * X[:, 0]) * 2 + X[:, 1] ** 2 - 1.5
    y = (logits > 0).astype(int)
    return X, y


def test_fits_additive_nonlinearity(additive_setup):
    X, y = additive_setup
    gam = ExplainableBoostingClassifier(n_rounds=100, seed=0).fit(X, y)
    linear = LogisticRegression(alpha=1.0).fit(X, y)
    assert gam.score(X, y) > linear.score(X, y)
    assert gam.score(X, y) > 0.85


def test_explanation_is_exact(additive_setup):
    X, y = additive_setup
    gam = ExplainableBoostingClassifier(n_rounds=30, seed=0).fit(X, y)
    for x in X[:5]:
        att = gam.explain(x)
        assert att.additivity_gap() < 1e-10  # intrinsic: no approximation


def test_irrelevant_feature_has_flat_shape(additive_setup):
    X, y = additive_setup
    gam = ExplainableBoostingClassifier(n_rounds=100, seed=0).fit(X, y)
    grid = np.linspace(-2, 2, 50)
    relevant = gam.shape_function(0, grid)
    irrelevant = gam.shape_function(2, grid)
    assert np.ptp(relevant) > 5 * np.ptp(irrelevant)


def test_shape_function_matches_contributions(additive_setup):
    X, y = additive_setup
    gam = ExplainableBoostingClassifier(n_rounds=20, seed=0).fit(X, y)
    x = X[0]
    att = gam.explain(x)
    for j in range(3):
        shape_value = gam.shape_function(j, np.array([x[j]]))[0]
        assert att.values[j] == pytest.approx(shape_value, abs=1e-10)


def test_cannot_express_pure_interaction():
    """The honest limitation: an additive model fails on XOR — which is
    exactly why the taxonomy distinguishes intrinsic-additive models."""
    data = make_xor(600, noise=0.0, seed=4)
    gam = ExplainableBoostingClassifier(n_rounds=40, seed=0)
    gam.fit(data.X, data.y)
    assert gam.score(data.X, data.y) < 0.7


def test_rejects_multiclass():
    with pytest.raises(ValueError):
        ExplainableBoostingClassifier(n_rounds=2).fit(
            np.zeros((6, 2)), np.array([0, 1, 2, 0, 1, 2])
        )


def test_proba_normalized(additive_setup):
    X, y = additive_setup
    gam = ExplainableBoostingClassifier(n_rounds=10, seed=0).fit(X, y)
    proba = gam.predict_proba(X[:20])
    assert np.allclose(proba.sum(axis=1), 1.0)
