"""Tests for the synthetic dataset generators and their ground truth."""

import numpy as np
import pytest

from repro.datasets import (
    flip_labels,
    make_baskets,
    make_classification,
    make_correlated_gaussian,
    make_grid_images,
    make_income_dataset,
    make_loan_dataset,
    make_loan_scm,
    make_recidivism_dataset,
    make_regression,
    make_xor,
)
from repro.models import LogisticRegression
from repro.models.metrics import pearson_correlation


class TestLoan:
    def test_schema_and_determinism(self):
        a = make_loan_dataset(200, seed=5)
        b = make_loan_dataset(200, seed=5)
        assert np.allclose(a.X, b.X)
        assert a.feature_names[0] == "age"
        assert not a.features[a.feature_index("gender")].actionable
        assert a.features[a.feature_index("education")].monotone == +1

    def test_learnable(self):
        data = make_loan_dataset(800, seed=6)
        model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
        assert model.score(data.X, data.y) > max(
            data.y.mean(), 1 - data.y.mean()
        )

    def test_gender_gap_injected_and_removable(self):
        biased = make_loan_dataset(3000, seed=7, gender_gap=1.5)
        fair = make_loan_dataset(3000, seed=7, gender_gap=0.0)
        g = biased.feature_index("gender")
        inc = biased.feature_index("income")
        gap_biased = (
            biased.X[biased.X[:, g] == 1, inc].mean()
            - biased.X[biased.X[:, g] == 0, inc].mean()
        )
        gap_fair = (
            fair.X[fair.X[:, g] == 1, inc].mean()
            - fair.X[fair.X[:, g] == 0, inc].mean()
        )
        assert gap_biased > 1.0
        assert abs(gap_fair) < 0.15

    def test_scm_consistency(self):
        data, scm = make_loan_dataset(300, seed=8, return_scm=True)
        values = scm.sample(300, seed=8)
        assert np.allclose(values["age"], data.X[:, 0])
        assert np.allclose(values["approved"].astype(int), data.y)

    def test_no_direct_gender_effect_on_approval(self):
        # Approval given identical mediators must not depend on gender:
        # intervene on all of approval's parents and flip gender.
        scm = make_loan_scm()
        fixed = {"credit_score": 700.0, "income": 5.0, "savings": 3.0}
        male = scm.sample(4000, seed=9, interventions={**fixed, "gender": 1.0})
        female = scm.sample(4000, seed=9, interventions={**fixed, "gender": 0.0})
        assert male["approved"].mean() == pytest.approx(
            female["approved"].mean(), abs=0.03
        )


class TestOtherTabular:
    def test_income_schema(self):
        data = make_income_dataset(300, seed=1)
        assert data.n_features == 7
        assert data.features[4].is_categorical
        assert 0.1 < data.y.mean() < 0.9

    def test_recidivism_bias_knob(self):
        biased = make_recidivism_dataset(3000, seed=2, policing_bias=2.0)
        neutral = make_recidivism_dataset(3000, seed=2, policing_bias=0.0)
        r = biased.feature_index("race")
        p = biased.feature_index("priors_count")
        corr_biased = pearson_correlation(biased.X[:, r], biased.X[:, p])
        corr_neutral = pearson_correlation(neutral.X[:, r], neutral.X[:, p])
        assert corr_biased > corr_neutral + 0.05


class TestSynth:
    def test_classification_informative_features(self):
        data = make_classification(2000, n_features=6, n_informative=2,
                                   class_sep=3.0, seed=3)
        for j in range(2):
            by_class = abs(
                data.X[data.y == 1, j].mean() - data.X[data.y == 0, j].mean()
            )
            assert by_class >= 0.0  # informative can be split across dims
        # noise features have no class signal
        for j in range(2, 6):
            gap = abs(
                data.X[data.y == 1, j].mean() - data.X[data.y == 0, j].mean()
            )
            assert gap < 0.2

    def test_classification_validation(self):
        with pytest.raises(ValueError):
            make_classification(10, n_features=2, n_informative=5)

    def test_regression_returns_true_coefficients(self):
        data, coef = make_regression(500, n_features=6, noise=0.01, seed=4)
        assert np.all(coef[3:] == 0.0)
        from repro.models import LinearRegression

        fitted = LinearRegression().fit(data.X, data.y)
        assert np.allclose(fitted.coef_, coef, atol=0.05)

    def test_correlated_gaussian_correlation(self):
        X = make_correlated_gaussian(5000, n_features=3, rho=0.7, seed=5)
        empirical = np.corrcoef(X.T)
        off_diag = empirical[np.triu_indices(3, 1)]
        assert np.allclose(off_diag, 0.7, atol=0.05)
        with pytest.raises(ValueError):
            make_correlated_gaussian(10, n_features=3, rho=-0.9)

    def test_xor_no_marginal_signal(self):
        data = make_xor(4000, noise=0.0, seed=6)
        for j in range(2):
            gap = abs(
                data.X[data.y == 1, j].mean() - data.X[data.y == 0, j].mean()
            )
            assert gap < 0.1

    def test_flip_labels_ground_truth(self):
        data = make_classification(200, seed=7)
        noisy, flipped = flip_labels(data, fraction=0.2, seed=8)
        assert flipped.shape[0] == 40
        changed = np.where(noisy.y != data.y)[0]
        assert set(changed) == set(flipped)
        with pytest.raises(ValueError):
            flip_labels(data, fraction=1.5)

    def test_baskets_patterns_are_frequent(self):
        transactions, patterns = make_baskets(500, pattern_prob=0.4, seed=9)
        for pattern in patterns:
            support = np.mean([pattern <= t for t in transactions])
            assert support > 0.2

    def test_grid_images_discriminative(self):
        X, y, relevance = make_grid_images(300, size=8, seed=10)
        assert X.shape == (300, 64)
        assert relevance.shape == (2, 64)
        # class-1 images are brighter in the top-left quadrant
        class1_mean = X[y == 1][:, relevance[1]].mean()
        class0_mean = X[y == 0][:, relevance[1]].mean()
        assert class1_mean > class0_mean + 0.1
