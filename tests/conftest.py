"""Shared fixtures: small datasets and pre-trained models.

Everything is session-scoped and deterministic so the suite stays fast;
tests must not mutate fixture objects (copy first).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    make_classification,
    make_income_dataset,
    make_loan_dataset,
    make_loan_scm,
)
from repro.models import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    LogisticRegression,
)
from repro.models.model_selection import train_test_split


@pytest.fixture(scope="session")
def loan_data():
    return make_loan_dataset(500, seed=11)


@pytest.fixture(scope="session")
def loan_scm():
    return make_loan_scm()


@pytest.fixture(scope="session")
def income_data():
    return make_income_dataset(400, seed=7)


@pytest.fixture(scope="session")
def small_classification():
    return make_classification(300, n_features=6, n_informative=3, seed=5)


@pytest.fixture(scope="session")
def loan_split(loan_data):
    return train_test_split(loan_data.X, loan_data.y, test_size=0.3, seed=3)


@pytest.fixture(scope="session")
def loan_logistic(loan_split):
    X_train, __, y_train, __ = loan_split
    return LogisticRegression(alpha=1.0).fit(X_train, y_train)


@pytest.fixture(scope="session")
def loan_gbm(loan_split):
    X_train, __, y_train, __ = loan_split
    return GradientBoostingClassifier(
        n_estimators=25, max_depth=3, seed=0
    ).fit(X_train, y_train)


@pytest.fixture(scope="session")
def small_tree(small_classification):
    data = small_classification
    return DecisionTreeClassifier(max_depth=4, seed=0).fit(data.X, data.y)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
