"""Tests for serialization, rendering and the CLI."""

import numpy as np
import pytest

from repro.core.explanation import (
    CounterfactualExplanation,
    DataAttribution,
    FeatureAttribution,
    Predicate,
    RuleExplanation,
)
from repro.datasets import make_classification
from repro.io import dump_explanation, dump_model, load_explanation, load_model
from repro.render import render


@pytest.fixture(scope="module")
def data():
    return make_classification(200, n_features=4, seed=55)


class TestExplanationRoundTrips:
    def test_feature_attribution(self):
        original = FeatureAttribution(
            values=np.array([1.5, -0.5]),
            feature_names=["a", "b"],
            base_value=0.25,
            prediction=1.25,
            method="test",
            meta={"budget": 10, "std": np.array([0.1, 0.2])},
        )
        restored = load_explanation(dump_explanation(original))
        assert np.allclose(restored.values, original.values)
        assert restored.feature_names == original.feature_names
        assert restored.additivity_gap() == pytest.approx(
            original.additivity_gap()
        )
        assert np.allclose(restored.meta["std"], original.meta["std"])

    def test_rule(self):
        original = RuleExplanation(
            predicates=[Predicate(0, ">", 1.0, "age"),
                        Predicate(2, "==", 3.0, "job")],
            outcome=1.0, precision=0.93, coverage=0.2, method="anchors",
        )
        restored = load_explanation(dump_explanation(original))
        X = np.array([[2.0, 0.0, 3.0], [0.5, 0.0, 3.0]])
        assert restored.holds(X).tolist() == original.holds(X).tolist()
        assert restored.precision == original.precision

    def test_counterfactual(self):
        original = CounterfactualExplanation(
            factual=np.array([1.0, 2.0]),
            counterfactuals=np.array([[1.0, 5.0]]),
            factual_outcome=0.2, target_outcome=1.0,
            feature_names=["a", "b"], method="geco",
        )
        restored = load_explanation(dump_explanation(original))
        assert restored.changes(0) == original.changes(0)

    def test_data_attribution(self):
        original = DataAttribution(np.array([0.5, -1.0, 0.2]), method="loo")
        restored = load_explanation(dump_explanation(original))
        assert restored.ranking().tolist() == original.ranking().tolist()

    def test_unknown_payload_rejected(self):
        with pytest.raises(ValueError):
            load_explanation('{"type": "hologram"}')
        with pytest.raises(TypeError):
            dump_explanation(object())


class TestModelRoundTrips:
    @pytest.mark.parametrize("factory", [
        lambda: __import__("repro.models", fromlist=["LogisticRegression"]
                           ).LogisticRegression(alpha=0.7),
        lambda: __import__("repro.models", fromlist=["RidgeRegression"]
                           ).RidgeRegression(alpha=0.3),
    ])
    def test_linear_models(self, factory, data):
        model = factory()
        y = data.y if hasattr(model, "predict_proba") else data.X[:, 0]
        model.fit(data.X, y)
        restored = load_model(dump_model(model))
        assert np.allclose(restored.predict(data.X), model.predict(data.X))

    def test_tree_classifier(self, data):
        from repro.models import DecisionTreeClassifier

        model = DecisionTreeClassifier(max_depth=4, seed=0).fit(data.X, data.y)
        restored = load_model(dump_model(model))
        assert np.allclose(
            restored.predict_proba(data.X), model.predict_proba(data.X)
        )

    def test_forest(self, data):
        from repro.models import RandomForestClassifier

        model = RandomForestClassifier(
            n_estimators=5, max_depth=3, seed=0
        ).fit(data.X, data.y)
        restored = load_model(dump_model(model))
        assert np.allclose(
            restored.predict_proba(data.X), model.predict_proba(data.X)
        )

    def test_gbm_and_treeshap_on_restored(self, data):
        from repro.models import GradientBoostingClassifier
        from repro.shapley import TreeShapExplainer

        model = GradientBoostingClassifier(
            n_estimators=6, max_depth=2, seed=0
        ).fit(data.X, data.y)
        restored = load_model(dump_model(model))
        assert np.allclose(
            restored.decision_function(data.X),
            model.decision_function(data.X),
        )
        # restored models stay explainable
        a = TreeShapExplainer(model).explain(data.X[0]).values
        b = TreeShapExplainer(restored).explain(data.X[0]).values
        assert np.allclose(a, b)

    def test_unsupported_model(self):
        with pytest.raises(TypeError):
            dump_model(object())


class TestRender:
    def test_attribution_bars(self):
        att = FeatureAttribution(
            np.array([2.0, -1.0, 0.1]), ["big", "neg", "tiny"],
            prediction=1.1, method="shap",
        )
        text = render(att, top=3)
        assert "[shap]" in text and "big" in text
        assert "█" in text
        # the most important feature comes first
        assert text.index("big") < text.index("neg") < text.index("tiny")

    def test_rule_card(self):
        rule = RuleExplanation(
            [Predicate(0, ">", 5.0, "income")], 1.0, 0.95, 0.3, method="anchor"
        )
        text = render(rule)
        assert "IF" in text and "income > 5" in text and "0.950" in text

    def test_counterfactual_table(self):
        cf = CounterfactualExplanation(
            np.array([1.0, 2.0]), np.array([[1.0, 4.0]]),
            0.2, 1.0, ["a", "b"], method="dice",
        )
        text = render(cf)
        assert "b: 2 -> 4" in text

    def test_data_attribution_listing(self):
        att = DataAttribution(np.array([0.1, -2.0, 3.0]))
        text = render(att, top=1)
        assert "point 1" in text and "point 2" in text

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            render(42)


class TestCli:
    def test_info_runs(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "subpackages" in out

    def test_experiments_lists_benchmarks(self, capsys):
        from repro.cli import main

        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E07" in out

    def test_examples_lists_scripts(self, capsys):
        from repro.cli import main

        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "quickstart.py" in out

    def test_no_command_prints_help(self, capsys):
        from repro.cli import main

        assert main([]) == 2
