"""The persist protocol: round-trips, the codec, the artifact registry.

The contracts under test, in the order they stack:

* **Equivalent copy, bitwise** — for every registered model family,
  ``from_envelope(to_envelope(m))`` predicts *bit-identically* to the
  original on the same inputs. Ephemeral state (cache counters, locks)
  is dropped and rebuilt, never serialized.
* **Canonical codec** — float64 arrays survive byte-for-byte (b64 of
  little-endian bytes), foreign byte orders decode to native writable
  arrays, object dtypes are a typed refusal.
* **Typed rejection** — unknown ``_type`` and unsupported ``_version``
  raise their own exception classes; malformed payloads raise
  ``PayloadError``, never ``KeyError``.
* **Registry** — content-addressed, immutable versions: idempotent
  same-digest re-push, conflict on different content, atomic manifest
  under concurrent pushers, 404-style errors that list what exists.
* **Snapshots** — coalition caches persist and pre-warm, guarded by the
  scope token so a foreign snapshot is a metered no-op.
* **Serve integration** — a registered artifact feeds the service:
  bumping ``/models/<name>/version`` over HTTP swaps in the registry's
  model and invalidates the warm cache; stale pins get a typed 404
  listing the registry's versions.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.coalition_engine import CoalitionEngine, CoalitionValueCache
from repro.core.explanation import (
    CounterfactualExplanation,
    DataAttribution,
    FeatureAttribution,
    Predicate,
    RuleExplanation,
)
from repro.games.adapters import FeatureMaskingGame
from repro.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    ExplainableBoostingClassifier,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    LinearRegression,
    LogisticRegression,
    RandomForestClassifier,
    RidgeRegression,
)
from repro.obs import metrics
from repro.persist import (
    ArtifactConflictError,
    ArtifactNotFoundError,
    ArtifactRegistry,
    PayloadError,
    UnknownTypeError,
    UnsupportedVersionError,
    dumps,
    from_envelope,
    loads,
    to_envelope,
)
from repro.persist.snapshot import (
    load_cache_snapshot,
    prewarm_cache,
    save_cache_snapshot,
    scope_token,
    snapshot_cache,
)
from repro.robust.guard import GuardConfig


@pytest.fixture(autouse=True)
def _clean_metrics():
    metrics.reset_metrics()
    yield
    metrics.reset_metrics()


def _regression_data(seed=0, n=60, d=4):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = X @ np.arange(1.0, d + 1.0) + 0.1 * rng.normal(size=n)
    return X, y


def _classification_data(seed=0, n=80, d=4):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + X[:, 1] - 0.5 * X[:, 2] > 0).astype(int)
    return X, y


def _roundtrip(obj):
    """Text-level round-trip: the path the registry and goldens use."""
    return loads(dumps(to_envelope(obj)))


# -- equivalent copy, bitwise, per model family --------------------------------

REGRESSORS = {
    "ridge": lambda: RidgeRegression(alpha=0.5),
    "linear": lambda: LinearRegression(),
    "tree_reg": lambda: DecisionTreeRegressor(max_depth=4, seed=0),
    "gbm_reg": lambda: GradientBoostingRegressor(
        n_estimators=8, max_depth=2, seed=0
    ),
}
CLASSIFIERS = {
    "logistic": lambda: LogisticRegression(alpha=1.0),
    "tree_clf": lambda: DecisionTreeClassifier(max_depth=4, seed=0),
    "forest": lambda: RandomForestClassifier(
        n_estimators=6, max_depth=3, seed=0
    ),
    "gbm_clf": lambda: GradientBoostingClassifier(
        n_estimators=8, max_depth=2, seed=0
    ),
    "ebm": lambda: ExplainableBoostingClassifier(n_rounds=12, seed=0),
}


@pytest.mark.parametrize("name", sorted(REGRESSORS))
def test_regressor_family_roundtrips_bitwise(name):
    X, y = _regression_data()
    model = REGRESSORS[name]().fit(X, y)
    copy = _roundtrip(model)
    assert type(copy) is type(model)
    assert np.array_equal(model.predict(X), copy.predict(X))
    # Canonical text is stable: re-serializing the copy reproduces the
    # exact byte stream (what the registry's content addressing hashes).
    assert dumps(to_envelope(model)) == dumps(to_envelope(copy))


@pytest.mark.parametrize("name", sorted(CLASSIFIERS))
def test_classifier_family_roundtrips_bitwise(name):
    X, y = _classification_data()
    model = CLASSIFIERS[name]().fit(X, y)
    copy = _roundtrip(model)
    assert type(copy) is type(model)
    assert np.array_equal(model.predict(X), copy.predict(X))
    assert np.array_equal(model.predict_proba(X), copy.predict_proba(X))
    assert dumps(to_envelope(model)) == dumps(to_envelope(copy))


def test_unfitted_model_roundtrips():
    copy = _roundtrip(RidgeRegression(alpha=2.0))
    assert copy.alpha == 2.0
    X, y = _regression_data()
    copy.fit(X, y)  # still usable: fit after the round trip


# -- explanation objects -------------------------------------------------------

def test_explanation_objects_roundtrip_bitwise():
    attr = FeatureAttribution(
        values=np.array([0.5, -0.25, 1e-17]),
        feature_names=["a", "b", "c"],
        base_value=0.125,
        prediction=0.875,
        method="test",
        meta={"std_err": np.array([0.1, 0.2, 0.3]), "n": 7},
    )
    copy = _roundtrip(attr)
    assert isinstance(copy, FeatureAttribution)
    assert np.array_equal(attr.values, copy.values)
    assert np.array_equal(attr.meta["std_err"], copy.meta["std_err"])
    assert (copy.base_value, copy.prediction) == (0.125, 0.875)

    rule = RuleExplanation(
        predicates=[Predicate("f0", "<=", 0.5), Predicate("f1", ">", -1.0)],
        outcome=1.0,
        precision=0.9,
        coverage=0.25,
        method="anchors",
    )
    copy = _roundtrip(rule)
    assert isinstance(copy, RuleExplanation)
    assert [p.feature for p in copy.predicates] == ["f0", "f1"]
    assert copy.precision == 0.9

    cf = CounterfactualExplanation(
        factual=np.array([1.0, 2.0]),
        counterfactuals=np.array([[1.5, 2.0]]),
        factual_outcome=0.0,
        target_outcome=1.0,
        feature_names=["a", "b"],
        method="growing_spheres",
    )
    copy = _roundtrip(cf)
    assert np.array_equal(cf.counterfactuals, copy.counterfactuals)
    assert copy.feature_names == ["a", "b"]

    dv = DataAttribution(
        values=np.array([0.25, -0.5]),
        method="tmc",
        meta={"full_score": 0.75},
    )
    copy = _roundtrip(dv)
    assert np.array_equal(dv.values, copy.values)
    assert copy.meta["full_score"] == 0.75


def test_guard_config_roundtrips_without_ephemeral_state():
    config = GuardConfig(retries=3, backoff_s=0.5, deadline_s=12.0,
                         query_budget=1000)
    copy = _roundtrip(config)
    assert isinstance(copy, GuardConfig)
    assert (copy.retries, copy.backoff_s) == (3, 0.5)
    assert (copy.deadline_s, copy.query_budget) == (12.0, 1000)


# -- coalition caches and engines ---------------------------------------------

def _warm_engine_cache():
    X, _ = _regression_data(n=16, d=3)
    engine = CoalitionEngine(X[:8])
    model_fn = lambda Z: Z.sum(axis=1)
    v = engine.value_function(model_fn, X[10])
    masks = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 1]], dtype=float)
    values = v(masks)
    return engine, v.cache, masks, values, model_fn, X


def test_coalition_cache_roundtrips_and_drops_counters():
    _, cache, masks, values, __, ___ = _warm_engine_cache()
    assert cache.hits + cache.misses > 0
    copy = _roundtrip(cache)
    assert isinstance(copy, CoalitionValueCache)
    assert copy.values == cache.values  # bitwise: floats compare exactly
    assert (copy.hits, copy.misses) == (0, 0)  # ephemeral, rebuilt


def test_coalition_engine_roundtrip_is_value_equivalent():
    engine, _, masks, values, model_fn, X = _warm_engine_cache()
    copy = _roundtrip(engine)
    assert isinstance(copy, CoalitionEngine)
    assert np.array_equal(copy.background, engine.background)
    v2 = copy.value_function(model_fn, X[10])
    assert np.array_equal(v2(masks), values)


def test_feature_masking_game_roundtrips_bitwise():
    X, y = _classification_data(n=40, d=3)
    model = LogisticRegression(alpha=1.0).fit(X, y)
    from repro.core.base import as_predict_fn

    game = FeatureMaskingGame(as_predict_fn(model), X[5], background=X[:10])
    masks = np.array([[1, 0, 0], [1, 1, 0], [1, 1, 1]], dtype=float)
    want = game.value(masks)
    copy = _roundtrip(game)
    assert isinstance(copy, FeatureMaskingGame)
    assert np.array_equal(copy.value(masks), want)


# -- codec: dtypes, endianness, refusals --------------------------------------

def test_float64_arrays_roundtrip_bitwise_including_specials():
    arr = np.array([0.1 + 0.2, -0.0, np.pi, 1e-310, np.inf, -np.inf, np.nan])
    back = loads(dumps(arr))
    assert back.dtype == arr.dtype
    assert np.array_equal(arr.tobytes(), back.tobytes())  # bit-level


def test_foreign_endianness_decodes_to_native_writable():
    arr = np.arange(6.0).reshape(2, 3).astype(">f8")
    back = loads(dumps(arr))
    assert back.dtype.byteorder in ("=", "<", ">")[:2] or (
        back.dtype.isnative
    )
    assert back.flags.writeable
    assert np.array_equal(back, arr.astype(float))


@pytest.mark.parametrize("dtype", ["int64", "int32", "bool", "float32"])
def test_non_float64_dtypes_roundtrip(dtype):
    arr = np.array([[1, 0], [0, 1]]).astype(dtype)
    back = loads(dumps(arr))
    assert back.dtype == np.dtype(dtype)
    assert np.array_equal(back, arr)


def test_object_dtype_is_a_typed_refusal():
    with pytest.raises(PayloadError):
        dumps(np.array([object()]))


# -- typed rejection of foreign or future envelopes ---------------------------

def test_unknown_type_tag_raises_its_own_error():
    with pytest.raises(UnknownTypeError):
        from_envelope({"_type": "models.NotAThing", "_version": 1,
                       "state": {}})


def test_future_version_raises_unsupported_version():
    envelope = to_envelope(RidgeRegression(alpha=1.0))
    envelope["_version"] = 99
    with pytest.raises(UnsupportedVersionError):
        from_envelope(envelope)


def test_malformed_envelope_is_payload_error_not_keyerror():
    with pytest.raises(PayloadError):
        from_envelope({"_type": "models.RidgeRegression"})  # no state
    with pytest.raises(PayloadError):
        from_envelope("not an envelope at all")


# -- the artifact registry ----------------------------------------------------

def test_registry_push_get_and_latest(tmp_path):
    store = ArtifactRegistry(str(tmp_path / "reg"))
    X, y = _regression_data()
    m1 = RidgeRegression(alpha=0.1).fit(X, y)
    m2 = RidgeRegression(alpha=9.0).fit(X, y)
    record = store.push("ridge", m1, version="v1")
    assert record["version"] == "v1"
    store.push("ridge", m2, version="v2", note="retrained")
    assert store.names() == ["ridge"]
    assert store.versions("ridge") == ["v1", "v2"]
    assert store.latest_version("ridge") == "v2"
    got = store.get("ridge", "v1")
    assert np.array_equal(got.predict(X), m1.predict(X))
    latest = store.get("ridge")
    assert np.array_equal(latest.predict(X), m2.predict(X))


def test_registry_repush_idempotent_but_conflicts_on_new_content(tmp_path):
    store = ArtifactRegistry(str(tmp_path / "reg"))
    X, y = _regression_data()
    m1 = RidgeRegression(alpha=0.1).fit(X, y)
    first = store.push("m", m1, version="v1")
    again = store.push("m", m1, version="v1")  # same digest: no-op
    assert again["digest"] == first["digest"]
    m2 = RidgeRegression(alpha=5.0).fit(X, y)
    with pytest.raises(ArtifactConflictError):
        store.push("m", m2, version="v1")


def test_registry_missing_version_lists_available(tmp_path):
    store = ArtifactRegistry(str(tmp_path / "reg"))
    store.push("m", RidgeRegression(alpha=1.0), version="v1")
    with pytest.raises(ArtifactNotFoundError) as err:
        store.get("m", "v9")
    assert err.value.available == ["v1"]
    with pytest.raises(ArtifactNotFoundError):
        store.get("nope")


def test_registry_concurrent_pushes_keep_manifest_atomic(tmp_path):
    store = ArtifactRegistry(str(tmp_path / "reg"))
    n_threads, per_thread = 8, 4
    errors: list[BaseException] = []

    def pusher(k: int) -> None:
        try:
            for i in range(per_thread):
                store.push(f"model-{k}", {"weights": [float(k), float(i)]},
                           version=f"v{i}")
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [threading.Thread(target=pusher, args=(k,))
               for k in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Every push landed and the manifest parses as one consistent index.
    assert store.names() == sorted(f"model-{k}" for k in range(n_threads))
    for k in range(n_threads):
        assert store.versions(f"model-{k}") == [
            f"v{i}" for i in range(per_thread)
        ]
        got = store.get(f"model-{k}", "v2")
        assert got == {"weights": [float(k), 2.0]}


# -- cache snapshots ----------------------------------------------------------

def test_cache_snapshot_roundtrip_and_prewarm(tmp_path):
    _, cache, masks, values, __, X = _warm_engine_cache()
    scope = scope_token(X[10], X[:8])
    path = str(tmp_path / "snap.json")
    save_cache_snapshot(path, cache, scope)
    payload = load_cache_snapshot(path)
    assert payload["scope"] == scope
    fresh = CoalitionValueCache()
    added = prewarm_cache(fresh, payload, scope)
    assert added == len(cache.values) > 0
    assert fresh.values == cache.values
    assert metrics.counter("persist.cache.prewarmed").value == added


def test_cache_snapshot_scope_mismatch_is_a_metered_noop():
    _, cache, *_rest, X = _warm_engine_cache()
    payload = snapshot_cache(cache, scope="a" * 32)
    fresh = CoalitionValueCache()
    assert prewarm_cache(fresh, payload, scope="b" * 32) == 0
    assert fresh.values == {}
    assert metrics.counter(
        "persist.cache.snapshot_scope_skips"
    ).value == 1


def test_engine_prewarms_from_env_snapshot(tmp_path, monkeypatch):
    engine, cache, masks, values, model_fn, X = _warm_engine_cache()
    scope = scope_token(X[10], engine.background)
    path = str(tmp_path / "snap.json")
    save_cache_snapshot(path, cache, scope)
    monkeypatch.setenv("REPRO_CACHE_SNAPSHOT", path)
    v = engine.value_function(model_fn, X[10])
    assert v.cache.values == cache.values  # warm before any evaluation
    assert np.array_equal(v(masks), values)
    # A different instance does not inherit the snapshot (scope guard).
    v_other = engine.value_function(model_fn, X[11])
    assert v_other.cache.values == {}


# -- serve: the registry feeds the service ------------------------------------

def _post(url: str, payload: dict, timeout: float = 15.0):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def test_serve_version_bump_loads_registry_artifact(tmp_path):
    from repro.serve import ExplainServer, ModelNotFoundError, ServeConfig

    X, y = _classification_data()
    m1 = LogisticRegression(alpha=0.5).fit(X, y)
    m2 = LogisticRegression(alpha=50.0).fit(X, y)
    store = ArtifactRegistry(str(tmp_path / "reg"))
    store.push("clf", m1, version="v1")
    store.push("clf", m2, version="v2")

    server = ExplainServer(
        ServeConfig(max_inflight=2, cache_size=16), artifacts=store
    )
    endpoint = server.add_endpoint_from_registry("clf", X[:10], version="v1")
    assert endpoint.version == "v1"
    assert endpoint.model.alpha == 0.5

    body = {"model": "clf", "instance": X[0].tolist(), "tier": "sampling",
            "params": {"n_permutations": 8, "seed": 0}}
    status, r1, __ = server.handle_explain(body)
    assert (status, r1["meta"]["model_version"]) == (200, "v1")
    status, r2, __ = server.handle_explain(body)
    assert r2["meta"]["cache"] == "hit"

    # a pin on a version the endpoint is not serving: typed 404 listing
    # the registry's versions
    status, err, __ = server.handle_explain(
        dict(body, model_version="v9")
    )
    assert status == 404
    assert err["error"]["type"] == "ModelNotFoundError"
    assert err["error"]["available_versions"] == ["v1", "v2"]

    host, port = server.start()
    try:
        base = f"http://{host}:{port}"
        status, bump = _post(f"{base}/models/clf/version", {"version": "v2"})
        assert (status, bump["version"]) == (200, "v2")
        # the *registry's* v2 model is now live...
        assert server.registry.get("clf").model.alpha == 50.0
        # ...and the warm cache was invalidated: recompute, new numbers
        status, r3, __ = server.handle_explain(body)
        assert (status, r3["meta"]["model_version"]) == (200, "v2")
        assert r3["meta"]["cache"] == "miss"
        assert r3["attribution"]["values"] != r1["attribution"]["values"]
        # bumping to a version the registry lacks: 404 envelope with
        # the available versions, endpoint untouched
        status, err = _post(f"{base}/models/clf/version", {"version": "v7"})
        assert status == 404
        assert err["error"]["available_versions"] == ["v1", "v2"]
        assert server.registry.get("clf").version == "v2"
    finally:
        server.stop()

    with pytest.raises(ModelNotFoundError):
        server.add_endpoint_from_registry("ghost", X[:10])


def test_serve_without_registry_keeps_label_bump(tmp_path, monkeypatch):
    from repro.serve import ExplainServer, ServeConfig

    monkeypatch.chdir(tmp_path)  # no .repro_registry here
    monkeypatch.delenv("REPRO_REGISTRY_DIR", raising=False)
    X, y = _classification_data()
    server = ExplainServer(ServeConfig(max_inflight=2))
    server.add_endpoint("m", LogisticRegression(alpha=1.0).fit(X, y), X[:10])
    assert server.set_model_version("m", "v2") == "v2"
    assert server.registry.get("m").version == "v2"
