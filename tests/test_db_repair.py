"""Tests for Shapley-based data-repair explanations."""

import numpy as np
import pytest

from repro.db import (
    FunctionalDependency,
    Relation,
    greedy_repair,
    repair_responsibility,
)


@pytest.fixture()
def dirty_addresses():
    # zip → city should hold; tuple 2 contradicts tuples 0-1, and tuples
    # 5-6 contradict each other symmetrically.
    return Relation(
        ["zip", "city", "street"],
        [
            ("10001", "nyc", "a"),
            ("10001", "nyc", "b"),
            ("10001", "boston", "c"),
            ("94105", "sf", "d"),
            ("94105", "sf", "e"),
            ("60601", "chicago", "f"),
            ("60601", "evanston", "g"),
        ],
        name="addr",
    )


FD = FunctionalDependency(("zip",), ("city",))


class TestViolationCounting:
    def test_counts_violating_pairs(self, dirty_addresses):
        # 10001 group: pairs (0,2) and (1,2) violate → 2; 60601: 1.
        assert FD.violations(dirty_addresses) == 3

    def test_clean_relation_has_zero(self):
        clean = Relation(["zip", "city"], [("1", "a"), ("1", "a"), ("2", "b")])
        assert FD.violations(clean) == 0
        assert FD.violating_tuples(clean) == set()

    def test_violating_tuples(self, dirty_addresses):
        assert FD.violating_tuples(dirty_addresses) == {0, 1, 2, 5, 6}

    def test_multi_attribute_fd(self):
        fd = FunctionalDependency(("a", "b"), ("c",))
        r = Relation(["a", "b", "c"],
                     [(1, 1, "x"), (1, 1, "y"), (1, 2, "x")])
        assert fd.violations(r) == 1


class TestResponsibility:
    def test_efficiency_identity(self, dirty_addresses):
        responsibility = repair_responsibility(dirty_addresses, [FD])
        assert sum(responsibility.values()) == pytest.approx(
            FD.violations(dirty_addresses)
        )

    def test_outlier_tuple_is_most_responsible(self, dirty_addresses):
        responsibility = repair_responsibility(dirty_addresses, [FD])
        # tuple 2 (the lone 'boston') participates in two violations; it
        # must outrank tuples 0/1 which share one violation each side.
        assert responsibility[2] > responsibility[0]
        assert responsibility[2] > responsibility[1]
        # symmetric conflict: equal responsibility
        assert responsibility[5] == pytest.approx(responsibility[6])

    def test_clean_tuples_excluded(self, dirty_addresses):
        responsibility = repair_responsibility(dirty_addresses, [FD])
        assert 3 not in responsibility and 4 not in responsibility

    def test_clean_database_returns_empty(self):
        clean = Relation(["zip", "city"], [("1", "a")])
        assert repair_responsibility(clean, [FD]) == {}


class TestGreedyRepair:
    def test_reaches_consistency_minimally(self, dirty_addresses):
        repaired, deleted = greedy_repair(dirty_addresses, [FD])
        assert FD.violations(repaired) == 0
        # Optimal repair deletes tuple 2 and one of {5, 6}: exactly 2.
        assert len(deleted) == 2
        assert 2 in deleted
        assert deleted[0] == 2  # most responsible goes first

    def test_bad_ranking_deletes_more(self, dirty_addresses):
        # Deleting the consistent majority first is wasteful.
        bad_order = [0, 1, 2, 5, 6]
        __, deleted_bad = greedy_repair(
            dirty_addresses, [FD], ranking=bad_order
        )
        __, deleted_good = greedy_repair(dirty_addresses, [FD])
        assert len(deleted_bad) > len(deleted_good)

    def test_multiple_fds(self, dirty_addresses):
        fd2 = FunctionalDependency(("city",), ("zip",))
        repaired, __ = greedy_repair(dirty_addresses, [FD, fd2])
        assert FD.violations(repaired) == 0
        assert fd2.violations(repaired) == 0
