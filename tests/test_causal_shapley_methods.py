"""Tests for causal Shapley, asymmetric Shapley and Shapley flow."""

import numpy as np
import pytest

from repro.causal import (
    AsymmetricShapleyExplainer,
    CausalShapleyExplainer,
    ShapleyFlowExplainer,
    StructuralCausalModel,
    interventional_value_function,
    linear_mechanism,
    sample_topological_permutation,
)


@pytest.fixture(scope="module")
def chain():
    """a → b, model f = a + 2b. All-linear for analyzable credit."""
    scm = StructuralCausalModel()
    scm.add_variable("a", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    scm.add_variable("b", ["a"], linear_mechanism({"a": 1.0}),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    return scm


def model_fn(X):
    return X[:, 0] + 2.0 * X[:, 1]


class TestInterventionalValueFunction:
    def test_full_coalition_is_model_output(self, chain):
        x = np.array([1.0, 1.5])
        v = interventional_value_function(chain, model_fn, ["a", "b"], x,
                                          n_samples=2000, seed=0)
        full = v(np.array([[True, True]]))[0]
        assert full == pytest.approx(model_fn(x[None, :])[0], abs=1e-9)

    def test_do_a_shifts_b(self, chain):
        x = np.array([1.0, 0.0])
        v = interventional_value_function(chain, model_fn, ["a", "b"], x,
                                          n_samples=4000, seed=0)
        only_a = v(np.array([[True, False]]))[0]
        # do(a=1): E[f] = 1 + 2·E[b|do(a=1)] = 1 + 2·1 = 3.
        assert only_a == pytest.approx(3.0, abs=0.1)

    def test_do_b_does_not_shift_a(self, chain):
        x = np.array([0.0, 5.0])
        v = interventional_value_function(chain, model_fn, ["a", "b"], x,
                                          n_samples=4000, seed=0)
        only_b = v(np.array([[False, True]]))[0]
        # do(b=5): E[f] = E[a] + 10 = 10.
        assert only_b == pytest.approx(10.0, abs=0.1)


class TestCausalShapley:
    def test_indirect_effect_attributed_to_cause(self, chain):
        x = np.array([1.0, 1.0])
        explainer = CausalShapleyExplainer(
            model_fn, chain, ["a", "b"], n_permutations=30,
            n_samples=500, seed=0,
        )
        att = explainer.explain(x)
        # a's indirect effect (through b) must be clearly positive; b has
        # no descendants so its indirect part is ~0.
        assert att.meta["indirect"][0] > 0.3
        assert abs(att.meta["indirect"][1]) < 0.15
        # direct + indirect = total by construction
        assert np.allclose(
            att.meta["direct"] + att.meta["indirect"], att.values
        )

    def test_approximate_efficiency(self, chain):
        x = np.array([0.5, -0.5])
        att = CausalShapleyExplainer(
            model_fn, chain, ["a", "b"], n_permutations=40,
            n_samples=800, seed=1,
        ).explain(x)
        assert att.additivity_gap() < 0.2  # Monte-Carlo tolerance


class TestAsymmetricShapley:
    def test_permutations_respect_dag(self, chain, rng):
        for __ in range(20):
            perm = sample_topological_permutation(chain, ["a", "b"], rng)
            assert perm.tolist() == [0, 1]  # a must precede b

    def test_root_cause_absorbs_credit(self, chain):
        x = np.array([1.0, 1.0])
        asv = AsymmetricShapleyExplainer(
            model_fn, chain, ["a", "b"], n_permutations=10,
            n_samples=800, seed=0,
        ).explain(x)
        symmetric = CausalShapleyExplainer(
            model_fn, chain, ["a", "b"], n_permutations=30,
            n_samples=500, seed=0,
        ).explain(x)
        # ASV gives a strictly more credit than symmetric causal Shapley.
        assert asv.values[0] > symmetric.values[0]

    def test_cycle_detection(self, rng):
        # A "DAG" restricted to features {b} with an edge from outside is
        # fine, but mutually-parental features are impossible by
        # construction (add_variable forbids cycles), so permutation
        # sampling always terminates; check a two-root graph too.
        scm = StructuralCausalModel()
        scm.add_variable("x", [], lambda p, u: u)
        scm.add_variable("y", [], lambda p, u: u)
        perm = sample_topological_permutation(scm, ["x", "y"], rng)
        assert sorted(perm.tolist()) == [0, 1]


class TestShapleyFlow:
    def test_conservation_both_cuts(self, chain):
        flow = ShapleyFlowExplainer(model_fn, chain, ["a", "b"],
                                    n_orderings=40, seed=0)
        result = flow.explain({"a": 1.0, "b": 1.2}, {"a": 0.0, "b": 0.0})
        assert result.conservation_gap() < 1e-9

    def test_edge_credit_on_chain(self, chain):
        flow = ShapleyFlowExplainer(model_fn, chain, ["a", "b"],
                                    n_orderings=60, seed=0)
        result = flow.explain({"a": 1.0, "b": 1.0}, {"a": 0.0, "b": 0.0})
        # a's direct edge to the output carries exactly 1 (its coefficient
        # times its delta); the a→b edge carries 2·Δa = 2.
        assert result.edge("a", "__output__") == pytest.approx(1.0, abs=1e-9)
        assert result.edge("a", "b") == pytest.approx(2.0, abs=1e-9)
        # root view: a = direct + downstream = 3; noise of b carries 0
        # (b's noise is identical in fg and bg here: both satisfy b = a).
        assert result.root_attributions()["a"] == pytest.approx(3.0, abs=1e-9)

    def test_missing_feature_rejected(self, chain):
        flow = ShapleyFlowExplainer(model_fn, chain, ["a", "b"])
        with pytest.raises(ValueError):
            flow.explain({"a": 1.0}, {"a": 0.0, "b": 0.0})
