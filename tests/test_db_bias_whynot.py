"""Tests for OLAP bias detection (Simpson's paradox) and why-not tracing."""

import numpy as np
import pytest

from repro.db import (
    QueryStep,
    Relation,
    detect_simpsons_paradox,
    group_difference,
    stratified_difference,
    why_not,
)


def berkeley_style_relation(seed: int = 0) -> Relation:
    """Classic admissions paradox: women apply to the harder department
    but have higher per-department admission rates."""
    rng = np.random.default_rng(seed)
    rows = []
    for dept, base_rate, men, women in [
        ("easy", 0.8, 400, 100), ("hard", 0.3, 100, 400),
    ]:
        for gender, n in (("m", men), ("f", women)):
            rate = base_rate + (0.05 if gender == "f" else 0.0)
            admitted = rng.random(n) < rate
            rows += [(gender, dept, int(a)) for a in admitted]
    return Relation(["gender", "dept", "admitted"], rows, name="adm")


class TestBiasDetection:
    def test_naive_contrast_direction(self):
        r = berkeley_style_relation()
        naive = group_difference(r, "gender", "admitted")
        # groups sorted by repr: 'f' < 'm' → contrast is m − f > 0
        assert naive > 0.1

    def test_stratified_reverses(self):
        r = berkeley_style_relation()
        adjusted, per_stratum = stratified_difference(
            r, "gender", "admitted", "dept"
        )
        assert adjusted < 0  # within departments, women do better
        assert set(per_stratum) == {"easy", "hard"}
        assert all(v is not None and v < 0.05 for v in per_stratum.values())

    def test_detector_flags_reversal_first(self):
        r = berkeley_style_relation()
        # add an irrelevant candidate confounder
        rng = np.random.default_rng(1)
        noise = [("x" if rng.random() < 0.5 else "y") for __ in range(len(r))]
        r2 = Relation(
            ["gender", "dept", "admitted", "noise"],
            [row + (z,) for row, z in zip(r.rows, noise)],
            name="adm2",
        )
        reports = detect_simpsons_paradox(
            r2, "gender", "admitted", ["noise", "dept"]
        )
        assert reports[0].confounder == "dept"
        assert reports[0].reversal
        assert not reports[1].reversal
        assert reports[0].shift > reports[1].shift
        assert "REVERSAL" in str(reports[0])

    def test_non_binary_treatment_rejected(self):
        r = Relation(["t", "y"], [(1, 0), (2, 1), (3, 0)])
        with pytest.raises(ValueError):
            group_difference(r, "t", "y")

    def test_stratum_missing_group_excluded(self):
        r = Relation(
            ["t", "y", "s"],
            [("a", 1, "s1"), ("b", 0, "s1"), ("a", 1, "s2")],
        )
        adjusted, per_stratum = stratified_difference(r, "t", "y", "s")
        assert per_stratum["s2"] is None
        assert adjusted == pytest.approx(-1.0)  # only s1 counts; b − a


class TestWhyNot:
    @pytest.fixture()
    def pipeline(self):
        emp = Relation(
            ["name", "dept", "salary"],
            [("ann", "cs", 100), ("bob", "cs", 40), ("cal", "ee", 90)],
            name="emp",
        )
        dept = Relation(["dept", "building"], [("cs", "X")], name="dept")
        steps = [
            QueryStep.select("high_earners", lambda t: t["salary"] > 50),
            QueryStep.join("with_building", dept),
            QueryStep.project("names", ["name"]),
        ]
        return emp, steps

    def test_identifies_picky_operator(self, pipeline):
        emp, steps = pipeline
        results = why_not(emp, steps, lambda t: t["name"] == "bob")
        assert results[0].picky_step == "high_earners"

    def test_join_as_picky_operator(self, pipeline):
        emp, steps = pipeline
        results = why_not(emp, steps, lambda t: t["name"] == "cal")
        assert results[0].picky_step == "with_building"

    def test_surviving_tuple_reported(self, pipeline):
        emp, steps = pipeline
        results = why_not(emp, steps, lambda t: t["name"] == "ann")
        assert results[0].picky_step is None
        assert "survives" in str(results[0])

    def test_multiple_candidates(self, pipeline):
        emp, steps = pipeline
        results = why_not(emp, steps, lambda t: t["dept"] == "cs")
        by_name = {r.candidate[0]: r for r in results}
        assert by_name["ann"].picky_step is None
        assert by_name["bob"].picky_step == "high_earners"

    def test_no_candidate_rejected(self, pipeline):
        emp, steps = pipeline
        with pytest.raises(ValueError):
            why_not(emp, steps, lambda t: t["name"] == "ghost")
