"""Tests for Shapley interaction values."""

import numpy as np
import pytest

from repro.datasets import make_xor
from repro.models import DecisionTreeClassifier
from repro.shapley import (
    InteractionExplainer,
    exact_shapley,
    shapley_interaction_values,
)


def random_game(seed: int, n: int):
    rng = np.random.default_rng(seed)
    table = rng.normal(0, 1, 2 ** n)
    table[0] = 0.0

    def v(masks):
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        return table[masks @ (1 << np.arange(n))]

    return v, table


class TestInteractionMatrix:
    def test_pure_interaction_game(self):
        def v(masks):
            masks = np.atleast_2d(masks)
            return (masks[:, 0] & masks[:, 1]).astype(float)

        M = shapley_interaction_values(v, 2)
        assert M[0, 1] == pytest.approx(0.5)
        assert M[0, 0] == pytest.approx(0.0)
        assert M[1, 1] == pytest.approx(0.0)

    def test_additive_game_has_no_interactions(self):
        weights = np.array([1.0, -2.0, 3.0])

        def v(masks):
            return np.atleast_2d(masks).astype(float) @ weights

        M = shapley_interaction_values(v, 3)
        off_diag = M - np.diag(np.diag(M))
        assert np.allclose(off_diag, 0.0, atol=1e-12)
        assert np.allclose(np.diag(M), weights)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_rows_sum_to_shapley_values(self, seed):
        v, __ = random_game(seed, 4)
        M = shapley_interaction_values(v, 4)
        phi = exact_shapley(v, 4)
        assert np.allclose(M.sum(axis=1), phi, atol=1e-10)

    @pytest.mark.parametrize("seed", [1, 7])
    def test_total_efficiency_and_symmetry(self, seed):
        v, table = random_game(seed, 4)
        M = shapley_interaction_values(v, 4)
        assert M.sum() == pytest.approx(table[-1] - table[0], abs=1e-10)
        assert np.allclose(M, M.T)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            shapley_interaction_values(lambda m: np.zeros(1), 20)


class TestInteractionExplainer:
    def test_xor_interaction_detected(self):
        """The §2.1.2 criticism: additive scores miss XOR; the
        interaction index finds it."""
        data = make_xor(600, noise=0.0, seed=2)
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(data.X, data.y)
        explainer = InteractionExplainer(tree, data.X[:80])
        x = np.array([0.6, 0.6])  # deep inside a quadrant
        att = explainer.explain(x, feature_names=["a", "b"])
        matrix = att.meta["interactions"]
        # the pairwise term dominates both main effects
        assert abs(matrix[0, 1]) > abs(matrix[0, 0])
        assert abs(matrix[0, 1]) > abs(matrix[1, 1])
        top = explainer.strongest_interactions(x, k=1,
                                               feature_names=["a", "b"])
        assert {top[0][0], top[0][1]} == {"a", "b"}

    def test_matrix_consistent_with_exact_shap(self, loan_logistic, loan_data):
        explainer = InteractionExplainer(
            loan_logistic, loan_data.X[:30], max_background=30
        )
        x = loan_data.X[0]
        att = explainer.explain(x)
        from repro.shapley import ExactShapleyExplainer

        reference = ExactShapleyExplainer(
            loan_logistic, loan_data.X[:30], max_background=30
        ).explain(x)
        assert np.allclose(
            att.meta["interactions"].sum(axis=1), reference.values, atol=1e-9
        )
