"""Tests for conditional (on-manifold) SHAP."""

import numpy as np
import pytest

from repro.datasets import make_correlated_gaussian
from repro.shapley import (
    ConditionalShapExplainer,
    ExactShapleyExplainer,
    empirical_conditional_value_function,
)


@pytest.fixture(scope="module")
def correlated_setup():
    """Two strongly correlated features; the model uses ONLY feature 0."""
    X = make_correlated_gaussian(600, n_features=2, rho=0.95, seed=3)

    def model(Z):
        return Z[:, 0]

    return X, model


class TestConditionalValueFunction:
    def test_endpoints(self, correlated_setup):
        X, model = correlated_setup
        x = X[0]
        v = empirical_conditional_value_function(model, X, x, k=20)
        empty = v(np.zeros((1, 2), dtype=bool))[0]
        full = v(np.ones((1, 2), dtype=bool))[0]
        assert empty == pytest.approx(float(np.mean(model(X))))
        assert full == pytest.approx(float(model(x[None, :])[0]))

    def test_conditioning_respects_correlation(self, correlated_setup):
        X, model = correlated_setup
        # Condition on a high value of feature 1 only: because of the
        # correlation, E[f | x1 high] = E[X0 | x1 high] must be high too.
        x = np.array([0.0, 2.0])
        v = empirical_conditional_value_function(model, X, x, k=20)
        conditional = v(np.array([[False, True]]))[0]
        assert conditional > 1.0  # ≈ rho * 2

    def test_marginal_ignores_correlation(self, correlated_setup):
        X, model = correlated_setup
        from repro.core.sampling import MaskingSampler

        x = np.array([0.0, 2.0])
        sampler = MaskingSampler(X, max_background=100)
        v = sampler.value_function(model, x)
        marginal = v(np.array([[False, True]]))[0]
        assert abs(marginal) < 0.3  # feature 1 unused → no effect


class TestConditionalShapExplainer:
    def test_unused_correlated_feature_gets_credit(self, correlated_setup):
        """The Kumar et al. §2.1.2 phenomenon: conditional SHAP credits a
        model-unused feature through its correlation; marginal does not."""
        X, model = correlated_setup
        x = np.array([1.5, 1.5])
        conditional = ConditionalShapExplainer(
            model, X, k=20, n_permutations=30, seed=0
        ).explain(x)
        marginal = ExactShapleyExplainer(model, X[:100]).explain(x)
        assert abs(marginal.values[1]) < 0.05
        assert conditional.values[1] > 0.3

    def test_efficiency(self, correlated_setup):
        X, model = correlated_setup
        x = X[5]
        att = ConditionalShapExplainer(
            model, X, k=20, n_permutations=40, seed=0
        ).explain(x)
        assert att.additivity_gap() < 1e-9  # exact per-permutation telescoping

    def test_independent_features_match_marginal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (500, 3))

        def model(Z):
            return 2.0 * Z[:, 0] - Z[:, 1]

        x = X[0]
        conditional = ConditionalShapExplainer(
            model, X, k=40, n_permutations=60, seed=0
        ).explain(x)
        marginal = ExactShapleyExplainer(model, X[:100]).explain(x)
        assert np.abs(conditional.values - marginal.values).max() < 0.35
