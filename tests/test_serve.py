"""The explanation service: admission, coalescing, cache, ladder, breaker.

The load-bearing invariants:

* overload is refused, not absorbed: a full bounded queue fast-fails
  429 with ``Retry-After``, a queued request whose deadline lapses gets
  503 — and every refusal resolves *within* the request's own budget;
* identical concurrent requests coalesce into one computation whose
  outcome — result or typed error — reaches every waiter exactly once;
* the warm cache serves repeats, honors its TTL, and is emptied by a
  model version bump;
* the degradation ladder substitutes cheaper tiers under pressure and
  declares it in ``meta`` (a degraded answer is never silent);
* a persistently failing model trips its circuit breaker (fast 503
  without touching the model), and a successful half-open probe closes
  it again;
* over HTTP every failure is a typed JSON envelope — never a stack
  trace, never a hung socket.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics
from repro.robust.errors import (
    BudgetExceededError,
    ModelEvaluationError,
    TransientModelError,
)
from repro.serve import (
    CircuitBreaker,
    DegradationLadder,
    ExplainServer,
    QueueFullError,
    ServeConfig,
    error_envelope,
    request_key,
)
from repro.serve.breaker import CLOSED, OPEN


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.get_tracer().reset()
    metrics.reset_metrics()
    obs.reset_ledger()
    yield
    obs.get_tracer().reset()
    metrics.reset_metrics()
    obs.reset_ledger()


class StubModel:
    """Deterministic linear model with a call counter and optional delay."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.calls = 0
        self._lock = threading.Lock()

    def predict(self, X):
        with self._lock:
            self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        X = np.asarray(X, dtype=float)
        return X @ np.arange(1.0, X.shape[1] + 1.0)


class FailingModel(StubModel):
    """Raises until ``healthy`` is flipped on."""

    def __init__(self):
        super().__init__()
        self.healthy = False

    def predict(self, X):
        with self._lock:
            self.calls += 1
        if not self.healthy:
            raise TransientModelError("injected outage")
        return super().predict(np.asarray(X))


def _background(n_features: int = 5, rows: int = 16) -> np.ndarray:
    rng = np.random.default_rng(3)
    return rng.normal(size=(rows, n_features))


def _server(model=None, **cfg) -> ExplainServer:
    cfg.setdefault("max_inflight", 2)
    cfg.setdefault("queue_limit", 4)
    cfg.setdefault("default_deadline_s", 10.0)
    cfg.setdefault("ladder_enabled", False)
    server = ExplainServer(ServeConfig(**cfg))
    server.add_endpoint("m", model or StubModel(), _background())
    return server


def _body(x=None, **extra) -> dict:
    body = {
        "model": "m",
        "instance": list(x if x is not None else np.arange(5.0)),
        "tier": "sampling",
        "params": {"n_permutations": 8, "seed": 0},
    }
    body.update(extra)
    return body


# --------------------------------------------------------------- admission


def test_queue_full_fast_fails_429_with_retry_after():
    model = StubModel(delay_s=0.5)
    server = _server(model, max_inflight=1, queue_limit=0)
    occupier = threading.Thread(
        target=server.handle_explain, args=(_body(),), daemon=True
    )
    occupier.start()
    for _ in range(200):  # wait for the slot to be taken
        if server.admission.inflight == 1:
            break
        time.sleep(0.005)
    t0 = time.monotonic()
    status, resp, headers = server.handle_explain(
        _body(np.arange(5.0) + 1.0)
    )
    elapsed = time.monotonic() - t0
    occupier.join(timeout=10)
    assert status == 429
    assert resp["error"]["type"] == "QueueFullError"
    assert "Retry-After" in headers
    assert elapsed < 0.4  # fast-fail: no queue wait at all


def test_queue_wait_is_capped_by_the_request_deadline():
    model = StubModel(delay_s=0.6)
    server = _server(model, max_inflight=1, queue_limit=4)
    occupier = threading.Thread(
        target=server.handle_explain, args=(_body(),), daemon=True
    )
    occupier.start()
    for _ in range(200):
        if server.admission.inflight == 1:
            break
        time.sleep(0.005)
    t0 = time.monotonic()
    status, resp, headers = server.handle_explain(
        _body(np.arange(5.0) + 2.0, deadline_ms=150)
    )
    elapsed = time.monotonic() - t0
    occupier.join(timeout=10)
    # The queued request resolved with a typed refusal *within* (about)
    # its own deadline — it did not ride out the occupier's 600 ms.
    assert status in (503, 504)
    assert resp["error"]["type"] in (
        "AdmissionTimeoutError", "BudgetExceededError"
    )
    assert elapsed < 0.5


# -------------------------------------------------------------- coalescing


def test_identical_concurrent_requests_share_one_computation():
    model = StubModel(delay_s=0.25)
    server = _server(model, max_inflight=4)
    results: list = []

    def fire():
        results.append(server.handle_explain(_body()))

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15)
    assert len(results) == 4
    statuses = [r[0] for r in results]
    assert statuses == [200, 200, 200, 200]
    values = {json.dumps(r[1]["attribution"]["values"]) for r in results}
    assert len(values) == 1  # everyone got the same explanation
    snap = metrics.snapshot()
    assert snap["serve.coalesce.leaders"]["value"] == 1
    assert snap["serve.coalesce.waiters"]["value"] == 3
    provenance = sorted(r[1]["meta"]["cache"] for r in results)
    assert provenance == ["coalesced", "coalesced", "coalesced", "miss"]


def test_leader_failure_reaches_every_waiter_as_the_same_typed_error():
    model = FailingModel()  # never healthy: guard retries, then gives up
    server = _server(model, max_inflight=4, breaker_threshold=100)
    results: list = []
    barrier = threading.Barrier(4)

    def fire():
        barrier.wait()
        results.append(server.handle_explain(_body()))

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15)
    assert len(results) == 4  # exactly one outcome per request
    for status, resp, __ in results:
        assert status == 502
        assert resp["error"]["type"] in (
            "ModelEvaluationError", "TransientModelError"
        )
        assert "Traceback" not in json.dumps(resp)
    # Errors are not cached: the next request recomputes.
    snap = metrics.snapshot()
    assert snap.get("serve.cache.hits", {}).get("value", 0) == 0


# -------------------------------------------------------------------- cache


def test_cache_hit_and_model_version_invalidation():
    model = StubModel()
    server = _server(model)
    s1, r1, __ = server.handle_explain(_body())
    s2, r2, __ = server.handle_explain(_body())
    assert (s1, s2) == (200, 200)
    assert r1["meta"]["cache"] == "miss"
    assert r2["meta"]["cache"] == "hit"
    assert r1["attribution"] == r2["attribution"]
    calls_before = model.calls
    server.set_model_version("m", "v2")
    s3, r3, __ = server.handle_explain(_body())
    assert s3 == 200
    assert r3["meta"]["cache"] == "miss"
    assert r3["meta"]["model_version"] == "v2"
    assert model.calls > calls_before  # genuinely recomputed
    assert metrics.snapshot()["serve.cache.invalidated"]["value"] >= 1


def test_cache_ttl_expires_entries():
    server = _server(cache_ttl_s=0.05)
    server.handle_explain(_body())
    __, warm, __ = server.handle_explain(_body())
    assert warm["meta"]["cache"] == "hit"
    time.sleep(0.08)
    __, cold, __ = server.handle_explain(_body())
    assert cold["meta"]["cache"] == "miss"
    assert metrics.snapshot()["serve.cache.expired"]["value"] == 1


def test_request_key_separates_tiers_and_versions():
    x = np.arange(5.0)
    base = request_key("m", "v1", x, "sampling", {"seed": 0})
    assert base != request_key("m", "v2", x, "sampling", {"seed": 0})
    assert base != request_key("m", "v1", x, "surrogate", {"seed": 0})
    assert base != request_key("m", "v1", x + 1, "sampling", {"seed": 0})
    assert base == request_key("m", "v1", x.copy(), "sampling", {"seed": 0})


# ------------------------------------------------------------------- ladder


def test_ladder_degrades_and_sheds_with_pressure():
    ladder = DegradationLadder(ServeConfig(
        ladder_enabled=True, degrade_pressure=0.5, shed_pressure=0.85,
    ))
    tiers = ("exact", "sampling", "surrogate")
    tier, overrides, meta = ladder.choose("exact", tiers, 0.0)
    assert (tier, meta["degraded"]) == ("exact", False)
    tier, overrides, meta = ladder.choose("exact", tiers, 0.6)
    assert (tier, meta["degraded"]) == ("sampling", True)
    assert overrides["n_permutations"] < 60  # budget squeezed too
    tier, __, meta = ladder.choose("exact", tiers, 0.9)
    assert (tier, meta["degraded"]) == ("surrogate", True)
    # Explicit cheap requests are never upgraded, and not marked degraded.
    tier, __, meta = ladder.choose("surrogate", tiers, 0.9)
    assert (tier, meta["degraded"]) == ("surrogate", False)
    assert metrics.snapshot()["serve.shed.degraded"]["value"] == 2


def test_ladder_uses_compute_p95_as_trailing_pressure():
    config = ServeConfig(
        ladder_enabled=True, default_deadline_s=1.0,
        degrade_pressure=0.5, shed_pressure=0.85,
    )
    ladder = DegradationLadder(config)
    h = metrics.histogram("serve.compute_ms")
    for __ in range(10):
        h.observe(950.0)  # p95 ≈ the whole deadline
    assert ladder.pressure(0.0) >= 0.85
    tier, __, meta = ladder.choose("exact",
                                   ("exact", "sampling", "surrogate"), 0.0)
    assert tier == "surrogate"


def test_wide_endpoint_never_offers_exact():
    server = ExplainServer(ServeConfig(ladder_enabled=False))
    server.add_endpoint("wide", StubModel(), _background(n_features=20))
    assert "exact" not in server.registry.get("wide").available_tiers
    status, resp, __ = server.handle_explain({
        "model": "wide",
        "instance": list(range(20)),
        "tier": "exact",
        "params": {},
    })
    # Exact silently stands down to the nearest cheaper tier...
    assert status == 200
    assert resp["meta"]["tier"] == "sampling"
    # ...which is a substitution the response must declare.
    assert resp["meta"]["degraded"] is True


# ------------------------------------------------------------------ breaker


def test_breaker_opens_after_consecutive_failures_and_probe_recloses():
    model = FailingModel()
    server = _server(
        model, breaker_threshold=2, breaker_cooldown_s=0.1, queue_limit=8
    )
    # Two distinct instances (no coalescing/caching) fail the model.
    for i in range(2):
        status, resp, __ = server.handle_explain(
            _body(np.arange(5.0) + 10 * i)
        )
        assert status == 502
    assert server.breaker("m").state == OPEN
    calls_when_open = model.calls
    status, resp, headers = server.handle_explain(
        _body(np.arange(5.0) + 50)
    )
    assert status == 503
    assert resp["error"]["type"] == "BreakerOpenError"
    assert "Retry-After" in headers
    assert model.calls == calls_when_open  # refused without touching it
    # Cooldown elapses, the model recovers, one probe closes the circuit.
    model.healthy = True
    time.sleep(0.12)
    status, resp, __ = server.handle_explain(_body(np.arange(5.0) + 99))
    assert status == 200
    assert server.breaker("m").state == CLOSED
    snap = metrics.snapshot()
    assert snap["serve.breaker.opened"]["value"] == 1
    assert snap["serve.breaker.probes"]["value"] == 1
    assert snap["serve.breaker.closed"]["value"] == 1


def test_breaker_half_open_admits_exactly_one_probe():
    breaker = CircuitBreaker("m", threshold=1, cooldown_s=0.05)
    breaker.record_failure(ModelEvaluationError("down"))
    assert breaker.state == OPEN
    time.sleep(0.06)
    breaker.allow()  # wins the probe slot
    from repro.serve import BreakerOpenError

    with pytest.raises(BreakerOpenError):
        breaker.allow()  # concurrent request while the probe is out
    breaker.record_success()
    assert breaker.state == CLOSED
    breaker.allow()  # closed again: free passage


def test_breaker_ignores_budget_errors():
    breaker = CircuitBreaker("m", threshold=1, cooldown_s=10.0)
    breaker.record_failure(BudgetExceededError("slow", kind="deadline"))
    assert breaker.state == CLOSED  # load is not model sickness


# ----------------------------------------------------------- error envelope


def test_error_envelope_statuses_and_opacity():
    status, body, headers = error_envelope(
        QueueFullError("full", retry_after_s=2.0)
    )
    assert status == 429
    assert body["error"]["type"] == "QueueFullError"
    assert headers["Retry-After"] == "2"
    # An unexpected exception is a bug, not a contract: constant message.
    status, body, __ = error_envelope(RuntimeError("secret internals"))
    assert status == 500
    assert body["error"]["type"] == "InternalError"
    assert "secret" not in json.dumps(body)


# --------------------------------------------------------------------- HTTP


def _post(url: str, payload: dict, timeout: float = 15.0):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


def _get(url: str, timeout: float = 15.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def test_http_explain_healthz_stats_and_version_bump():
    server = _server(StubModel())
    host, port = server.start()
    try:
        base = f"http://{host}:{port}"
        status, body, __ = _post(f"{base}/explain", _body())
        assert status == 200
        assert body["meta"]["tier"] == "sampling"
        assert len(body["attribution"]["values"]) == 5
        status, health = _get(f"{base}/healthz")
        assert (status, health["status"]) == (200, "ok")
        assert health["models"] == ["m"]
        status, stats = _get(f"{base}/serve/stats")
        assert status == 200
        assert stats["models"]["m"]["breaker"] == "closed"
        assert stats["cache"]["entries"] == 1
        status, bump, __ = _post(
            f"{base}/models/m/version", {"version": "v2"}
        )
        assert (status, bump["version"]) == (200, "v2")
        status, body, __ = _post(f"{base}/explain", _body())
        assert body["meta"]["model_version"] == "v2"
        assert body["meta"]["cache"] == "miss"
    finally:
        server.stop()


def test_http_failures_are_typed_envelopes_not_tracebacks():
    server = _server(StubModel())
    host, port = server.start()
    try:
        base = f"http://{host}:{port}"
        for payload, want_status, want_type in (
            ({"model": "ghost", "instance": [1, 2, 3, 4, 5]},
             404, "UnknownEndpointError"),
            ({"model": "m", "instance": [1]},
             400, "InputValidationError"),
            ({"model": "m"}, 400, "InputValidationError"),
        ):
            status, body, __ = _post(f"{base}/explain", payload)
            assert status == want_status
            assert body["error"]["type"] == want_type
            assert "Traceback" not in json.dumps(body)
        # Non-JSON body and unknown routes are envelopes too.
        req = urllib.request.Request(
            f"{base}/explain", data=b"not json{", method="POST"
        )
        try:
            with urllib.request.urlopen(req, timeout=15) as resp:
                status, body = resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            status, body = err.code, json.loads(err.read())
        assert (status, body["error"]["type"]) == (
            400, "InputValidationError"
        )
        status, body, __ = _post(f"{base}/no/such/route", {})
        assert (status, body["error"]["type"]) == (
            404, "UnknownEndpointError"
        )
    finally:
        server.stop()


def test_requests_land_in_the_run_ledger():
    server = _server(StubModel())
    server.handle_explain(_body())
    server.handle_explain({"model": "ghost", "instance": [1.0] * 5})
    rows = [
        row for row in obs.get_ledger().tail(10)
        if row.get("kind") == "serve.request"
    ]
    assert len(rows) == 2
    ok, bad = rows
    assert (ok["status"], ok["tier"], ok["cache"]) == (
        200, "sampling", "miss"
    )
    assert (bad["status"], bad["error"]) == (404, "UnknownEndpointError")
