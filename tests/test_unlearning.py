"""Tests for PrIU incremental updates and decremental forests."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.models import LogisticRegression, RidgeRegression
from repro.unlearning import (
    IncrementalLogistic,
    IncrementalRidge,
    UnlearnableForest,
    timed_deletion_comparison,
)


@pytest.fixture(scope="module")
def regression_problem():
    rng = np.random.default_rng(91)
    X = rng.normal(0, 1, (300, 5))
    y = X @ np.array([1.0, -2.0, 0.5, 0.0, 3.0]) + rng.normal(0, 0.2, 300)
    return X, y


@pytest.fixture(scope="module")
def classification_problem():
    data = make_classification(300, n_features=5, seed=92)
    return data.X, data.y


class TestIncrementalRidge:
    def test_matches_batch_fit_before_deletion(self, regression_problem):
        X, y = regression_problem
        incremental = IncrementalRidge(alpha=1.0).fit(X, y)
        batch = RidgeRegression(alpha=1.0).fit(X, y)
        assert np.allclose(incremental.coef_, batch.coef_, atol=1e-8)
        assert incremental.intercept_ == pytest.approx(batch.intercept_)

    def test_deletion_is_exact(self, regression_problem):
        X, y = regression_problem
        incremental = IncrementalRidge(alpha=1.0).fit(X, y)
        incremental.delete([0, 5, 17, 100, 299])
        assert incremental.matches_retrain()

    def test_sequential_deletions_compose(self, regression_problem):
        X, y = regression_problem
        incremental = IncrementalRidge(alpha=0.5).fit(X, y)
        incremental.delete([1]).delete([2]).delete([3])
        assert incremental.matches_retrain()

    def test_double_deletion_rejected(self, regression_problem):
        X, y = regression_problem
        incremental = IncrementalRidge().fit(X, y)
        incremental.delete([4])
        with pytest.raises(ValueError):
            incremental.delete([4])

    def test_predictions_update(self, regression_problem):
        X, y = regression_problem
        incremental = IncrementalRidge(alpha=1.0).fit(X, y)
        before = incremental.predict(X[:5]).copy()
        incremental.delete(np.arange(100))
        after = incremental.predict(X[:5])
        assert not np.allclose(before, after)


class TestIncrementalLogistic:
    def test_small_parameter_error_after_deletion(self, classification_problem):
        X, y = classification_problem
        incremental = IncrementalLogistic(alpha=1.0).fit(X, y)
        incremental.delete(np.arange(30))
        assert incremental.parameter_error_vs_retrain() < 1e-3

    def test_accuracy_parity_with_retrain(self, classification_problem):
        X, y = classification_problem
        incremental = IncrementalLogistic(alpha=1.0).fit(X, y)
        incremental.delete(np.arange(50))
        retrained = LogisticRegression(alpha=1.0).fit(X[50:], y[50:])
        agreement = np.mean(incremental.predict(X) == retrained.predict(X))
        assert agreement > 0.99

    def test_double_deletion_rejected(self, classification_problem):
        X, y = classification_problem
        incremental = IncrementalLogistic().fit(X, y)
        incremental.delete([7])
        with pytest.raises(ValueError):
            incremental.delete([7])

    def test_more_newton_steps_reduce_error(self, classification_problem):
        X, y = classification_problem
        one = IncrementalLogistic(alpha=1.0, n_newton_steps=1).fit(X, y)
        three = IncrementalLogistic(alpha=1.0, n_newton_steps=3).fit(X, y)
        one.delete(np.arange(60))
        three.delete(np.arange(60))
        assert (
            three.parameter_error_vs_retrain()
            <= one.parameter_error_vs_retrain() + 1e-12
        )

    def test_timed_comparison_structure(self, classification_problem):
        X, y = classification_problem
        result = timed_deletion_comparison(X, y, np.arange(20))
        assert set(result) == {
            "t_incremental", "t_retrain", "speedup", "parameter_error"
        }
        assert result["parameter_error"] < 1e-3


class TestUnlearnableForest:
    @pytest.fixture(scope="class")
    def forest_setup(self, classification_problem):
        X, y = classification_problem
        forest = UnlearnableForest(
            n_estimators=10, max_depth=6, seed=0
        ).fit(X, y)
        return forest, X, y

    def test_initial_accuracy(self, forest_setup):
        forest, X, y = forest_setup
        assert forest.score(X, y) > 0.8

    def test_deletion_stream_keeps_accuracy(self, classification_problem):
        X, y = classification_problem
        forest = UnlearnableForest(n_estimators=10, max_depth=6, seed=1)
        forest.fit(X, y)
        for i in range(60):
            forest.delete(i)
        remaining = slice(60, None)
        retrained = UnlearnableForest(
            n_estimators=10, max_depth=6, seed=1
        ).fit(X[remaining], y[remaining])
        a = forest.score(X[remaining], y[remaining])
        b = retrained.score(X[remaining], y[remaining])
        assert abs(a - b) < 0.08

    def test_double_deletion_rejected(self, classification_problem):
        X, y = classification_problem
        forest = UnlearnableForest(n_estimators=3, seed=2).fit(X, y)
        forest.delete(0)
        with pytest.raises(ValueError):
            forest.delete(0)

    def test_leaf_counts_update_immediately(self, classification_problem):
        X, y = classification_problem
        forest = UnlearnableForest(n_estimators=1, max_depth=3,
                                   rebuild_fraction=1.1, seed=3).fit(X, y)
        tree = forest.trees_[0]
        x = X[0]
        leaf = tree._leaf(x)
        count_before = leaf.counts.sum()
        tree.delete(0)
        assert tree._leaf(x).counts.sum() == count_before - 1

    def test_binary_labels_required(self):
        with pytest.raises(ValueError):
            UnlearnableForest(n_estimators=1).fit(
                np.zeros((6, 2)), np.array([0, 1, 2, 0, 1, 2])
            )
