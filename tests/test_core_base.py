"""Tests for repro.core.base model normalization."""

import numpy as np
import pytest

from repro.core import as_predict_fn
from repro.models import LogisticRegression


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.normal(0, 1, (100, 3))
    y = (X[:, 0] > 0).astype(int)
    return LogisticRegression(alpha=0.5).fit(X, y), X


def test_plain_callable_passthrough():
    fn = as_predict_fn(lambda X: X[:, 0] * 2)
    out = fn(np.array([[3.0, 1.0]]))
    assert out.tolist() == [6.0]


def test_auto_prefers_predict_proba(fitted):
    model, X = fitted
    fn = as_predict_fn(model)
    out = fn(X[:5])
    assert np.all((out >= 0) & (out <= 1))
    assert np.allclose(out, model.predict_proba(X[:5])[:, 1])


def test_label_output(fitted):
    model, X = fitted
    fn = as_predict_fn(model, output="label")
    assert set(np.unique(fn(X))) <= {0.0, 1.0}


def test_raw_output_uses_decision_function(fitted):
    model, X = fitted
    fn = as_predict_fn(model, output="raw")
    assert np.allclose(fn(X[:5]), model.decision_function(X[:5]))


def test_proba_requires_predict_proba():
    class OnlyPredict:
        def predict(self, X):
            return np.zeros(len(X))

    with pytest.raises(TypeError):
        as_predict_fn(OnlyPredict(), output="proba")


def test_single_row_input_accepted(fitted):
    model, X = fitted
    fn = as_predict_fn(model)
    assert fn(X[0]).shape == (1,)


def test_raw_requires_decision_function():
    class OnlyPredict:
        def predict(self, X):
            return np.zeros(len(X))

    # Regression: this used to silently degrade to predict().
    with pytest.raises(TypeError, match="decision_function"):
        as_predict_fn(OnlyPredict(), output="raw")


def test_explain_batch_matches_rowwise_explain(monkeypatch, loan_gbm,
                                               loan_data):
    from repro import obs
    from repro.shapley import KernelShapExplainer

    explainer = KernelShapExplainer(loan_gbm, loan_data.X[:20],
                                    n_samples=32, seed=0)
    X = loan_data.X[:3]
    obs.get_tracer().reset()
    try:
        batch = explainer.explain_batch(X)
        assert len(batch) == 3
        for row, attribution in zip(X, batch):
            single = explainer.explain(row)
            assert np.allclose(attribution.values, single.values)
            assert attribution.base_value == single.base_value

        spans = obs.get_tracer().spans()
        parents = [s for s in spans if s.name == "explain_batch"]
        assert len(parents) == 1
        (parent,) = parents
        assert parent.attrs["n_rows"] == 3
        # The amortized path evaluates rows against one shared plan, so
        # there are no per-row child explain spans — the batch span
        # carries the eval counters itself.
        assert parent.attrs["amortized"] is True
        assert parent.model_evals > 0
        assert parent.rows_evaluated > 0

        # With the shared-plan path disabled, the per-row loop is
        # restored: child spans reappear and their counters roll up.
        monkeypatch.setenv("REPRO_BATCH_PLAN", "0")
        obs.get_tracer().reset()
        looped = explainer.explain_batch(X)
        for amortized_att, looped_att in zip(batch, looped):
            assert np.array_equal(amortized_att.values, looped_att.values)
        spans = obs.get_tracer().spans()
        (parent,) = [s for s in spans if s.name == "explain_batch"]
        assert parent.attrs["amortized"] is False
        children = [s for s in spans
                    if s.name == "explain" and s.parent_id == parent.span_id]
        assert len(children) == 3
        assert all(c.model_evals > 0 for c in children)
        # Child eval counters roll up into the batch span.
        assert parent.model_evals == sum(c.model_evals for c in children)
        assert parent.rows_evaluated == sum(c.rows_evaluated for c in children)
    finally:
        obs.get_tracer().reset()
