"""Tests for repro.obs.trace: spans, nesting, export, thread safety."""

import json
import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.get_tracer().reset()
    yield
    obs.get_tracer().reset()


def test_span_records_wall_time_and_attrs():
    with obs.span("work", explainer="unit", n_features=3) as s:
        s.set_attr("extra", 1)
    spans = obs.get_tracer().spans()
    assert len(spans) == 1
    (recorded,) = spans
    assert recorded.name == "work"
    assert recorded.wall_ms is not None and recorded.wall_ms >= 0.0
    assert recorded.attrs["explainer"] == "unit"
    assert recorded.attrs["n_features"] == 3
    assert recorded.attrs["extra"] == 1
    assert recorded.status == "ok"


def test_nesting_links_parent_and_rolls_up_counters():
    with obs.span("parent") as parent:
        with obs.span("child") as child:
            child.add_model_evals(2, 200)
        with obs.span("child"):
            obs.record_model_eval(rows=50)  # via the ambient span
    spans = {s.span_id: s for s in obs.get_tracer().spans()}
    recorded_parent = next(s for s in spans.values() if s.name == "parent")
    children = [s for s in spans.values() if s.name == "child"]
    assert recorded_parent.span_id == parent.span_id
    assert all(c.parent_id == parent.span_id for c in children)
    # Child counters roll up into the parent on close.
    assert recorded_parent.model_evals == 3
    assert recorded_parent.rows_evaluated == 250


def test_exception_marks_status_and_still_records():
    with pytest.raises(ValueError):
        with obs.span("boom"):
            raise ValueError("nope")
    (recorded,) = obs.get_tracer().spans()
    assert recorded.status == "error:ValueError"
    assert recorded.wall_ms is not None


def test_disabled_records_nothing():
    obs.set_enabled(False)
    try:
        with obs.span("invisible") as s:
            s.add_model_evals(1, 1)  # must be a harmless no-op
        assert obs.get_tracer().spans() == []
        assert obs.current_span() is None
    finally:
        obs.set_enabled(True)


def test_mark_and_spans_since():
    with obs.span("before"):
        pass
    mark = obs.get_tracer().mark()
    with obs.span("after"):
        pass
    since = obs.get_tracer().spans_since(mark)
    assert [s.name for s in since] == ["after"]


def test_jsonl_export_streams_valid_records(tmp_path):
    out = tmp_path / "trace.jsonl"
    tracer = obs.get_tracer()
    tracer.start_export(str(out))
    try:
        with obs.span("exported", explainer="kernel_shap"):
            obs.record_model_eval(rows=10)
    finally:
        tracer.stop_export()
    lines = out.read_text(encoding="utf-8").strip().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["name"] == "exported"
    assert record["attrs"]["explainer"] == "kernel_shap"
    assert record["model_evals"] == 1
    assert record["rows_evaluated"] == 10
    assert record["wall_ms"] >= 0.0


def test_export_dump_after_the_fact(tmp_path):
    with obs.span("a"):
        pass
    with obs.span("b"):
        pass
    out = tmp_path / "dump.jsonl"
    n = obs.get_tracer().export(str(out))
    assert n == 2
    names = [json.loads(line)["name"]
             for line in out.read_text().strip().splitlines()]
    assert names == ["a", "b"]


def test_threads_do_not_share_span_context():
    seen = {}

    def worker(tag):
        # A fresh thread starts with no ambient span, even though the
        # main thread holds one open.
        seen[tag] = obs.current_span()
        with obs.span(f"thread-{tag}"):
            pass

    with obs.span("main-open"):
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert all(v is None for v in seen.values())
    names = sorted(s.name for s in obs.get_tracer().spans())
    assert names == ["main-open"] + sorted(f"thread-{i}" for i in range(4))
    # Thread spans must not have been adopted by the main thread's span.
    for s in obs.get_tracer().spans():
        if s.name.startswith("thread-"):
            assert s.parent_id is None
