"""Property-based tests of the semiring laws for every provenance domain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    WhySemiring,
)

SEMIRINGS = {
    "boolean": BooleanSemiring(),
    "counting": CountingSemiring(),
    "why": WhySemiring(),
    "lineage": LineageSemiring(),
}

# Element generators per semiring: small closed universes so hypothesis
# explores the algebra rather than the representation.
ids = st.integers(0, 4)


def elements(name):
    if name == "boolean":
        return st.booleans()
    if name == "counting":
        return st.integers(0, 20)
    if name == "why":
        return st.frozensets(st.frozensets(ids, max_size=3), max_size=3).map(
            WhySemiring._minimize
        )
    # lineage: None (= ⊥) or a frozenset
    return st.one_of(st.none(), st.frozensets(ids, max_size=4))


@pytest.mark.parametrize("name", list(SEMIRINGS))
class TestSemiringLaws:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_plus_commutative_associative(self, name, data):
        K = SEMIRINGS[name]
        elems = elements(name)
        a, b, c = (data.draw(elems) for __ in range(3))
        assert K.plus(a, b) == K.plus(b, a)
        assert K.plus(K.plus(a, b), c) == K.plus(a, K.plus(b, c))

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_times_commutative_associative(self, name, data):
        K = SEMIRINGS[name]
        elems = elements(name)
        a, b, c = (data.draw(elems) for __ in range(3))
        assert K.times(a, b) == K.times(b, a)
        assert K.times(K.times(a, b), c) == K.times(a, K.times(b, c))

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_identities(self, name, data):
        K = SEMIRINGS[name]
        a = data.draw(elements(name))
        assert K.plus(a, K.zero) == a
        assert K.times(a, K.one) == a

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_zero_annihilates(self, name, data):
        K = SEMIRINGS[name]
        a = data.draw(elements(name))
        assert K.times(a, K.zero) == K.zero


# Distributivity holds absolutely for boolean/counting/lineage; the
# why-semiring satisfies it modulo witness absorption (the standard
# quotient), which _minimize normalizes — asserted separately.
@pytest.mark.parametrize("name", ["boolean", "counting", "lineage", "why"])
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_distributivity(name, data):
    K = SEMIRINGS[name]
    elems = elements(name)
    a, b, c = (data.draw(elems) for __ in range(3))
    left = K.times(a, K.plus(b, c))
    right = K.plus(K.times(a, b), K.times(a, c))
    if name == "why":
        left = WhySemiring._minimize(left)
        right = WhySemiring._minimize(right)
    assert left == right


def test_why_tag_and_minimize():
    K = WhySemiring()
    assert K.tag("t1") == frozenset([frozenset(["t1"])])
    bloated = frozenset([frozenset(["a"]), frozenset(["a", "b"])])
    assert K._minimize(bloated) == frozenset([frozenset(["a"])])


def test_lineage_bottom_behaviour():
    K = LineageSemiring()
    assert K.plus(None, frozenset(["x"])) == frozenset(["x"])
    assert K.times(None, frozenset(["x"])) is None
    assert K.times(K.tag("a"), K.tag("b")) == frozenset(["a", "b"])
