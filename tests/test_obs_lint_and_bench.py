"""Tier-1 enforcement of the no-print and exception-hygiene lints, the
telemetry writers, and the benchmark wall-time regression guard."""

import importlib.util
import json
import os
import subprocess
import sys

import pytest

from repro.obs import bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "scripts", "check_no_print.py")
HYGIENE = os.path.join(REPO_ROOT, "scripts", "check_exception_hygiene.py")
SHAPLEY_LINT = os.path.join(
    REPO_ROOT, "scripts", "check_no_bespoke_shapley.py"
)
DB_SCAN_LINT = os.path.join(REPO_ROOT, "scripts", "check_db_scans.py")
PERSIST_LINT = os.path.join(REPO_ROOT, "scripts", "check_serializable.py")
BENCH_COMPARE = os.path.join(REPO_ROOT, "scripts", "bench_compare.py")


def _load_script(path, name):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_lint():
    return _load_script(LINT, "check_no_print")


def test_src_repro_is_print_free():
    """Diagnostics must flow through repro.obs, not stdout."""
    result = subprocess.run(
        [sys.executable, LINT],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_lint_catches_a_bare_print(tmp_path):
    lint = _load_lint()
    bad = tmp_path / "module.py"
    bad.write_text("def f():\n    print('debug')\n", encoding="utf-8")
    assert lint.offenders(str(tmp_path)) == [f"{bad}:2"]
    # Strings/comments mentioning print( must not trip the AST walk,
    # and the human-output modules stay exempt.
    ok = tmp_path / "clean.py"
    ok.write_text("# print(x)\ns = 'print('\n", encoding="utf-8")
    allowed = tmp_path / "cli.py"
    allowed.write_text("print('fine')\n", encoding="utf-8")
    assert lint.offenders(str(tmp_path)) == [f"{bad}:2"]


def test_src_repro_has_clean_exception_hygiene():
    """No bare excepts or silent broad handlers in the library — or in
    the test suite (the no-arg default scans both roots)."""
    result = subprocess.run(
        [sys.executable, HYGIENE],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_hygiene_lint_scans_multiple_roots(tmp_path):
    hygiene = _load_script(HYGIENE, "check_exception_hygiene")
    clean = tmp_path / "clean"
    dirty = tmp_path / "dirty"
    clean.mkdir()
    dirty.mkdir()
    (clean / "a.py").write_text("x = 1\n", encoding="utf-8")
    (dirty / "b.py").write_text("try:\n    f()\nexcept:\n    pass\n",
                                encoding="utf-8")
    assert hygiene.main([str(clean)]) == 0
    # Any number of explicit roots; one dirty root fails the run.
    assert hygiene.main([str(clean), str(dirty)]) == 1


def test_hygiene_lint_catches_silent_handlers(tmp_path):
    hygiene = _load_script(HYGIENE, "check_exception_hygiene")
    bad = tmp_path / "module.py"
    bad.write_text(
        "try:\n    f()\nexcept:\n    handle()\n"
        "try:\n    g()\nexcept Exception:\n    pass\n"
        "try:\n    h()\nexcept (ValueError, BaseException):\n    ...\n",
        encoding="utf-8",
    )
    found = hygiene.offenders(str(tmp_path))
    assert [f.split(" ", 1) for f in found] == [
        [f"{bad}:3", "bare except:"],
        [f"{bad}:7", "except Exception with silent (pass-only) body"],
        [f"{bad}:11", "except Exception with silent (pass-only) body"],
    ]


def test_hygiene_lint_accepts_handled_and_allowlisted(tmp_path):
    hygiene = _load_script(HYGIENE, "check_exception_hygiene")
    ok = tmp_path / "clean.py"
    ok.write_text(
        # Narrow types, even with pass bodies, show intent.
        "try:\n    f()\nexcept (TypeError, ValueError):\n    pass\n"
        # Broad but visibly handled.
        "try:\n    g()\nexcept Exception as e:\n    raise RuntimeError from e\n"
        # Broad + silent, but explicitly allowlisted.
        "try:\n    h()\nexcept Exception:  # hygiene: allow\n    pass\n"
        # Strings mentioning the pattern must not trip the AST walk.
        "s = 'except:'\n",
        encoding="utf-8",
    )
    assert hygiene.offenders(str(tmp_path)) == []


def test_src_repro_has_no_bespoke_shapley_loops():
    """Permutation-accumulation loops must live in repro.games only."""
    result = subprocess.run(
        [sys.executable, SHAPLEY_LINT],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_shapley_lint_catches_bespoke_loops(tmp_path):
    lint = _load_script(SHAPLEY_LINT, "check_no_bespoke_shapley")
    bad = tmp_path / "module.py"
    bad.write_text(
        "def estimate(value_fn, n, rng):\n"
        "    sums = np.zeros(n)\n"
        "    for _ in range(10):\n"
        "        perm = rng.permutation(n)\n"
        "        for pos, point in enumerate(perm):\n"
        "            sums[point] += value_fn(pos)\n"
        "    return sums / 10\n",
        encoding="utf-8",
    )
    found = lint.offenders(str(tmp_path))
    assert len(found) >= 1 and all(f"{bad}:4 " in f for f in found)
    # Taint flows through intermediate assignments and reversal too.
    indirect = tmp_path / "indirect.py"
    indirect.write_text(
        "def estimate(v, n, rng):\n"
        "    phi = np.zeros(n)\n"
        "    order = rng.permutation(n)\n"
        "    walks = [order, order[::-1]]\n"
        "    for w in walks:\n"
        "        phi[w] += v(w)\n"
        "    return phi\n",
        encoding="utf-8",
    )
    found = lint.offenders(str(tmp_path))
    assert any(f"{indirect}:3 " in f for f in found)


def test_shapley_lint_accepts_benign_uses(tmp_path):
    lint = _load_script(SHAPLEY_LINT, "check_no_bespoke_shapley")
    ok = tmp_path / "clean.py"
    ok.write_text(
        # Shuffled minibatch SGD: the permutation orders rows, but the
        # accumulation index is a plain loop variable (the MLP pattern).
        "def fit(X, y, rng, grads):\n"
        "    idx = rng.permutation(len(X))\n"
        "    for i in range(3):\n"
        "        grads[i] += X[idx].sum()\n"
        "    return grads\n"
        # Permutation used for a baseline, assigned (not accumulated).
        "def baseline(scores, rng):\n"
        "    out = {}\n"
        "    perm = rng.permutation(len(scores))\n"
        "    out['shuffled'] = scores[perm]\n"
        "    return out\n"
        # Allow-marked legacy implementation.
        "def legacy(v, n, rng):\n"
        "    sums = np.zeros(n)\n"
        "    perm = rng.permutation(n)  # games: allow\n"
        "    for p in perm:\n"
        "        sums[p] += v(p)\n"
        "    return sums\n",
        encoding="utf-8",
    )
    assert lint.offenders(str(tmp_path)) == []
    # The games package itself is exempt (that is where the loop lives).
    games_dir = tmp_path / "repro" / "games"
    games_dir.mkdir(parents=True)
    (games_dir / "estimators.py").write_text(
        "def walk(v, n, rng, sums):\n"
        "    perm = rng.permutation(n)\n"
        "    for p in perm:\n"
        "        sums[p] += v(p)\n",
        encoding="utf-8",
    )
    assert lint.offenders(str(tmp_path)) == []


def test_src_repro_db_has_no_naive_row_scans():
    """db consumers must go through the planner / index layer."""
    result = subprocess.run(
        [sys.executable, DB_SCAN_LINT],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_db_scan_lint_catches_row_loops(tmp_path):
    lint = _load_script(DB_SCAN_LINT, "check_db_scans")
    bad = tmp_path / "module.py"
    bad.write_text(
        "def pick(relation, predicate):\n"
        "    out = [i for i, r in enumerate(relation.rows)\n"
        "           if predicate(r)]\n"
        "    for row in sorted(relation.rows):\n"
        "        out.append(row)\n"
        "    return out\n",
        encoding="utf-8",
    )
    found = lint.offenders(str(tmp_path))
    # Both the comprehension and the sorted()-wrapped for loop.
    assert len(found) == 2
    assert all("O(n) scan over Relation.rows" in f for f in found)
    assert any(f"{bad}:2 " in f for f in found)
    assert any(f"{bad}:4 " in f for f in found)


def test_db_scan_lint_accepts_sanctioned_scans(tmp_path):
    lint = _load_script(DB_SCAN_LINT, "check_db_scans")
    ok = tmp_path / "module.py"
    ok.write_text(
        # legacy_* oracles scan by design (differential-test baselines).
        "def legacy_pick(relation, p):\n"
        "    return [r for r in relation.rows if p(r)]\n"
        # Point lookups over index-provided ids are not scans.
        "def per_group(relation, members):\n"
        "    return [relation.rows[i] for i in members]\n"
        # Non-selection loops opt out with the marker.
        "def render(relation):\n"
        "    return [str(r) for r in relation.rows]  # db: allow\n",
        encoding="utf-8",
    )
    assert lint.offenders(str(tmp_path)) == []
    # The physical layer itself (relation/index/planner) is exempt.
    physical = tmp_path / "planner.py"
    physical.write_text(
        "def scan(relation, p):\n"
        "    return [r for r in relation.rows if p(r)]\n",
        encoding="utf-8",
    )
    assert lint.offenders(str(tmp_path)) == []


def test_persist_lint_resolves_names_own_module_first(tmp_path):
    """An unrelated same-named class in another module must not shadow
    a registered class's own definition (db.planner.Predicate vs the
    registered core.Predicate)."""
    lint = _load_script(PERSIST_LINT, "check_serializable")
    good = tmp_path / "a_core.py"
    good.write_text(
        "@register_serializable('core.Thing')\n"
        "class Thing(Serializable):\n"
        "    pass\n",
        encoding="utf-8",
    )
    shadow = tmp_path / "z_planner.py"
    shadow.write_text(
        "class Thing:\n"  # unregistered, no to_dict/from_dict — fine
        "    pass\n",
        encoding="utf-8",
    )
    assert lint.offenders(str(tmp_path)) == []
    # A registered class genuinely missing the pair still fails.
    bad = tmp_path / "a_core.py"
    bad.write_text(
        "@register_serializable('core.Thing')\n"
        "class Thing:\n"
        "    pass\n",
        encoding="utf-8",
    )
    found = lint.offenders(str(tmp_path))
    assert len(found) == 1 and "Thing" in found[0]


def test_atomic_write_replaces_not_appends(tmp_path):
    target = tmp_path / "out.txt"
    bench.atomic_write_text(str(target), "first")
    bench.atomic_write_text(str(target), "second")
    assert target.read_text(encoding="utf-8") == "second"
    # No temp droppings left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_write_benchmark_result_txt_and_json(tmp_path):
    json_path = bench.write_benchmark_result(
        str(tmp_path),
        "E99_test",
        ["col_a col_b", "1 2"],
        data={"col_a": [1], "col_b": [2]},
        wall_s=0.5,
        counters={"model_calls": 3, "model_rows": 30},
    )
    txt = (tmp_path / "E99_test.txt").read_text(encoding="utf-8")
    assert txt.startswith("==== E99_test ====\n# experiment: E99_test")
    assert "generated:" in txt
    payload = json.loads((tmp_path / "E99_test.json").read_text())
    assert payload["experiment"] == "E99_test"
    assert payload["wall_s"] == 0.5
    assert payload["counters"] == {"model_calls": 3, "model_rows": 30}
    assert payload["data"] == {"col_a": [1], "col_b": [2]}
    assert payload["timestamp"].startswith("20")
    assert json_path.endswith("E99_test.json")


def test_update_bench_summary_merges(tmp_path):
    path = str(tmp_path / "BENCH_summary.json")
    bench.update_bench_summary(path, "E1_a", {"wall_s": 1.0,
                                              "timestamp": "t1"})
    bench.update_bench_summary(path, "E2_b", {"wall_s": 2.0,
                                              "timestamp": "t2"})
    bench.update_bench_summary(path, "E1_a", {"wall_s": 0.5,
                                              "timestamp": "t3"})
    merged = json.loads(open(path, encoding="utf-8").read())
    assert merged["n_experiments"] == 2
    assert merged["experiments"]["E1_a"]["wall_s"] == 0.5
    assert merged["updated"] == "t3"


def test_update_bench_summary_survives_corrupt_file(tmp_path):
    path = tmp_path / "BENCH_summary.json"
    path.write_text("{not json", encoding="utf-8")
    merged = bench.update_bench_summary(str(path), "E1_a",
                                        {"timestamp": "t"})
    assert merged["experiments"]["E1_a"] == {"timestamp": "t"}
    json.loads(path.read_text(encoding="utf-8"))


def test_benchmarks_emit_writes_all_three_artifacts(tmp_path, monkeypatch,
                                                    capsys):
    """Drive benchmarks/conftest.emit end-to-end against temp paths."""
    bench_dir = os.path.join(REPO_ROOT, "benchmarks")
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", os.path.join(bench_dir, "conftest.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setattr(module, "BENCH_SUMMARY",
                        str(tmp_path / "BENCH_summary.json"))
    module.emit("E98_probe", ["a b", "1 2"], data={"a": [1]})
    out = capsys.readouterr().out
    assert "==== E98_probe ====" in out
    payload = json.loads(
        (tmp_path / "results" / "E98_probe.json").read_text()
    )
    assert payload["data"] == {"a": [1]}
    summary = json.loads((tmp_path / "BENCH_summary.json").read_text())
    assert "E98_probe" in summary["experiments"]


def test_bench_compare_passes_on_committed_baseline():
    """The in-repo BENCH_summary must not regress vs the committed baseline."""
    result = subprocess.run(
        [sys.executable, BENCH_COMPARE],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_bench_compare_detects_regression(tmp_path):
    compare = _load_script(BENCH_COMPARE, "bench_compare")
    baseline = {"E37_coalition_engine": {"wall_s": 2.0}}
    slowed = {"E37_coalition_engine": {"wall_s": 3.2}}
    found = compare.regressions(baseline, slowed)
    assert len(found) == 1 and "E37_coalition_engine" in found[0]
    # …and the CLI agrees.
    base_path = tmp_path / "base.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps({"experiments": baseline}))
    fresh_path.write_text(json.dumps({"experiments": slowed}))
    assert compare.main(
        ["--baseline", str(base_path), "--fresh", str(fresh_path)]
    ) == 1


def test_bench_compare_tolerates_noise_and_gaps(tmp_path):
    compare = _load_script(BENCH_COMPARE, "bench_compare")
    baseline = {
        "E2_kernel_convergence": {"wall_s": 0.02},
        "E3_treeshap_speed": {"wall_s": 10.0},
    }
    fresh = {
        # 10× slower but under the absolute floor: sub-second noise.
        "E2_kernel_convergence": {"wall_s": 0.2},
        # 10% slower: under the relative threshold.
        "E3_treeshap_speed": {"wall_s": 11.0},
        # Not in baseline at all: skipped.
        "E37_coalition_engine": {"wall_s": 99.0},
    }
    assert compare.regressions(baseline, fresh) == []
    # Faster is never a failure.
    assert compare.regressions(
        {"E3_treeshap_speed": {"wall_s": 10.0}},
        {"E3_treeshap_speed": {"wall_s": 1.0}},
    ) == []
    # Missing/corrupt files load as empty and therefore pass.
    assert compare.load_summary(str(tmp_path / "nope.json")) == {}
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert compare.load_summary(str(bad)) == {}
    assert compare.main(["--baseline", str(bad), "--fresh", str(bad)]) == 0


def test_bench_compare_enforces_speedup_floors():
    """Headline ratios (e.g. E45's indexed_speedup) have absolute floors."""
    compare = _load_script(BENCH_COMPARE, "bench_compare")
    assert compare.FLOORS["E45_indexed_provenance"]["indexed_speedup"] == 10.0
    healthy = {"E45_indexed_provenance": {"indexed_speedup": 400.0}}
    assert compare.floor_shortfalls(healthy) == []
    eroded = {"E45_indexed_provenance": {"indexed_speedup": 4.0}}
    found = compare.floor_shortfalls(eroded)
    assert len(found) == 1
    assert "indexed_speedup" in found[0] and "10.0x floor" in found[0]
    # An experiment (or key) that was not freshly run is skipped.
    assert compare.floor_shortfalls({"E45_indexed_provenance": {}}) == []
    assert compare.floor_shortfalls({}) == []


def test_bench_compare_warns_on_missing_baseline(tmp_path, capfd):
    """A guarded experiment without a committed baseline is skipped loudly."""
    compare = _load_script(BENCH_COMPARE, "bench_compare")
    baseline = {"E3_treeshap_speed": {"wall_s": 10.0}}
    fresh = {
        "E3_treeshap_speed": {"wall_s": 10.0},
        "E38_fault_tolerance": {"wall_s": 5.0},
    }
    assert compare.missing_baselines(baseline, fresh) == [
        "E38_fault_tolerance"
    ]
    base_path = tmp_path / "base.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps({"experiments": baseline}))
    fresh_path.write_text(json.dumps({"experiments": fresh}))
    # Missing baseline warns but does not fail the guard.
    assert compare.main(
        ["--baseline", str(base_path), "--fresh", str(fresh_path)]
    ) == 0
    err = capfd.readouterr().err
    assert "E38_fault_tolerance" in err and "warning" in err


@pytest.mark.parametrize("value,bucket_positive", [(0.5, True), (100.0, True)])
def test_histogram_buckets_cover(value, bucket_positive):
    from repro.obs.metrics import Histogram

    h = Histogram("t")
    h.observe(value)
    assert (sum(h.buckets) == 1) is bucket_positive
