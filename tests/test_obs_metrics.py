"""Tests for repro.obs.metrics: counters, histograms, the eval meter."""

import numpy as np
import pytest

from repro import obs
from repro.core.base import as_predict_fn


@pytest.fixture(autouse=True)
def _clean():
    obs.get_tracer().reset()
    yield
    obs.get_tracer().reset()


def test_counter_is_monotone_and_registered():
    c = obs.counter("test.counter")
    start = c.value
    c.inc()
    c.inc(5)
    assert c.value == start + 6
    assert obs.counter("test.counter") is c  # get-or-create semantics


def test_histogram_summary_stats():
    h = obs.histogram("test.hist")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    assert h.count >= 3
    assert h.max >= 3.0
    assert h.min <= 1.0
    assert h.mean > 0
    snap = obs.snapshot()["test.hist"]
    assert snap["type"] == "histogram"
    assert snap["count"] == h.count


def test_metric_name_type_conflict_raises():
    obs.counter("test.conflict")
    with pytest.raises(TypeError):
        obs.histogram("test.conflict")


def test_record_model_eval_hits_globals_and_active_span():
    calls_before = obs.counter("model.calls").value
    rows_before = obs.counter("model.rows").value
    with obs.span("metered") as s:
        obs.record_model_eval(rows=7)
        obs.record_model_eval(rows=3)
    assert obs.counter("model.calls").value == calls_before + 2
    assert obs.counter("model.rows").value == rows_before + 10
    assert s.model_evals == 2
    assert s.rows_evaluated == 10


def test_as_predict_fn_installs_the_meter(loan_logistic, loan_data):
    fn = as_predict_fn(loan_logistic)
    assert getattr(fn, "__repro_metered__", False)
    with obs.span("probe") as s:
        fn(loan_data.X[:25])
        fn(loan_data.X[0])
    assert s.model_evals == 2
    assert s.rows_evaluated == 26


def test_as_predict_fn_does_not_double_meter(loan_logistic, loan_data):
    fn = as_predict_fn(loan_logistic)
    fn2 = as_predict_fn(fn)  # re-normalizing a metered fn is the identity
    assert fn2 is fn
    with obs.span("probe") as s:
        fn2(loan_data.X[:4])
    assert s.model_evals == 1
    assert s.rows_evaluated == 4


def test_meter_disabled_is_silent(loan_logistic, loan_data):
    fn = as_predict_fn(loan_logistic)
    calls_before = obs.counter("model.calls").value
    obs.set_enabled(False)
    try:
        out = fn(loan_data.X[:10])
    finally:
        obs.set_enabled(True)
    assert out.shape == (10,)
    assert obs.counter("model.calls").value == calls_before


def test_meter_plain_callable():
    fn = as_predict_fn(lambda X: np.asarray(X)[:, 0] * 2)
    with obs.span("probe") as s:
        fn(np.ones((5, 3)))
    assert s.model_evals == 1
    assert s.rows_evaluated == 5
