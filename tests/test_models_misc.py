"""Tests for kNN, Gaussian naive Bayes and the MLP."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.models import GaussianNB, KNeighborsClassifier, MLPClassifier
from repro.models.preprocessing import StandardScaler


class TestKNN:
    def test_k1_memorizes_training_data(self):
        data = make_classification(100, seed=1)
        knn = KNeighborsClassifier(n_neighbors=1).fit(data.X, data.y)
        assert knn.score(data.X, data.y) == 1.0

    def test_kneighbors_sorted_and_self_first(self):
        data = make_classification(80, seed=2)
        knn = KNeighborsClassifier(n_neighbors=5).fit(data.X, data.y)
        dist, idx = knn.kneighbors(data.X[:3])
        assert np.all(np.diff(dist, axis=1) >= 0)
        assert idx[:, 0].tolist() == [0, 1, 2]
        assert np.allclose(dist[:, 0], 0.0)

    def test_k_validation(self):
        data = make_classification(20, seed=3)
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=30).fit(data.X, data.y)

    def test_proba_is_vote_fraction(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([0, 0, 1, 1])
        knn = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        proba = knn.predict_proba(np.array([[0.05]]))[0]
        assert proba[0] == pytest.approx(2 / 3)


class TestGaussianNB:
    def test_separates_shifted_gaussians(self):
        rng = np.random.default_rng(4)
        X = np.vstack([rng.normal(-2, 1, (100, 2)), rng.normal(2, 1, (100, 2))])
        y = np.array([0] * 100 + [1] * 100)
        nb = GaussianNB().fit(X, y)
        assert nb.score(X, y) > 0.95
        assert nb.class_prior_.tolist() == [0.5, 0.5]

    def test_handles_constant_feature(self):
        X = np.column_stack([np.ones(60), np.linspace(-1, 1, 60)])
        y = (X[:, 1] > 0).astype(int)
        nb = GaussianNB().fit(X, y)
        proba = nb.predict_proba(X)
        assert np.all(np.isfinite(proba))
        assert nb.score(X, y) > 0.9

    def test_proba_normalized(self):
        data = make_classification(100, seed=5)
        proba = GaussianNB().fit(data.X, data.y).predict_proba(data.X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestMLP:
    @pytest.fixture(scope="class")
    def trained(self):
        data = make_classification(300, n_features=4, seed=6, class_sep=2.0)
        X = StandardScaler().fit_transform(data.X)
        model = MLPClassifier(hidden=(16,), epochs=120, seed=0).fit(X, data.y)
        return model, X, data.y

    def test_learns_separable_data(self, trained):
        model, X, y = trained
        assert model.score(X, y) > 0.85

    def test_input_gradient_matches_finite_differences(self, trained):
        model, X, __ = trained
        x = X[0].copy()
        grad = model.input_gradient(x[None, :])[0]
        eps = 1e-5
        for j in range(x.shape[0]):
            hi, lo = x.copy(), x.copy()
            hi[j] += eps
            lo[j] -= eps
            fd = (
                model.decision_function(hi[None, :])[0]
                - model.decision_function(lo[None, :])[0]
            ) / (2 * eps)
            assert grad[j] == pytest.approx(fd, abs=1e-4)

    def test_proba_gradient_scaling(self, trained):
        model, X, __ = trained
        raw_grad = model.input_gradient(X[:1], of="raw")[0]
        proba_grad = model.input_gradient(X[:1], of="proba")[0]
        from repro.models.logistic import sigmoid

        p = sigmoid(model.decision_function(X[:1]))[0]
        assert np.allclose(proba_grad, raw_grad * p * (1 - p), atol=1e-10)
        with pytest.raises(ValueError):
            model.input_gradient(X[:1], of="nonsense")

    def test_randomize_layer_changes_predictions(self, trained):
        import copy

        model, X, __ = trained
        clone = copy.deepcopy(model)
        before = clone.decision_function(X[:20])
        clone.randomize_layer(0, seed=9)
        after = clone.decision_function(X[:20])
        assert not np.allclose(before, after)

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError):
            MLPClassifier(epochs=1).fit(
                np.zeros((6, 2)), np.array([0, 1, 2, 0, 1, 2])
            )
