"""Frozen golden attributions, byte-stable across execution backends.

Each golden in ``tests/goldens/`` is the fully seeded output of one
end-to-end explanation family (kernel SHAP, sampling SHAP, TMC Data
Shapley, tuple Shapley, causal Shapley, LIME), frozen as a
:mod:`repro.persist` artifact — the explanation object itself in a
type-tag envelope — and regenerated only by a deliberate
``scripts/regen_goldens.py`` run. The case definitions are imported
from that script, so the regeneration fixtures and the assertions can
never drift apart. Loading a golden therefore exercises the persist
``from_dict`` path end to end: the comparison below is live explainer
output against a *deserialized* explanation object.

Two regressions are caught at 1e-12:

* a numeric drift in any explainer (refactors must be value-preserving
  unless the golden is consciously re-frozen), and
* any cross-backend divergence — every case is re-run under the serial,
  thread, process (fork), and spawn backends and held to the *same*
  frozen numbers, which is the exec subsystem's bitwise-identity
  contract expressed as an end-to-end test.
"""

from __future__ import annotations

import importlib.util
import os

import numpy as np
import pytest

from repro.core.explanation import DataAttribution, FeatureAttribution
from repro.persist import loads

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "goldens")
REGEN = os.path.join(REPO_ROOT, "scripts", "regen_goldens.py")

ATOL = 1e-12


def _load_regen():
    spec = importlib.util.spec_from_file_location("regen_goldens", REGEN)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


regen = _load_regen()

BACKENDS = ("serial", "thread", "process", "spawn")

# What each golden artifact must deserialize into — a registered
# explanation class for the attribution families, a plain dict for the
# tuple-Shapley scores and the frozen db planner explain_plan() texts.
ARTIFACT_KINDS = {
    "kernel_shap": FeatureAttribution,
    "sampling_shap": FeatureAttribution,
    "tmc_datashapley": DataAttribution,
    "tuple_shapley": dict,
    "causal_shapley": FeatureAttribution,
    "lime": FeatureAttribution,
    "db_plans": dict,
}


def _golden(name: str) -> dict:
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    with open(path, encoding="utf-8") as fh:
        return loads(fh.read())


def _assert_matches(expected, actual, context: str):
    assert set(expected) == set(actual), context
    for key, want in expected.items():
        got = actual[key]
        if isinstance(want, str) or isinstance(got, str):
            # The db plan goldens freeze explain_plan() text verbatim.
            assert want == got, (
                f"{context}[{key}]: expected {want!r}, got {got!r}"
            )
            continue
        assert np.allclose(np.asarray(want, dtype=float),
                           np.asarray(got, dtype=float),
                           atol=ATOL, rtol=0.0), (
            f"{context}[{key}]: expected {want}, got {got}"
        )


def test_every_case_has_a_golden_and_vice_versa():
    on_disk = {f[:-5] for f in os.listdir(GOLDEN_DIR) if f.endswith(".json")}
    assert on_disk == set(regen.CASES)
    assert set(ARTIFACT_KINDS) == set(regen.CASES)


@pytest.mark.parametrize("name", sorted(ARTIFACT_KINDS))
def test_goldens_deserialize_into_explanation_objects(name):
    golden = _golden(name)
    assert golden["case"] == name
    assert isinstance(golden["artifact"], ARTIFACT_KINDS[name])


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(regen.CASES))
def test_golden_attributions(name, backend):
    golden = _golden(name)
    assert golden["case"] == name
    outputs = regen.CASES[name](backend=backend)
    _assert_matches(regen.golden_view(name, golden["artifact"]),
                    regen.golden_view(name, outputs), f"{name}/{backend}")
