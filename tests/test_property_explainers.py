"""Property-based tests across explainers on randomized models/games.

These are the invariants that must hold for *every* input, not just the
fixtures: TreeSHAP equals brute force on random trees, Kernel SHAP with
full enumeration equals exact on random games, the circuit pipeline
agrees with its tree on random data, and data valuations respect the
efficiency identity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_classification
from repro.logic import binarize_matrix, compile_tree, conditional_expectation
from repro.models import DecisionTreeClassifier, DecisionTreeRegressor
from repro.shapley import (
    TreeShapExplainer,
    exact_shapley,
    kernel_shap,
    tree_shap_values,
)


@given(seed=st.integers(0, 10_000), depth=st.integers(1, 6),
       n_features=st.integers(2, 6))
@settings(max_examples=20, deadline=None)
def test_treeshap_equals_bruteforce_on_random_trees(seed, depth, n_features):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (150, n_features))
    y = rng.normal(0, 1, 150)
    tree = DecisionTreeRegressor(max_depth=depth, min_samples_leaf=5)
    tree.fit(X, y)
    explainer = TreeShapExplainer(tree)
    x = X[int(rng.integers(0, 150))]
    fast = explainer.explain(x).values
    reference = exact_shapley(explainer.value_function(x), n_features)
    assert np.allclose(fast, reference, atol=1e-9)


@given(seed=st.integers(0, 10_000), n=st.integers(2, 7))
@settings(max_examples=20, deadline=None)
def test_kernel_shap_full_enumeration_is_exact(seed, n):
    rng = np.random.default_rng(seed)
    table = rng.normal(0, 1, 2 ** n)

    def v(masks):
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        return table[masks @ (1 << np.arange(n))]

    phi, base = kernel_shap(v, n, n_samples=2 ** n)
    reference = exact_shapley(v, n)
    assert np.allclose(phi, reference, atol=1e-7)
    assert base == pytest.approx(table[0])


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_circuit_always_agrees_with_tree(seed):
    data = make_classification(200, n_features=5, n_informative=3, seed=seed)
    Xb, __ = binarize_matrix(data.X)
    tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(Xb, data.y)
    try:
        circuit = compile_tree(tree.tree_, 5, positive_class=1)
    except ValueError:
        return  # tree never predicts the positive class: nothing to check
    rng = np.random.default_rng(seed)
    assignments = (rng.random((50, 5)) > 0.5).astype(float)
    for a in assignments:
        assert circuit.evaluate(a.astype(bool)) == (
            tree.predict(a[None, :])[0] == 1
        )
    # conditional expectation at the full mask is the indicator
    x = assignments[0]
    value = conditional_expectation(
        circuit, x.astype(bool), np.ones(5, dtype=bool), np.full(5, 0.5)
    )
    assert value == float(tree.predict(x[None, :])[0] == 1)


@given(seed=st.integers(0, 10_000), n_perm=st.sampled_from([8, 24]))
@settings(max_examples=10, deadline=None)
def test_tmc_shapley_efficiency_identity(seed, n_perm):
    """Per-permutation marginals telescope, so with NO truncation the
    estimator satisfies Σφ = U(D) − U(∅) exactly for any seed."""
    from repro.datavalue import UtilityFunction, tmc_shapley
    from repro.models import KNeighborsClassifier

    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (24, 2))
    y = (X[:, 0] + 0.3 * rng.normal(0, 1, 24) > 0).astype(int)
    if len(np.unique(y)) < 2:
        return

    class TinyKNN(KNeighborsClassifier):
        def fit(self, Xf, yf):
            self.n_neighbors = min(3, np.atleast_2d(Xf).shape[0])
            return super().fit(Xf, yf)

    utility = UtilityFunction(
        lambda: TinyKNN(3), X[:16], y[:16], X[16:], y[16:]
    )
    values = tmc_shapley(
        utility, n_permutations=n_perm,
        truncation_tolerance=0.0,  # disable truncation
        seed=seed,
    )
    gap = values.values.sum() - (utility.full_score() - utility.empty_score)
    assert abs(gap) < 1e-9


@given(seed=st.integers(0, 10_000), k=st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_knn_shapley_efficiency_identity(seed, k):
    from repro.datavalue import knn_shapley

    rng = np.random.default_rng(seed)
    X_train = rng.normal(0, 1, (20, 2))
    y_train = rng.integers(0, 2, 20)
    X_val = rng.normal(0, 1, (6, 2))
    y_val = rng.integers(0, 2, 6)
    att = knn_shapley(X_train, y_train, X_val, y_val, k=k)
    # Σφ equals mean top-k match rate over validation points (U(∅) = 0).
    expected = 0.0
    for xv, yv in zip(X_val, y_val):
        d = np.linalg.norm(X_train - xv, axis=1)
        nearest = np.argsort(d, kind="stable")[:k]
        expected += np.mean(y_train[nearest] == yv)
    expected /= len(y_val)
    assert att.values.sum() == pytest.approx(expected, abs=1e-10)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_lime_ridge_reduces_to_ols_limit(seed):
    """With alpha→0 and uniform weights, LIME's core regression is OLS."""
    from repro.surrogate import weighted_ridge

    rng = np.random.default_rng(seed)
    Z = rng.normal(0, 1, (60, 3))
    beta = rng.normal(0, 2, 3)
    y = Z @ beta + 1.5
    coef, intercept = weighted_ridge(Z, y, np.ones(60), alpha=1e-10)
    assert np.allclose(coef, beta, atol=1e-5)
    assert intercept == pytest.approx(1.5, abs=1e-5)
