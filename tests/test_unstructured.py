"""Tests for gradient attributions, sanity checks and text substrate."""

import numpy as np
import pytest

from repro.datasets import make_grid_images
from repro.models import MLPClassifier
from repro.unstructured import (
    BagOfWords,
    TextPipeline,
    attribution_similarity,
    gradient_times_input,
    integrated_gradients,
    make_sentiment_corpus,
    model_randomization_test,
    occlusion,
    saliency,
    smoothgrad,
)


@pytest.fixture(scope="module")
def grid_setup():
    X, y, relevance = make_grid_images(300, size=8, seed=71)
    model = MLPClassifier(hidden=(24,), epochs=80, lr=0.03, seed=0).fit(X, y)
    return model, X, y, relevance


def relevance_hit_rate(values, relevant_mask, k=9):
    top = np.argsort(-np.abs(values))[:k]
    return np.mean(relevant_mask[top])


class TestSaliency:
    def test_model_learns_task(self, grid_setup):
        model, X, y, __ = grid_setup
        assert model.score(X, y) > 0.85

    def test_saliency_concentrates_on_discriminative_pixels(self, grid_setup):
        model, X, y, relevance = grid_setup
        rates = []
        for i in range(10):
            att = saliency(model, X[i])
            discriminative = relevance[0] | relevance[1]
            rates.append(relevance_hit_rate(att.values, discriminative))
        # both quadrants are discriminative; random would hit ~28%.
        assert np.mean(rates) > 0.5

    def test_signed_option(self, grid_setup):
        model, X, __, ___ = grid_setup
        unsigned = saliency(model, X[0]).values
        signed = saliency(model, X[0], signed=True).values
        assert np.all(unsigned >= 0)
        assert np.allclose(np.abs(signed), unsigned)


class TestIntegratedGradients:
    def test_completeness(self, grid_setup):
        model, X, __, ___ = grid_setup
        for i in range(5):
            att = integrated_gradients(model, X[i], n_steps=100)
            assert att.additivity_gap() < 0.02

    def test_zero_baseline_default(self, grid_setup):
        model, X, __, ___ = grid_setup
        att = integrated_gradients(model, X[0])
        explicit = integrated_gradients(model, X[0],
                                        baseline=np.zeros_like(X[0]))
        assert np.allclose(att.values, explicit.values)


class TestSmoothGrad:
    def test_reduces_variance_relative_to_raw_gradient(self, grid_setup):
        model, X, __, ___ = grid_setup
        x = X[0]
        # Perturb x slightly: smoothgrad maps should move less than raw.
        x2 = x + np.random.default_rng(1).normal(0, 0.05, x.shape)
        raw_shift = np.linalg.norm(
            saliency(model, x).values - saliency(model, x2).values
        )
        smooth_shift = np.linalg.norm(
            smoothgrad(model, x, n_samples=60, seed=0).values
            - smoothgrad(model, x2, n_samples=60, seed=0).values
        )
        assert smooth_shift <= raw_shift * 1.1


class TestOcclusion:
    def test_occluding_patch_pixels_matters_most(self, grid_setup):
        model, X, y, relevance = grid_setup
        att = occlusion(model, X[0], grid_size=8, patch=2)
        discriminative = relevance[0] | relevance[1]
        assert relevance_hit_rate(att.values, discriminative) > 0.4

    def test_shape_validation(self, grid_setup):
        model, X, __, ___ = grid_setup
        with pytest.raises(ValueError):
            occlusion(model, X[0], grid_size=5)


def test_gradient_times_input_zero_at_zero_pixels(grid_setup):
    model, X, __, ___ = grid_setup
    x = X[0].copy()
    x[0] = 0.0
    att = gradient_times_input(model, x)
    assert att.values[0] == 0.0


class TestSanityChecks:
    def test_randomization_destroys_saliency(self, grid_setup):
        model, X, __, ___ = grid_setup
        results = model_randomization_test(
            model, lambda m, x: saliency(m, x), X[:6], seed=0
        )
        assert results[0]["similarity"] == 1.0
        # full randomization must reduce similarity well below control
        assert results[-1]["similarity"] < 0.8

    def test_similarity_metric_bounds(self, rng):
        a = rng.normal(0, 1, 50)
        assert attribution_similarity(a, a) == pytest.approx(1.0)
        assert -1.0 <= attribution_similarity(a, rng.normal(0, 1, 50)) <= 1.0


class TestTextSubstrate:
    def test_bag_of_words_counts(self):
        bow = BagOfWords().fit(["a b b", "c"])
        X = bow.transform(["b b c unknown"])
        as_dict = dict(zip(bow.vocabulary_, X[0]))
        assert as_dict == {"a": 0.0, "b": 2.0, "c": 1.0}

    def test_pipeline_learns_sentiment(self):
        from repro.models import LogisticRegression

        docs, labels = make_sentiment_corpus(400, seed=0)
        pipe = TextPipeline(lambda: LogisticRegression(alpha=1.0))
        pipe.fit(docs[:300], labels[:300])
        assert pipe.score(docs[300:], labels[300:]) > 0.75

    def test_lime_text_on_pipeline(self):
        from repro.models import LogisticRegression
        from repro.surrogate import LimeTextExplainer

        docs, labels = make_sentiment_corpus(400, seed=1)
        pipe = TextPipeline(lambda: LogisticRegression(alpha=1.0))
        pipe.fit(docs, labels)
        positive_doc = "the movie was great and the acting was excellent"
        att = LimeTextExplainer(
            pipe.predict_proba_docs, n_samples=400, seed=0
        ).explain(positive_doc)
        scores = att.as_dict()
        assert scores["great"] > 0 or scores["excellent"] > 0
