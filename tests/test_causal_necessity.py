"""Tests for LEWIS necessity/sufficiency counterfactual scores."""

import numpy as np
import pytest

from repro.causal import LewisExplainer, StructuralCausalModel


@pytest.fixture(scope="module")
def gate_scm():
    """x ∈ {0,1} fully determines the model; z is irrelevant noise."""
    scm = StructuralCausalModel()
    scm.add_variable("x", [], lambda p, u: (u > 0.5).astype(float),
                     noise=lambda rng, n: rng.random(n))
    scm.add_variable("z", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    return scm


def deterministic_model(X):
    return X[:, 0]  # output = x exactly


@pytest.fixture(scope="module")
def lewis(gate_scm):
    return LewisExplainer(
        deterministic_model, gate_scm, ["x", "z"], n_units=3000, seed=0
    )


def test_fully_determining_attribute_scores_one(lewis):
    scores = lewis.scores("x", value=1.0, contrast_value=0.0)
    assert scores.necessity == pytest.approx(1.0)
    assert scores.sufficiency == pytest.approx(1.0)
    assert scores.necessity_sufficiency == pytest.approx(1.0)


def test_irrelevant_attribute_scores_zero(lewis):
    scores = lewis.scores("z", value=1.0, contrast_value=-1.0)
    assert scores.necessity == pytest.approx(0.0, abs=0.02)
    assert scores.sufficiency == pytest.approx(0.0, abs=0.02)
    assert scores.necessity_sufficiency == pytest.approx(0.0, abs=0.02)


def test_ranking_puts_cause_first(lewis):
    ranked = lewis.rank_attributes({
        "x": (1.0, 0.0),
        "z": (1.0, -1.0),
    })
    assert ranked[0].attribute == "x"
    assert ranked[0].necessity_sufficiency > ranked[1].necessity_sufficiency


def test_unknown_attribute_rejected(lewis):
    with pytest.raises(KeyError):
        lewis.scores("ghost", 1.0, 0.0)


def test_recourse_options_order(gate_scm):
    lewis = LewisExplainer(
        deterministic_model, gate_scm, ["x", "z"], n_units=3000, seed=1
    )
    options = lewis.recourse_options(
        unit_values={"x": 0.0},
        candidate_interventions={"x": [1.0], "z": [2.0]},
    )
    # Setting x to 1 flips everyone; touching z flips no one.
    assert options[0][:2] == ("x", 1.0)
    assert options[0][2] == pytest.approx(1.0)
    assert options[-1][2] == pytest.approx(0.0, abs=0.02)


def test_scores_on_loan_model(loan_scm, loan_data):
    from repro.models import LogisticRegression

    model = LogisticRegression(alpha=1.0).fit(loan_data.X, loan_data.y)
    lewis = LewisExplainer(
        model, loan_scm, loan_data.feature_names, n_units=1500, seed=2
    )
    income = lewis.scores("income", value=6.0, contrast_value=1.0)
    gender = lewis.scores("gender", value=1.0, contrast_value=0.0)
    # Intervening on income must be far more necessary/sufficient for
    # approval than gender (which acts only through mediators the
    # intervention on gender also moves — but much more weakly).
    assert income.necessity_sufficiency > gender.necessity_sufficiency
    assert 0.0 <= gender.necessity <= 1.0
