"""Tests for sufficient reasons / prime implicants on decision trees."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.logic import (
    all_minimal_sufficient_reasons,
    is_sufficient,
    minimal_sufficient_reason,
    necessary_features,
    possible_classes,
    reason_to_rule,
)
from repro.models import DecisionTreeClassifier


@pytest.fixture(scope="module")
def tree_and_data():
    data = make_classification(400, n_features=5, seed=23)
    tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(data.X, data.y)
    return tree, data


def test_full_feature_set_always_sufficient(tree_and_data):
    tree, data = tree_and_data
    for x in data.X[:5]:
        assert is_sufficient(tree, x, set(range(5)))


def test_empty_set_sufficient_only_for_constant_tree(tree_and_data):
    tree, data = tree_and_data
    if tree.tree_.n_leaves > 1:
        # A non-trivial tree must output both classes over free inputs
        # for at least some instance... check the defining equivalence.
        x = data.X[0]
        assert is_sufficient(tree, x, set()) == (
            len(possible_classes(tree, x, set())) == 1
        )


def test_minimal_reason_is_sufficient_and_minimal(tree_and_data):
    tree, data = tree_and_data
    for x in data.X[:10]:
        reason = minimal_sufficient_reason(tree, x)
        assert is_sufficient(tree, x, reason)
        for feature in reason:
            assert not is_sufficient(tree, x, reason - {feature})


def test_all_minimal_reasons_contains_greedy_one(tree_and_data):
    tree, data = tree_and_data
    x = data.X[1]
    greedy = minimal_sufficient_reason(tree, x)
    enumerated = all_minimal_sufficient_reasons(tree, x)
    assert any(reason == greedy for reason in enumerated)
    # pairwise non-containment (all are subset-minimal)
    for a in enumerated:
        for b in enumerated:
            if a is not b:
                assert not a < b


def test_necessary_features_in_every_reason(tree_and_data):
    tree, data = tree_and_data
    x = data.X[2]
    necessary = necessary_features(tree, x)
    for reason in all_minimal_sufficient_reasons(tree, x):
        assert necessary <= reason


def test_reason_rule_statistics(tree_and_data):
    tree, data = tree_and_data
    x = data.X[3]
    reason = minimal_sufficient_reason(tree, x)
    rule = reason_to_rule(tree, x, reason, reference=data.X)
    # Empirical precision of the interval generalization is near-perfect;
    # the pointwise guarantee itself (exact reason values) is absolute
    # and is asserted by test_minimal_reason_is_sufficient_and_minimal.
    assert rule.precision >= 0.9
    assert rule.holds(x[None, :])[0]
    assert 0.0 <= rule.coverage <= 1.0
    # Precision matches the definition exactly.
    covered = data.X[rule.holds(data.X)]
    expected = np.mean(tree.predict(covered) == rule.outcome)
    assert rule.precision == pytest.approx(expected)


def test_stump_reason_is_the_split_feature():
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, (200, 3))
    y = (X[:, 1] > 0).astype(int)
    stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
    reason = minimal_sufficient_reason(stump, X[0])
    assert reason == {1}
    assert necessary_features(stump, X[0]) == {1}
