"""Tests for circuit compilation, model counting and tractable SHAP."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.logic import (
    AndNode,
    Literal,
    OrNode,
    TrueNode,
    binarize_matrix,
    circuit_shap,
    compile_tree,
    conditional_expectation,
    model_count,
)
from repro.models import DecisionTreeClassifier
from repro.shapley import exact_shapley


@pytest.fixture(scope="module")
def compiled():
    data = make_classification(400, n_features=5, seed=17)
    Xb, __ = binarize_matrix(data.X)
    tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(Xb, data.y)
    circuit = compile_tree(tree.tree_, 5, positive_class=1)
    return tree, circuit, Xb


class TestCircuitStructure:
    def test_and_rejects_shared_variables(self):
        with pytest.raises(ValueError):
            AndNode([Literal(0, True), Literal(0, False)])

    def test_or_requires_smoothness(self):
        with pytest.raises(ValueError):
            OrNode([Literal(0, True), Literal(1, True)])

    def test_true_node_always_true(self):
        assert TrueNode(3).evaluate(np.zeros(5, dtype=bool))

    def test_compile_requires_binary_features(self):
        data = make_classification(200, n_features=3, n_informative=2, seed=18)
        tree = DecisionTreeClassifier(max_depth=3).fit(data.X, data.y)
        with pytest.raises(ValueError):
            compile_tree(tree.tree_, 3)


class TestCompiledCircuit:
    def test_agrees_with_tree_everywhere(self, compiled):
        tree, circuit, __ = compiled
        # exhaustive over all 2^5 assignments
        for code in range(32):
            assignment = np.array(
                [(code >> j) & 1 for j in range(5)], dtype=float
            )
            expected = tree.predict(assignment[None, :])[0] == 1
            assert circuit.evaluate(assignment.astype(bool)) == expected

    def test_smooth_over_all_variables(self, compiled):
        __, circuit, __ = compiled
        assert circuit.variables == frozenset(range(5))

    def test_model_count_matches_enumeration(self, compiled):
        tree, circuit, __ = compiled
        count = sum(
            int(tree.predict(np.array(
                [(code >> j) & 1 for j in range(5)], dtype=float
            )[None, :])[0] == 1)
            for code in range(32)
        )
        assert model_count(circuit, 5) == count

    def test_conditional_expectation_uniform(self, compiled):
        __, circuit, __ = compiled
        p = np.full(5, 0.5)
        nothing_fixed = conditional_expectation(
            circuit, np.zeros(5, dtype=bool), np.zeros(5, dtype=bool), p
        )
        assert nothing_fixed == pytest.approx(model_count(circuit, 5) / 32)

    def test_conditional_expectation_full_mask_is_indicator(self, compiled):
        tree, circuit, Xb = compiled
        x = Xb[0].astype(bool)
        value = conditional_expectation(
            circuit, x, np.ones(5, dtype=bool), np.full(5, 0.5)
        )
        assert value == float(tree.predict(Xb[:1])[0] == 1)


class TestCircuitShap:
    def test_matches_exact_enumeration(self, compiled):
        __, circuit, Xb = compiled
        p = Xb.mean(axis=0)
        for row in (0, 3, 11):
            x = Xb[row]

            def v(masks):
                masks = np.atleast_2d(masks)
                return np.array([
                    conditional_expectation(circuit, x, m, p) for m in masks
                ])

            reference = exact_shapley(v, 5)
            fast = circuit_shap(circuit, x, p)
            assert np.allclose(fast, reference, atol=1e-10)

    def test_efficiency(self, compiled):
        __, circuit, Xb = compiled
        p = np.full(5, 0.5)
        x = Xb[2]
        phi = circuit_shap(circuit, x, p)
        f_x = float(circuit.evaluate(x.astype(bool)))
        expectation = model_count(circuit, 5) / 32
        assert phi.sum() == pytest.approx(f_x - expectation, abs=1e-10)

    def test_wrong_feature_count_rejected(self, compiled):
        __, circuit, __ = compiled
        with pytest.raises(ValueError):
            circuit_shap(circuit, np.zeros(7))


def test_binarize_matrix_round_trip_thresholds():
    X = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
    Xb, thresholds = binarize_matrix(X)
    assert thresholds.tolist() == [2.0, 20.0]
    assert set(np.unique(Xb)) <= {0.0, 1.0}
    Xb2, __ = binarize_matrix(X, thresholds)
    assert np.allclose(Xb, Xb2)
