"""Tests for TreeSHAP against the brute-force EXPVALUE oracle."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
)
from repro.shapley import TreeShapExplainer, exact_shapley, tree_expected_value


@pytest.fixture(scope="module")
def data():
    return make_classification(300, n_features=6, seed=13)


def assert_matches_oracle(explainer, X, rows=(0, 5, 17)):
    for i in rows:
        fast = explainer.explain(X[i]).values
        reference = exact_shapley(explainer.value_function(X[i]), X.shape[1])
        assert np.allclose(fast, reference, atol=1e-10), f"row {i}"


def test_classifier_tree_matches_exact(data):
    tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(data.X, data.y)
    assert_matches_oracle(TreeShapExplainer(tree), data.X)


def test_regressor_tree_matches_exact(data):
    y = data.X[:, 0] * 2 + data.X[:, 1] ** 2
    tree = DecisionTreeRegressor(max_depth=5).fit(data.X, y)
    assert_matches_oracle(TreeShapExplainer(tree), data.X)


def test_gbm_matches_exact(data):
    gbm = GradientBoostingClassifier(n_estimators=10, max_depth=3, seed=0)
    gbm.fit(data.X, data.y)
    assert_matches_oracle(TreeShapExplainer(gbm), data.X, rows=(0, 3))


def test_gbm_regressor_matches_exact(data):
    y = data.X[:, 0] - 0.5 * data.X[:, 2]
    gbm = GradientBoostingRegressor(n_estimators=8, max_depth=2, seed=0)
    gbm.fit(data.X, y)
    assert_matches_oracle(TreeShapExplainer(gbm), data.X, rows=(0, 3))


def test_forest_matches_exact(data):
    forest = RandomForestClassifier(n_estimators=5, max_depth=4, seed=0)
    forest.fit(data.X, data.y)
    assert_matches_oracle(TreeShapExplainer(forest), data.X, rows=(0,))


def test_local_accuracy_additivity(data):
    gbm = GradientBoostingClassifier(n_estimators=15, max_depth=3, seed=0)
    gbm.fit(data.X, data.y)
    explainer = TreeShapExplainer(gbm)
    for i in range(8):
        att = explainer.explain(data.X[i])
        assert att.additivity_gap() < 1e-9


def test_expected_value_matches_empty_coalition(data):
    tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(data.X, data.y)
    explainer = TreeShapExplainer(tree)
    v = explainer.value_function(data.X[0])
    empty = v(np.zeros((1, data.n_features), dtype=bool))[0]
    assert explainer.expected_value == pytest.approx(empty)


def test_full_coalition_is_model_output(data):
    tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(data.X, data.y)
    explainer = TreeShapExplainer(tree)
    x = data.X[7]
    v = explainer.value_function(x)
    full = v(np.ones((1, data.n_features), dtype=bool))[0]
    assert full == pytest.approx(tree.predict_proba(x[None, :])[0, 1])


def test_expvalue_respects_mask(data):
    tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(data.X, data.y)
    x = data.X[0]
    all_present = np.ones(data.n_features, dtype=bool)
    assert tree_expected_value(tree.tree_, x, all_present, 1) == pytest.approx(
        tree.predict_proba(x[None, :])[0, 1]
    )


def test_irrelevant_feature_gets_zero(data):
    # Train on a single informative feature; other columns never split.
    y = (data.X[:, 0] > 0).astype(int)
    tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(data.X, y)
    att = TreeShapExplainer(tree).explain(data.X[0])
    used = tree.tree_.used_features()
    for j in range(data.n_features):
        if j not in used:
            assert att.values[j] == 0.0


def test_unsupported_model_rejected():
    with pytest.raises(TypeError):
        TreeShapExplainer(object())
