"""Tests for Apriori and FP-Growth, including the equivalence property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_baskets
from repro.rules import apriori, association_rules, fpgrowth


SIMPLE = [
    frozenset({"a", "b", "c"}),
    frozenset({"a", "b"}),
    frozenset({"a", "c"}),
    frozenset({"b", "c"}),
    frozenset({"a", "b", "c"}),
]


class TestApriori:
    def test_supports_on_known_transactions(self):
        itemsets = apriori(SIMPLE, min_support=0.5)
        assert itemsets[frozenset({"a"})] == pytest.approx(0.8)
        assert itemsets[frozenset({"a", "b"})] == pytest.approx(0.6)
        assert frozenset({"a", "b", "c"}) not in itemsets  # support 0.4

    def test_anti_monotonicity(self):
        itemsets = apriori(SIMPLE, min_support=0.2)
        for itemset, support in itemsets.items():
            for item in itemset:
                subset = itemset - {item}
                if subset:
                    assert itemsets[subset] >= support - 1e-12

    def test_empty_and_validation(self):
        assert apriori([], 0.5) == {}
        with pytest.raises(ValueError):
            apriori(SIMPLE, 0.0)
        with pytest.raises(ValueError):
            apriori(SIMPLE, 1.5)


class TestFPGrowth:
    def test_matches_apriori_on_known_data(self):
        for support in (0.2, 0.4, 0.6):
            a = apriori(SIMPLE, support)
            f = fpgrowth(SIMPLE, support)
            assert a.keys() == f.keys()
            for k in a:
                assert a[k] == pytest.approx(f[k])

    def test_recovers_planted_patterns(self):
        transactions, patterns = make_baskets(
            600, n_items=25, n_patterns=3, pattern_prob=0.35, seed=2
        )
        found = fpgrowth(transactions, min_support=0.2)
        for pattern in patterns:
            assert pattern in found, f"planted pattern {pattern} missed"

    @given(st.lists(
        st.frozensets(st.integers(0, 8), min_size=0, max_size=5),
        min_size=1, max_size=40,
    ), st.sampled_from([0.1, 0.25, 0.5]))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, transactions, support):
        a = apriori(transactions, support)
        f = fpgrowth(transactions, support)
        assert a.keys() == f.keys()
        for k in a:
            assert a[k] == pytest.approx(f[k])


class TestAssociationRules:
    def test_confidence_and_lift(self):
        itemsets = apriori(SIMPLE, 0.2)
        rules = association_rules(itemsets, min_confidence=0.7)
        by_parts = {
            (rule.antecedent, rule.consequent): rule for rule in rules
        }
        key = (frozenset({"a"}), frozenset({"b"}))
        assert key in by_parts
        rule = by_parts[key]
        assert rule.confidence == pytest.approx(0.6 / 0.8)
        assert rule.lift == pytest.approx((0.6 / 0.8) / 0.8)

    def test_sorted_by_confidence(self):
        itemsets = apriori(SIMPLE, 0.2)
        rules = association_rules(itemsets, min_confidence=0.0)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_min_confidence_filters(self):
        itemsets = apriori(SIMPLE, 0.2)
        assert all(
            r.confidence >= 0.9
            for r in association_rules(itemsets, min_confidence=0.9)
        )

    def test_rule_rendering(self):
        itemsets = apriori(SIMPLE, 0.2)
        rules = association_rules(itemsets, 0.5)
        assert "->" in str(rules[0])
