"""Amortized batch explanation (PR 7): parity, telemetry, fallbacks.

The contract under test: ``explain_batch`` drawing one shared
:class:`~repro.games.plan.CoalitionPlan` per batch (and, for TreeSHAP,
one cached :class:`~repro.shapley.tree.TreePrecompute` per model) is a
pure performance change —

* sampling / kernel / QII / conditional SHAP batch attributions are
  **bitwise identical** to the serial per-row ``explain`` loop at equal
  seeds, on every execution backend;
* the fused TreeSHAP kernel is bitwise stable across backends and batch
  splits, and agrees with the scalar recursion to float accumulation
  order;
* ``REPRO_BATCH_PLAN=0`` / ``REPRO_PRECOMPUTE=0`` restore the per-row
  loop end to end, guard budgets keep their per-row semantics by
  skipping the fused path, and a mid-fuse failure degrades to the loop
  while counting ``coalition.plan.fallbacks``;
* plan reuse is observable: ``coalition.plan.built`` / ``.reused``
  counters and the batch span's ``amortized`` attribute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.coalition_engine import CoalitionEngine
from repro.robust import GuardConfig
from repro.shapley import (
    ConditionalShapExplainer,
    KernelShapExplainer,
    QIIExplainer,
    SamplingShapleyExplainer,
    TreeShapExplainer,
)

BACKENDS = ("serial", "thread", "process")
FAMILIES = ("sampling", "kernel", "qii", "conditional")
N_ROWS = 5


@pytest.fixture(autouse=True)
def _clean_tracer():
    obs.get_tracer().reset()
    yield
    obs.get_tracer().reset()


def make_explainer(family: str, model, data):
    """A fresh, small-budget explainer (fresh plan store per call)."""
    if family == "sampling":
        return SamplingShapleyExplainer(
            model, data.X, n_permutations=8, max_background=20, seed=5
        )
    if family == "kernel":
        return KernelShapExplainer(
            model, data.X, n_samples=40, max_background=20, seed=5
        )
    if family == "qii":
        return QIIExplainer(
            model, data.X[:20], n_permutations=6, n_samples=8, seed=5
        )
    if family == "conditional":
        return ConditionalShapExplainer(
            model, data.X[:60], k=8, n_permutations=6, seed=5
        )
    raise AssertionError(family)


def _batch_span():
    spans = [s for s in obs.get_tracer().spans() if s.name == "explain_batch"]
    assert spans, "no explain_batch span recorded"
    return spans[-1]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_amortized_batch_bitwise_parity(family, backend, loan_data,
                                        loan_logistic):
    """Shared-plan batches match the per-row loop bit for bit."""
    X = loan_data.X[:N_ROWS]
    reference = [
        make_explainer(family, loan_logistic, loan_data).explain(x)
        for x in X
    ]
    batch = make_explainer(family, loan_logistic, loan_data).explain_batch(
        X, backend=backend, n_jobs=2, n_procs=2
    )
    assert len(batch) == N_ROWS
    for ref, att in zip(reference, batch):
        assert np.array_equal(ref.values, att.values)
        assert ref.base_value == att.base_value
        assert ref.prediction == att.prediction
    assert _batch_span().attrs["amortized"] is True


def test_plan_counters_and_reuse(loan_data, loan_logistic):
    """One plan per (explainer, config); later batches ride the store."""
    explainer = make_explainer("sampling", loan_logistic, loan_data)
    X = loan_data.X[:N_ROWS]
    built = obs.counter("coalition.plan.built")
    reused = obs.counter("coalition.plan.reused")

    b0, r0 = built.value, reused.value
    first = explainer.explain_batch(X)
    assert built.value - b0 == 1
    assert reused.value - r0 == N_ROWS - 1

    b1, r1 = built.value, reused.value
    second = explainer.explain_batch(X)
    assert built.value - b1 == 0
    assert reused.value - r1 == N_ROWS
    for a, b in zip(first, second):
        assert np.array_equal(a.values, b.values)


def test_batch_plan_kill_switch(monkeypatch, loan_data, loan_logistic):
    """REPRO_BATCH_PLAN=0 restores the per-row loop, same numbers."""
    X = loan_data.X[:3]
    amortized = make_explainer("sampling", loan_logistic,
                               loan_data).explain_batch(X)
    monkeypatch.setenv("REPRO_BATCH_PLAN", "0")
    built = obs.counter("coalition.plan.built").value
    looped = make_explainer("sampling", loan_logistic,
                            loan_data).explain_batch(X)
    assert obs.counter("coalition.plan.built").value == built
    assert _batch_span().attrs["amortized"] is False
    for a, b in zip(amortized, looped):
        assert np.array_equal(a.values, b.values)


def test_guard_budgets_keep_per_row_loop(loan_data, loan_logistic):
    """Per-row deadline/query budgets veto the fused path entirely."""
    explainer = SamplingShapleyExplainer(
        loan_logistic, loan_data.X, n_permutations=8, max_background=20,
        seed=5, guard=GuardConfig(query_budget=10**9),
    )
    plain = make_explainer("sampling", loan_logistic, loan_data)
    X = loan_data.X[:3]
    guarded_atts = explainer.explain_batch(X)
    assert _batch_span().attrs["amortized"] is False
    for ref, att in zip(plain.explain_batch(X), guarded_atts):
        assert np.array_equal(ref.values, att.values)


def test_fused_failure_falls_back_and_counts(loan_data, loan_logistic):
    """A mid-fuse exception degrades to the loop + fallback counter."""

    class Exploding(SamplingShapleyExplainer):
        def _amortized_rows(self, X, lo, hi, ctx, **kwargs):
            raise RuntimeError("fused path down")

    explainer = Exploding(
        loan_logistic, loan_data.X, n_permutations=8, max_background=20,
        seed=5,
    )
    X = loan_data.X[:3]
    fallbacks = obs.counter("coalition.plan.fallbacks").value
    batch = explainer.explain_batch(X)
    assert obs.counter("coalition.plan.fallbacks").value == fallbacks + 1
    assert _batch_span().attrs["amortized"] is False
    reference = make_explainer("sampling", loan_logistic, loan_data)
    for ref, att in zip((reference.explain(x) for x in X), batch):
        assert np.array_equal(ref.values, att.values)


def test_feature_names_ride_the_amortized_path(loan_data, loan_logistic):
    """``feature_names`` is the one kwarg the fused path serves."""
    explainer = make_explainer("sampling", loan_logistic, loan_data)
    names = [f"f{i}" for i in range(loan_data.X.shape[1])]
    built = obs.counter("coalition.plan.built").value
    batch = explainer.explain_batch(loan_data.X[:2], feature_names=names)
    assert obs.counter("coalition.plan.built").value == built + 1
    assert _batch_span().attrs["amortized"] is True
    assert all(att.feature_names == names for att in batch)


def test_batch_value_matrix_matches_value_function(loan_data, loan_logistic):
    """The fused grid equals the per-row value function, bit for bit."""
    engine = CoalitionEngine(loan_data.X, max_background=15,
                             max_batch_rows=64)
    rng = np.random.default_rng(3)
    masks = rng.random((9, loan_data.X.shape[1])) < 0.5
    X = loan_data.X[:4]
    model_fn = lambda rows: loan_logistic.predict_proba(rows)[:, -1]
    matrix = engine.batch_value_matrix(model_fn, X, masks)
    assert matrix.shape == (4, 9)
    for r in range(4):
        vf = engine.value_function(model_fn, X[r], cache=False)
        assert np.array_equal(matrix[r], vf(masks))


class TestTreeBatch:
    def test_backend_bitwise_stability(self, loan_split, loan_gbm):
        Xtr, __, __, __ = loan_split
        X = Xtr[:16]
        explainer = TreeShapExplainer(loan_gbm)
        serial = explainer.explain_batch(X, backend="serial")
        values = np.stack([a.values for a in serial])
        for backend in ("thread", "process"):
            rerun = explainer.explain_batch(X, backend=backend, n_procs=2)
            assert np.array_equal(
                values, np.stack([a.values for a in rerun])
            )
        assert _batch_span().attrs["amortized"] is True

    def test_fused_agrees_with_scalar_recursion(self, loan_split, loan_gbm):
        Xtr, __, __, __ = loan_split
        X = Xtr[:8]
        explainer = TreeShapExplainer(loan_gbm)
        batch = explainer.explain_batch(X)
        for x, att in zip(X, batch):
            scalar = explainer.explain(x)
            # Different child-visit order: equal to accumulation order,
            # not necessarily to the last ulp.
            assert np.allclose(att.values, scalar.values, atol=1e-9)
            assert att.base_value == scalar.base_value

    def test_precompute_kill_switch(self, monkeypatch, loan_split, loan_gbm):
        Xtr, __, __, __ = loan_split
        X = Xtr[:4]
        explainer = TreeShapExplainer(loan_gbm)
        monkeypatch.setenv("REPRO_PRECOMPUTE", "0")
        looped = explainer.explain_batch(X)
        assert _batch_span().attrs["amortized"] is False
        for x, att in zip(X, looped):
            assert np.array_equal(explainer.explain(x).values, att.values)

    def test_precompute_shared_across_instances(self, loan_gbm):
        a = TreeShapExplainer(loan_gbm)
        b = TreeShapExplainer(loan_gbm)
        assert a.precompute() is b.precompute()
        assert a.expected_value == b.precompute().expected_value

    def test_efficiency_of_fused_values(self, loan_split, loan_gbm):
        Xtr, __, __, __ = loan_split
        X = Xtr[:6]
        explainer = TreeShapExplainer(loan_gbm)
        for att in explainer.explain_batch(X):
            assert np.isclose(
                att.base_value + att.values.sum(), att.prediction,
                atol=1e-8,
            )
