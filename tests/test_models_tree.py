"""Tests for CART trees and the exported TreeStructure."""

import numpy as np
import pytest

from repro.datasets import make_classification, make_xor
from repro.models import DecisionTreeClassifier, DecisionTreeRegressor


def test_fits_axis_aligned_concept_perfectly():
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, (300, 2))
    y = (X[:, 0] > 0.2).astype(int)
    tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
    assert tree.score(X, y) == 1.0
    # The root split should be on feature 0 near 0.2.
    assert tree.tree_.feature[0] == 0
    assert tree.tree_.threshold[0] == pytest.approx(0.2, abs=0.05)


def test_solves_xor_given_enough_depth():
    # Greedy CART needs extra depth on XOR: no single split has gain, so
    # the first cuts land wherever sampling noise points (the classic
    # interaction blind spot the tutorial's LIME critique relies on too).
    data = make_xor(400, noise=0.0, seed=1)
    tree = DecisionTreeClassifier(max_depth=6).fit(data.X, data.y)
    assert tree.score(data.X, data.y) > 0.97


def test_max_depth_respected():
    data = make_classification(300, seed=2)
    tree = DecisionTreeClassifier(max_depth=3).fit(data.X, data.y)
    assert tree.tree_.depth(0) <= 3


def test_min_samples_leaf_respected():
    data = make_classification(200, seed=3)
    tree = DecisionTreeClassifier(min_samples_leaf=20).fit(data.X, data.y)
    structure = tree.tree_
    leaves = [n for n in range(structure.n_nodes) if structure.is_leaf(n)]
    assert all(structure.n_node_samples[n] >= 20 for n in leaves)


def test_predict_proba_matches_leaf_composition():
    data = make_classification(300, seed=4)
    tree = DecisionTreeClassifier(max_depth=2).fit(data.X, data.y)
    proba = tree.predict_proba(data.X)
    assert np.allclose(proba.sum(axis=1), 1.0)
    leaves = tree.tree_.apply(data.X)
    for leaf in np.unique(leaves):
        members = leaves == leaf
        empirical = np.mean(data.y[members] == tree.classes_[1])
        assert proba[members][0][1] == pytest.approx(empirical)


def test_entropy_criterion_works():
    data = make_classification(200, seed=5)
    tree = DecisionTreeClassifier(max_depth=4, criterion="entropy")
    assert tree.fit(data.X, data.y).score(data.X, data.y) > 0.8
    with pytest.raises(ValueError):
        DecisionTreeClassifier(criterion="nope")


def test_decision_path_consistent_with_apply():
    data = make_classification(100, seed=6)
    tree = DecisionTreeClassifier(max_depth=4).fit(data.X, data.y)
    x = data.X[0]
    path = tree.tree_.decision_path(x)
    node = 0
    for recorded, feature, threshold, went_left in path:
        assert recorded == node
        assert went_left == (x[feature] <= threshold)
        node = (tree.tree_.children_left[node] if went_left
                else tree.tree_.children_right[node])
    assert node == tree.tree_.apply(x[None, :])[0]


def test_sample_weight_shifts_leaf_probabilities():
    X = np.array([[0.0], [0.0], [1.0]])
    y = np.array([0, 1, 1])
    w = np.array([10.0, 1.0, 1.0])
    tree = DecisionTreeClassifier(max_depth=0).fit(X, y, sample_weight=w)
    proba = tree.predict_proba(np.array([[0.0]]))[0]
    assert proba[0] == pytest.approx(10 / 12)


class TestRegressor:
    def test_recovers_piecewise_constant(self):
        X = np.linspace(0, 1, 200)[:, None]
        y = np.where(X[:, 0] > 0.5, 3.0, -1.0)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree.score(X, y) == pytest.approx(1.0)
        assert tree.tree_.threshold[0] == pytest.approx(0.5, abs=0.01)

    def test_deeper_trees_reduce_training_error(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(0, 1, (300, 2))
        y = np.sin(5 * X[:, 0]) + X[:, 1] ** 2
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y).score(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y).score(X, y)
        assert deep > shallow

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(8).normal(0, 1, (50, 3))
        tree = DecisionTreeRegressor().fit(X, np.full(50, 2.5))
        assert tree.tree_.n_nodes == 1
        assert tree.predict(X)[0] == pytest.approx(2.5)
