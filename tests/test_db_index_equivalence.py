"""Differential harness: every planner path must equal the naive path.

The index/planner PR's contract is *answer equivalence*: for any
pipeline, :meth:`Query.execute` (index access paths, pushdown, join
strategy selection) returns exactly what :meth:`Query.legacy_execute`
(the unoptimized operator chain) returns — same columns, same rows in
the same order (hence same multiplicities), and the same provenance
annotations — under all four semirings. Seeded random generators cover
240 pipeline cases; adversarial shapes (empty relations, all-duplicate
rows, no-shared-column joins, single-row tables, unorderable columns)
and the refactored consumers (why-not, aggregate explanations, FD
checks, complaint scopes) each get explicit differential checks, as do
the interval-encoded provenance queries against the ``legacy_*`` DAG
walks and the incrementally maintained indexes against fresh rebuilds.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.db import (
    And,
    Eq,
    FunctionalDependency,
    Not,
    Opaque,
    Query,
    QueryStep,
    Range,
    Relation,
    explain_aggregate,
    legacy_explain_aggregate,
    legacy_scope_from_relation,
    legacy_why_not,
    matching_indices,
    scope_from_relation,
    why_not,
)
from repro.db.index import (
    IntervalIndex,
    ProvenanceDAG,
    legacy_ancestors,
    legacy_descendants,
    legacy_supports,
)
from repro.db.provenance import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    WhySemiring,
)

SEMIRINGS = {
    "boolean": BooleanSemiring,
    "counting": CountingSemiring,
    "why": WhySemiring,
    "lineage": LineageSemiring,
}

COLUMN_POOL = ["a", "b", "c", "d", "e"]
N_SEEDS = 60  # x 4 semirings = 240 randomized pipeline cases


def _random_relation(rng: random.Random, semiring, name: str,
                     columns=None, min_rows: int = 0,
                     max_rows: int = 12) -> Relation:
    if columns is None:
        columns = rng.sample(COLUMN_POOL, rng.randint(1, 3))
    n = rng.randint(min_rows, max_rows)
    rows = [
        tuple(rng.randint(0, 4) for __ in columns) for __ in range(n)
    ]
    return Relation(columns, rows, semiring, name=name)


def _random_predicate(rng: random.Random, columns) -> object:
    column = rng.choice(columns)
    kind = rng.randint(0, 4)
    if kind == 0:
        return Eq(column, rng.randint(0, 4))
    if kind == 1:
        lo, hi = sorted((rng.randint(-1, 5), rng.randint(-1, 5)))
        return Range(column, lo, hi, lo_closed=rng.random() < 0.5,
                     hi_closed=rng.random() < 0.5)
    if kind == 2:
        return Not(_random_predicate(rng, columns))
    if kind == 3:
        other = rng.choice(columns)
        return And(Eq(column, rng.randint(0, 4)),
                   _random_predicate(rng, [other]))
    modulus = rng.randint(1, 3)
    return Opaque(lambda row, c=column, m=modulus: row[c] % (m + 1) == m,
                  f"<{column} custom>")


def _random_pipeline(rng: random.Random, semiring) -> Query:
    base = _random_relation(rng, semiring, "R0")
    query = Query(base)
    schema = list(base.columns)
    for step in range(rng.randint(1, 4)):
        op = rng.randint(0, 3)
        if op == 0:
            query = query.select(_random_predicate(rng, schema))
        elif op == 1:
            keep = rng.sample(schema, rng.randint(1, len(schema)))
            query = query.project(keep)
            schema = keep
        elif op == 2:
            other = _random_relation(rng, semiring, f"S{step}")
            query = query.join(other)
            schema = schema + [c for c in other.columns
                               if c not in schema]
        else:
            other = _random_relation(rng, semiring, f"U{step}",
                                     columns=list(schema))
            query = query.union(other)
    return query


def _assert_equivalent(query: Query, context: str = "") -> None:
    planned = query.execute()
    naive = query.legacy_execute()
    assert planned.columns == naive.columns, context
    assert planned.rows == naive.rows, context
    assert planned.annotations == naive.annotations, context


@pytest.mark.parametrize("semiring_name", sorted(SEMIRINGS))
@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_random_pipelines_match_naive(seed, semiring_name):
    rng = random.Random(1000 * seed + hash(semiring_name) % 1000)
    semiring = SEMIRINGS[semiring_name]()
    query = _random_pipeline(rng, semiring)
    _assert_equivalent(query, f"seed={seed} semiring={semiring_name}")


@pytest.mark.parametrize("semiring_name", sorted(SEMIRINGS))
def test_adversarial_shapes(semiring_name):
    semiring = SEMIRINGS[semiring_name]()
    empty = Relation(["a", "b"], [], semiring, name="empty")
    single = Relation(["a", "b"], [(1, 2)], semiring, name="single")
    dupes = Relation(["a", "b"], [(1, 1)] * 5, semiring, name="dupes")
    disjoint = Relation(["x"], [(1,), (2,)], semiring, name="disjoint")

    _assert_equivalent(Query(empty).select(Eq("a", 1)).join(single))
    _assert_equivalent(Query(single).select(Range("a", 0, 1)).union(single))
    _assert_equivalent(Query(dupes).project(["a"]).join(dupes))
    _assert_equivalent(Query(dupes).union(dupes).select(Not(Eq("a", 1))))
    _assert_equivalent(Query(single).join(disjoint))  # cartesian
    _assert_equivalent(Query(empty).join(empty).project(["a"]))


def test_unorderable_column_falls_back_to_scan():
    # Mixed int/str values: the sort index is unavailable, equality
    # probes still work, and everything stays equivalent.
    semiring = WhySemiring()
    mixed = Relation(["a", "b"], [(1, "x"), ("y", 2), (1, 3)], semiring,
                     name="mixed")
    assert mixed.indexes.sort_index("a") is None
    _assert_equivalent(Query(mixed).select(Eq("a", 1)))
    _assert_equivalent(Query(mixed).select(Not(Eq("b", "x"))))
    assert matching_indices(mixed, Eq("a", 1)) == [0, 2]


def test_kill_switch_disables_indexes(monkeypatch):
    monkeypatch.setenv("REPRO_DB_INDEX", "0")
    semiring = CountingSemiring()
    rng = random.Random(7)
    for __ in range(5):
        _assert_equivalent(_random_pipeline(rng, semiring))
    relation = _random_relation(rng, semiring, "K", min_rows=3)
    plan = Query(relation).select(Eq(relation.columns[0], 1)).explain_plan()
    assert "filter scan" in plan and "index" not in plan


@pytest.mark.parametrize("seed", range(20))
def test_matching_indices_matches_scan(seed):
    rng = random.Random(seed)
    relation = _random_relation(rng, WhySemiring(), "M", max_rows=20)
    predicate = _random_predicate(rng, relation.columns)
    cols = relation.columns
    naive = [
        i for i, row in enumerate(relation.rows)
        if predicate(dict(zip(cols, row)))
    ]  # db: allow — this *is* the oracle scan
    assert matching_indices(relation, predicate) == naive


# -- refactored consumers vs their legacy_* oracles ----------------------------


@pytest.mark.parametrize("seed", range(10))
def test_why_not_matches_legacy(seed):
    rng = random.Random(seed)
    source = _random_relation(rng, WhySemiring(), "src", min_rows=2,
                              max_rows=10)
    other = _random_relation(rng, WhySemiring(), "dim")
    filter_col = rng.choice(source.columns)
    steps = [
        QueryStep.select("keep-low", lambda t: t[filter_col] <= 3),
        QueryStep.join("dim-join", other),
        QueryStep.project("final", [source.columns[0]]),
    ]
    predicate = Eq(source.columns[0], source.rows[0][0])
    assert why_not(source, steps, predicate) == \
        legacy_why_not(source, steps, predicate)


def test_explain_aggregate_matches_legacy():
    rng = random.Random(3)
    rows = [(rng.randint(0, 3), rng.randint(0, 100)) for __ in range(40)]
    relation = Relation(["grp", "score"], rows, name="facts")
    query = lambda r: sum(t[1] for t in r.rows)  # db: allow — aggregate
    fast = explain_aggregate(relation, query, use_conjunctions=True)
    slow = legacy_explain_aggregate(relation, query, use_conjunctions=True)
    assert len(fast) == len(slow)
    for a, b in zip(fast, slow):
        assert a.description == b.description
        assert a.n_removed == b.n_removed
        assert a.original == b.original
        assert a.after_removal == b.after_removal
        assert a.score == b.score


@pytest.mark.parametrize("seed", range(10))
def test_fd_checks_match_legacy(seed):
    rng = random.Random(seed)
    relation = _random_relation(rng, WhySemiring(), "fd",
                                columns=["a", "b", "c"], max_rows=20)
    fd = FunctionalDependency(lhs=("a",), rhs=("b",))
    assert fd.violations(relation) == fd.legacy_violations(relation)
    assert fd.violating_tuples(relation) == \
        fd.legacy_violating_tuples(relation)


@pytest.mark.parametrize("seed", range(10))
def test_scope_from_relation_matches_legacy(seed):
    rng = random.Random(seed)
    relation = _random_relation(rng, WhySemiring(), "serve", min_rows=1)
    predicate = _random_predicate(rng, relation.columns)
    assert np.array_equal(
        scope_from_relation(relation, predicate),
        legacy_scope_from_relation(relation, predicate),
    )


# -- interval-encoded provenance vs naive DAG walks ----------------------------


def _random_dag(rng: random.Random) -> ProvenanceDAG:
    dag = ProvenanceDAG()
    n_base = rng.randint(1, 10)
    for i in range(n_base):
        dag.add_node(("b", i))
    pool = [("b", i) for i in range(n_base)]
    for i in range(rng.randint(0, 5)):
        kids = rng.sample(pool, rng.randint(1, min(3, len(pool))))
        dag.add_node(("m", i), kids)
        pool.append(("m", i))
    for i in range(rng.randint(1, 4)):
        kids = rng.sample(pool, rng.randint(1, min(4, len(pool))))
        dag.add_node(("o", i), kids)
    return dag


@pytest.mark.parametrize("seed", range(30))
def test_interval_queries_match_naive_walks(seed):
    rng = random.Random(seed)
    dag = _random_dag(rng)
    index = IntervalIndex(dag)
    for node in dag.nodes:
        assert index.descendants(node) == legacy_descendants(dag, node)
        assert index.ancestors(node) == legacy_ancestors(dag, node)
        assert sorted(index.supports(node), key=repr) == \
            sorted(legacy_supports(dag, node), key=repr)


@pytest.mark.parametrize("seed", range(15))
def test_interval_incremental_maintenance(seed):
    rng = random.Random(seed)
    dag = _random_dag(rng)
    index = IntervalIndex(dag)
    parents = [n for n in dag.nodes if not dag.is_leaf(n)]
    for step in range(6):
        if parents and rng.random() < 0.6:
            parent = rng.choice(parents)
            index.insert_leaf(parent, ("new", step))
            assert ("new", step) in index.descendants(parent)
        else:
            leaves = [n for n in dag.nodes if dag.is_leaf(n)]
            if not leaves:
                continue
            index.delete_leaf(rng.choice(leaves))
        parents = [n for n in dag.nodes if not dag.is_leaf(n)]
        # after every single-tuple change, still equivalent to a walk
        # of the mutated DAG — without having rebuilt the index
        for node in dag.nodes:
            assert index.descendants(node) == legacy_descendants(dag, node)
            assert sorted(index.supports(node), key=repr) == \
                sorted(legacy_supports(dag, node), key=repr)


def test_gap_exhaustion_renumbers_transparently():
    dag = ProvenanceDAG()
    dag.add_node("root", [])
    index = IntervalIndex(dag)
    for k in range(120):  # far past float gap exhaustion per parent
        index.insert_leaf("root", f"leaf{k}")
    assert index.descendants("root") == legacy_descendants(dag, "root")


# -- relational index maintenance vs fresh rebuild -----------------------------


@pytest.mark.parametrize("seed", range(10))
def test_relation_index_maintenance_matches_rebuild(seed):
    rng = random.Random(seed)
    relation = _random_relation(rng, CountingSemiring(), "mut",
                                columns=["a", "b"], min_rows=3,
                                max_rows=15)
    hash_index = relation.indexes.hash_index(("a",))
    sort_index = relation.indexes.sort_index("b")
    for __ in range(8):
        if rng.random() < 0.5 and len(relation) > 1:
            relation.delete(rng.randrange(len(relation)))
        else:
            relation.insert((rng.randint(0, 4), rng.randint(0, 4)))
        fresh = relation.subset(range(len(relation)))
        for value in range(5):
            assert hash_index.lookup((value,)) == \
                fresh.indexes.hash_index(("a",)).lookup((value,))
            assert sort_index.range_ids(value - 1, value) == \
                fresh.indexes.sort_index("b").range_ids(value - 1, value)
