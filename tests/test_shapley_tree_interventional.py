"""Tests for interventional (background-based) TreeSHAP."""

import numpy as np
import pytest

from repro.core.sampling import MaskingSampler
from repro.datasets import make_classification
from repro.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from repro.shapley import (
    InterventionalTreeShapExplainer,
    TreeShapExplainer,
    exact_shapley,
)


@pytest.fixture(scope="module")
def data():
    return make_classification(300, n_features=6, seed=33)


def reference_values(model_fn, x, background, n):
    sampler = MaskingSampler(background, max_background=background.shape[0])
    return exact_shapley(sampler.value_function(model_fn, x), n)


class TestExactness:
    def test_classifier_tree(self, data):
        tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(data.X, data.y)
        background = data.X[:15]
        explainer = InterventionalTreeShapExplainer(tree, background)
        for i in (0, 9, 33):
            att = explainer.explain(data.X[i])
            ref = reference_values(
                lambda X: tree.predict_proba(X)[:, 1],
                data.X[i], background, 6,
            )
            assert np.allclose(att.values, ref, atol=1e-10)

    def test_regressor_tree(self, data):
        y = data.X[:, 0] * 2 - data.X[:, 2]
        tree = DecisionTreeRegressor(max_depth=5).fit(data.X, y)
        background = data.X[:10]
        explainer = InterventionalTreeShapExplainer(tree, background)
        att = explainer.explain(data.X[3])
        ref = reference_values(tree.predict, data.X[3], background, 6)
        assert np.allclose(att.values, ref, atol=1e-10)

    def test_gbm_raw_scores(self, data):
        gbm = GradientBoostingClassifier(
            n_estimators=8, max_depth=3, seed=0
        ).fit(data.X, data.y)
        background = data.X[:10]
        explainer = InterventionalTreeShapExplainer(gbm, background)
        att = explainer.explain(data.X[5])
        ref = reference_values(
            gbm.decision_function, data.X[5], background, 6
        )
        assert np.allclose(att.values, ref, atol=1e-10)

    def test_forest(self, data):
        forest = RandomForestClassifier(
            n_estimators=4, max_depth=4, seed=0
        ).fit(data.X, data.y)
        background = data.X[:8]
        explainer = InterventionalTreeShapExplainer(forest, background)
        att = explainer.explain(data.X[0])
        ref = reference_values(
            lambda X: forest.predict_proba(X)[:, 1],
            data.X[0], background, 6,
        )
        assert np.allclose(att.values, ref, atol=1e-10)


class TestProperties:
    def test_additivity(self, data):
        tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(data.X, data.y)
        explainer = InterventionalTreeShapExplainer(tree, data.X[:25])
        for i in range(5):
            assert explainer.explain(data.X[i]).additivity_gap() < 1e-10

    def test_background_subsampling(self, data):
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(data.X, data.y)
        explainer = InterventionalTreeShapExplainer(
            tree, data.X, max_background=10, seed=0
        )
        assert explainer.background.shape[0] == 10

    def test_single_background_row_is_baseline_shap(self, data):
        """With one background row z, efficiency reads f(x) − f(z)."""
        tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(data.X, data.y)
        z = data.X[10:11]
        explainer = InterventionalTreeShapExplainer(tree, z)
        att = explainer.explain(data.X[0])
        f_x = tree.predict_proba(data.X[:1])[0, 1]
        f_z = tree.predict_proba(z)[0, 1]
        assert att.values.sum() == pytest.approx(f_x - f_z, abs=1e-10)

    def test_differs_from_path_dependent_under_correlation(self):
        """The two TreeSHAP variants answer different games: on strongly
        correlated features the path-dependent values generally differ."""
        from repro.datasets import make_correlated_gaussian

        X = make_correlated_gaussian(500, n_features=3, rho=0.9, seed=5)
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(X, y)
        x = X[0]
        path_dep = TreeShapExplainer(tree).explain(x)
        interventional = InterventionalTreeShapExplainer(
            tree, X[:30]
        ).explain(x)
        # both satisfy their own efficiency...
        assert path_dep.additivity_gap() < 1e-9
        assert interventional.additivity_gap() < 1e-9
        # ...but are not the same attribution in general.
        assert not np.allclose(
            path_dep.values, interventional.values, atol=1e-3
        )
