"""Tests for MMD-critic prototypes and criticisms."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.prototypes import (
    PrototypeClassifier,
    mmd_squared,
    rbf_kernel,
    select_criticisms,
    select_prototypes,
)


@pytest.fixture(scope="module")
def clusters():
    """Three well-separated Gaussian clusters + a handful of outliers."""
    rng = np.random.default_rng(3)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    X = np.vstack([
        rng.normal(0, 0.5, (60, 2)) + center for center in centers
    ])
    outliers = np.array([[12.0, 12.0], [-8.0, 3.0]])
    return np.vstack([X, outliers]), outliers


class TestKernelAndMMD:
    def test_kernel_properties(self, clusters):
        X, __ = clusters
        K = rbf_kernel(X, X)
        assert np.allclose(np.diag(K), 1.0)
        assert np.allclose(K, K.T)
        assert np.all((K >= 0) & (K <= 1))

    def test_mmd_zero_for_full_set(self, clusters):
        X, __ = clusters
        assert mmd_squared(X, np.arange(X.shape[0])) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_mmd_positive_for_bad_subset(self, clusters):
        X, __ = clusters
        # prototypes from a single cluster misrepresent the data
        assert mmd_squared(X, np.arange(5)) > 0.01

    def test_empty_prototype_set_rejected(self, clusters):
        X, __ = clusters
        with pytest.raises(ValueError):
            mmd_squared(X, np.array([], dtype=int))


class TestSelection:
    def test_prototypes_cover_all_clusters(self, clusters):
        X, __ = clusters
        idx = select_prototypes(X, 3)
        clusters_hit = {int(i // 60) for i in idx if i < 180}
        assert clusters_hit == {0, 1, 2}

    def test_greedy_decreases_mmd(self, clusters):
        X, __ = clusters
        idx = select_prototypes(X, 8)
        mmds = [
            mmd_squared(X, idx[: k + 1]) for k in range(len(idx))
        ]
        # non-strictly decreasing overall trend: final ≪ first
        assert mmds[-1] < mmds[0] * 0.5

    def test_prototypes_beat_random_subsets(self, clusters, rng):
        X, __ = clusters
        idx = select_prototypes(X, 5)
        greedy_mmd = mmd_squared(X, idx)
        random_mmds = [
            mmd_squared(X, rng.choice(X.shape[0], 5, replace=False))
            for __ in range(20)
        ]
        assert greedy_mmd <= np.median(random_mmds)

    def test_criticisms_are_atypical_relative_to_prototypes(self, clusters):
        # Criticisms mark where the prototype summary misrepresents the
        # data: they must sit much farther from their nearest prototype
        # than a typical point does.
        X, __ = clusters
        prototypes = select_prototypes(X, 6)
        criticisms = select_criticisms(X, prototypes, 5)
        P = X[prototypes]

        def nearest_prototype_distance(x):
            return float(np.min(np.linalg.norm(P - x, axis=1)))

        criticism_dist = np.mean([
            nearest_prototype_distance(X[i]) for i in criticisms
        ])
        population_dist = np.mean([
            nearest_prototype_distance(x) for x in X
        ])
        assert criticism_dist > 1.5 * population_dist

    def test_criticisms_exclude_prototypes(self, clusters):
        X, __ = clusters
        prototypes = select_prototypes(X, 6)
        criticisms = select_criticisms(X, prototypes, 10)
        assert not set(criticisms.tolist()) & set(prototypes.tolist())

    def test_bounds_validation(self, clusters):
        X, __ = clusters
        with pytest.raises(ValueError):
            select_prototypes(X, 0)
        with pytest.raises(ValueError):
            select_prototypes(X, X.shape[0] + 1)


class TestPrototypeClassifier:
    def test_near_model_accuracy_with_few_prototypes(self):
        data = make_classification(400, n_features=4, class_sep=2.5, seed=5)
        clf = PrototypeClassifier(n_prototypes_per_class=5).fit(
            data.X, data.y
        )
        assert clf.score(data.X, data.y) > 0.8
        # the summary is tiny relative to the data
        assert len(clf.prototypes_) == 10

    def test_more_prototypes_do_not_hurt_much(self):
        data = make_classification(400, n_features=4, class_sep=2.0, seed=6)
        small = PrototypeClassifier(3).fit(data.X, data.y).score(data.X, data.y)
        large = PrototypeClassifier(15).fit(data.X, data.y).score(data.X, data.y)
        assert large >= small - 0.05
