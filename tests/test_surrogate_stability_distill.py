"""Tests for LIME stability indices and global tree distillation."""

import numpy as np
import pytest

from repro.core.explanation import FeatureAttribution
from repro.surrogate import TreeDistiller, csi, stability_report, vsi


def fake_runs(value_sets):
    return [
        FeatureAttribution(np.asarray(values, dtype=float),
                           [f"f{i}" for i in range(len(values))])
        for values in value_sets
    ]


class TestVSI:
    def test_identical_runs_are_perfectly_stable(self):
        runs = fake_runs([[3.0, 2.0, 1.0, 0.0]] * 4)
        assert vsi(runs, top_k=2) == 1.0

    def test_disjoint_selections_are_unstable(self):
        runs = fake_runs([[5.0, 4.0, 0.0, 0.0], [0.0, 0.0, 5.0, 4.0]])
        assert vsi(runs, top_k=2) == 0.0

    def test_partial_overlap(self):
        runs = fake_runs([[5.0, 4.0, 0.1, 0.0], [5.0, 0.1, 4.0, 0.0]])
        # top-2 sets {0,1} and {0,2}: Jaccard 1/3.
        assert vsi(runs, top_k=2) == pytest.approx(1 / 3)

    def test_needs_two_runs(self):
        with pytest.raises(ValueError):
            vsi(fake_runs([[1.0]]))


class TestCSI:
    def test_tight_coefficients_stable(self):
        runs = fake_runs([[1.0, 2.0], [1.01, 2.01], [0.99, 1.99]])
        assert csi(runs, top_k=2) == 1.0

    def test_outlier_run_reduces_csi(self):
        runs = fake_runs([[1.0, 2.0]] * 5 + [[50.0, 2.0]])
        assert csi(runs, top_k=2) < 1.0


def test_stability_report_on_real_lime(loan_data, loan_logistic):
    from repro.surrogate import LimeTabularExplainer

    lime = LimeTabularExplainer(loan_logistic, loan_data, n_samples=300)
    report = stability_report(lime, loan_data.X[0], n_runs=4, top_k=3)
    assert set(report) == {"vsi", "csi", "mean_fidelity"}
    assert 0.0 <= report["vsi"] <= 1.0
    assert 0.0 <= report["csi"] <= 1.0


def test_more_samples_do_not_reduce_stability(loan_data, loan_logistic):
    from repro.surrogate import LimeTabularExplainer

    small = LimeTabularExplainer(loan_logistic, loan_data, n_samples=100)
    large = LimeTabularExplainer(loan_logistic, loan_data, n_samples=2000)
    x = loan_data.X[3]
    vsi_small = stability_report(small, x, n_runs=5, top_k=3)["vsi"]
    vsi_large = stability_report(large, x, n_runs=5, top_k=3)["vsi"]
    assert vsi_large >= vsi_small - 0.15  # allow noise, expect improvement


class TestTreeDistiller:
    def test_high_fidelity_on_tree_like_black_box(self, loan_data, loan_gbm):
        distiller = TreeDistiller(loan_gbm, max_depth=4)
        distiller.fit(loan_data.X)
        assert distiller.fidelity(loan_data.X) > 0.85
        assert distiller.n_leaves <= 2 ** 4

    def test_depth_trades_fidelity(self, loan_data, loan_gbm):
        shallow = TreeDistiller(loan_gbm, max_depth=1).fit(loan_data.X)
        deep = TreeDistiller(loan_gbm, max_depth=5).fit(loan_data.X)
        assert deep.fidelity(loan_data.X) >= shallow.fidelity(loan_data.X)

    def test_regression_mode(self, loan_data, loan_gbm):
        distiller = TreeDistiller(loan_gbm, max_depth=4, task="regression")
        distiller.fit(loan_data.X)
        assert distiller.fidelity(loan_data.X) > 0.5

    def test_fidelity_before_fit_raises(self, loan_gbm, loan_data):
        with pytest.raises(RuntimeError):
            TreeDistiller(loan_gbm).fidelity(loan_data.X)

    def test_unknown_task_rejected(self, loan_gbm):
        with pytest.raises(ValueError):
            TreeDistiller(loan_gbm, task="clustering")
