"""Tests for LIME (tabular and text) and the weighted-regression core."""

import numpy as np
import pytest

from repro.surrogate import (
    LimeTabularExplainer,
    LimeTextExplainer,
    forward_select,
    weighted_ridge,
)


class TestWeightedRidge:
    def test_recovers_exact_fit_with_uniform_weights(self, rng):
        Z = rng.normal(0, 1, (100, 3))
        coef_true = np.array([1.0, -2.0, 0.5])
        y = Z @ coef_true + 4.0
        coef, intercept = weighted_ridge(Z, y, np.ones(100), alpha=1e-8)
        assert np.allclose(coef, coef_true, atol=1e-5)
        assert intercept == pytest.approx(4.0, abs=1e-5)

    def test_weights_focus_the_fit(self, rng):
        # Two regimes; heavy weights on the first should recover its slope.
        Z = np.linspace(-1, 1, 200)[:, None]
        y = np.where(Z[:, 0] < 0, 2.0 * Z[:, 0], -1.0 * Z[:, 0])
        w = np.where(Z[:, 0] < 0, 100.0, 0.01)
        coef, __ = weighted_ridge(Z, y, w, alpha=1e-6)
        assert coef[0] == pytest.approx(2.0, abs=0.05)


def test_forward_select_finds_informative_columns(rng):
    Z = rng.normal(0, 1, (300, 6))
    y = 3.0 * Z[:, 1] + 2.0 * Z[:, 4] + rng.normal(0, 0.1, 300)
    chosen = forward_select(Z, y, np.ones(300), n_select=2)
    assert set(chosen) == {1, 4}


class TestLimeTabular:
    def test_keep_coefficient_sign_tracks_feature_value(
        self, loan_data, loan_logistic
    ):
        # LIME's coefficient on the binary "kept" indicator is positive
        # when keeping the value helps the prediction: a high credit
        # score should get a positive coefficient, a low one negative.
        lime = LimeTabularExplainer(
            loan_logistic, loan_data, n_samples=1500, seed=0
        )
        j = loan_data.feature_index("credit_score")
        scores = loan_data.X[:, j]
        hi = int(np.argmax(scores))
        lo = int(np.argmin(scores))
        att_hi = lime.explain(loan_data.X[hi])
        att_lo = lime.explain(loan_data.X[lo])
        assert att_hi.values[j] > 0
        assert att_lo.values[j] < 0
        assert att_hi.feature_names == loan_data.feature_names
        assert 0.0 <= att_hi.meta["fidelity_r2"] <= 1.0

    def test_sparse_explanation_respects_budget(self, loan_data, loan_logistic):
        lime = LimeTabularExplainer(
            loan_logistic, loan_data, n_samples=400, n_select=3, seed=0
        )
        att = lime.explain(loan_data.X[1])
        assert np.count_nonzero(att.values) <= 3
        assert len(att.meta["selected"]) == 3

    def test_seed_controls_reproducibility(self, loan_data, loan_logistic):
        lime = LimeTabularExplainer(loan_logistic, loan_data, n_samples=300)
        a = lime.explain(loan_data.X[0], seed=5)
        b = lime.explain(loan_data.X[0], seed=5)
        c = lime.explain(loan_data.X[0], seed=6)
        assert np.allclose(a.values, b.values)
        assert not np.allclose(a.values, c.values)


class TestLimeText:
    @staticmethod
    def keyword_model(docs):
        # Score = presence of the word "good" minus presence of "bad".
        return np.array([
            1.0 * ("good" in d.split()) - 1.0 * ("bad" in d.split()) + 0.5
            for d in docs
        ])

    def test_attributes_to_cue_words(self):
        explainer = LimeTextExplainer(self.keyword_model, n_samples=300, seed=0)
        att = explainer.explain("the movie was good but the plot was bad")
        scores = att.as_dict()
        assert scores["good"] > 0.5
        assert scores["bad"] < -0.5
        assert abs(scores["movie"]) < 0.2

    def test_empty_document_rejected(self):
        explainer = LimeTextExplainer(self.keyword_model)
        with pytest.raises(ValueError):
            explainer.explain("")

    def test_vocabulary_is_distinct_words(self):
        explainer = LimeTextExplainer(self.keyword_model, n_samples=50, seed=0)
        att = explainer.explain("spam spam spam good")
        assert sorted(att.feature_names) == ["good", "spam"]
