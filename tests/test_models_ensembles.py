"""Tests for random forest and gradient boosting."""

import numpy as np
import pytest

from repro.datasets import make_classification, make_xor
from repro.models import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
)


class TestRandomForest:
    def test_beats_or_matches_single_stump_on_xor(self):
        data = make_xor(400, noise=0.05, seed=1)
        stump = DecisionTreeClassifier(max_depth=1).fit(data.X, data.y)
        forest = RandomForestClassifier(
            n_estimators=30, max_depth=5, seed=0
        ).fit(data.X, data.y)
        assert forest.score(data.X, data.y) > stump.score(data.X, data.y)

    def test_probabilities_are_tree_averages(self):
        data = make_classification(200, seed=2)
        forest = RandomForestClassifier(n_estimators=10, max_depth=3, seed=0)
        forest.fit(data.X, data.y)
        proba = forest.predict_proba(data.X[:5])
        assert np.allclose(proba.sum(axis=1), 1.0)
        manual = np.mean(
            [t.predict_proba(data.X[:5]) for t in forest.estimators_], axis=0
        )
        assert np.allclose(proba, manual)

    def test_deterministic_given_seed(self):
        data = make_classification(150, seed=3)
        a = RandomForestClassifier(n_estimators=5, seed=42).fit(data.X, data.y)
        b = RandomForestClassifier(n_estimators=5, seed=42).fit(data.X, data.y)
        assert np.allclose(a.predict_proba(data.X), b.predict_proba(data.X))

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)


class TestGradientBoosting:
    def test_classifier_improves_with_stages(self):
        data = make_classification(400, seed=4, class_sep=1.0)
        weak = GradientBoostingClassifier(n_estimators=2, max_depth=2, seed=0)
        strong = GradientBoostingClassifier(n_estimators=60, max_depth=2, seed=0)
        assert (
            strong.fit(data.X, data.y).score(data.X, data.y)
            >= weak.fit(data.X, data.y).score(data.X, data.y)
        )

    def test_decision_function_is_staged_sum(self):
        data = make_classification(150, seed=5)
        gbm = GradientBoostingClassifier(n_estimators=8, max_depth=2, seed=0)
        gbm.fit(data.X, data.y)
        raw = np.full(10, gbm.init_raw_)
        for tree in gbm.estimators_:
            raw += gbm.learning_rate * tree.predict(data.X[:10])
        assert np.allclose(raw, gbm.decision_function(data.X[:10]))

    def test_staged_predictions_converge_to_final(self):
        data = make_classification(150, seed=6)
        gbm = GradientBoostingClassifier(n_estimators=5, max_depth=2, seed=0)
        gbm.fit(data.X, data.y)
        stages = list(gbm.staged_raw_predict(data.X[:4]))
        assert len(stages) == 5
        assert np.allclose(stages[-1], gbm.decision_function(data.X[:4]))

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(
                np.zeros((6, 1)), np.array([0, 1, 2, 0, 1, 2])
            )

    def test_subsample_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)

    def test_regressor_fits_smooth_function(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(0, 1, (300, 1))
        y = np.sin(6 * X[:, 0])
        gbm = GradientBoostingRegressor(n_estimators=80, max_depth=3, seed=0)
        assert gbm.fit(X, y).score(X, y) > 0.95

    def test_newton_leaf_values_match_formula(self):
        # With a single depth-0 stage the leaf value must be Σg/(Σh+λ).
        data = make_classification(100, seed=8)
        gbm = GradientBoostingClassifier(
            n_estimators=1, max_depth=0, learning_rate=1.0, seed=0
        ).fit(data.X, data.y)
        from repro.models.logistic import sigmoid

        t = (data.y == gbm.classes_[1]).astype(float)
        p0 = sigmoid(np.full(len(t), gbm.init_raw_))
        expected = (t - p0).sum() / ((p0 * (1 - p0)).sum() + gbm.leaf_l2)
        assert gbm.estimators_[0].tree_.value[0][0] == pytest.approx(expected)
