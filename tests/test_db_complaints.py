"""Tests for complaint-driven training-data debugging (Rain-style)."""

import numpy as np
import pytest

from repro.datasets import make_loan_dataset
from repro.db import Complaint, ComplaintDebugger
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split


@pytest.fixture(scope="module")
def debug_setup():
    data = make_loan_dataset(500, seed=81)
    # Corrupt a slice of labels to create something worth complaining about.
    rng = np.random.default_rng(3)
    corrupted = rng.choice(data.n_samples, size=50, replace=False)
    y = data.y.copy()
    y[corrupted] = 1 - y[corrupted]
    X_train, X_serve, y_train, __ = train_test_split(
        data.X, y, test_size=0.3, seed=0
    )
    model = LogisticRegression(alpha=1.0).fit(X_train, y_train)
    debugger = ComplaintDebugger(model, X_train, y_train, X_serve)
    return debugger, X_serve


def test_complaint_validation():
    with pytest.raises(ValueError):
        Complaint(scope=np.ones(3, dtype=bool), direction="diagonal")


def test_aggregate_hard_vs_relaxed(debug_setup):
    debugger, X_serve = debug_setup
    complaint = Complaint(scope=np.ones(X_serve.shape[0], dtype=bool))
    hard = debugger.aggregate(complaint)
    relaxed = debugger.aggregate(complaint, relaxed=True)
    assert hard == int(hard)
    assert abs(hard - relaxed) < X_serve.shape[0] * 0.5


def test_ranking_moves_aggregate_in_complained_direction(debug_setup):
    debugger, X_serve = debug_setup
    scope = X_serve[:, 1] == 1.0
    complaint = Complaint(scope=scope, direction="lower")
    ranking = debugger.rank_training_points(complaint)
    fix = debugger.fix_rate(
        complaint, ranking, k=25,
        model_factory=lambda: LogisticRegression(alpha=1.0),
    )
    assert fix["movement"] >= 0
    assert fix["after"] <= fix["before"]


def test_influence_ranking_beats_random(debug_setup, rng):
    debugger, X_serve = debug_setup
    scope = np.ones(X_serve.shape[0], dtype=bool)
    complaint = Complaint(scope=scope, direction="lower")
    ranking = debugger.rank_training_points(complaint)
    guided = debugger.fix_rate(
        complaint, ranking, k=30,
        model_factory=lambda: LogisticRegression(alpha=1.0),
    )
    random_movements = []
    for __ in range(5):
        random_ranking = rng.permutation(len(ranking))
        random_fix = debugger.fix_rate(
            complaint, random_ranking, k=30,
            model_factory=lambda: LogisticRegression(alpha=1.0),
        )
        random_movements.append(random_fix["movement"])
    assert guided["movement"] > np.mean(random_movements)


def test_higher_direction_reverses_ranking(debug_setup):
    debugger, X_serve = debug_setup
    scope = np.ones(X_serve.shape[0], dtype=bool)
    lower = debugger.rank_training_points(Complaint(scope, "lower"))
    higher = debugger.rank_training_points(Complaint(scope, "higher"))
    assert lower[0] == higher[-1]
