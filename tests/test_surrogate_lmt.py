"""Tests for the linear-model-tree surrogate."""

import numpy as np
import pytest

from repro.surrogate import LinearModelTree


@pytest.fixture(scope="module")
def piecewise_setup(rng_module=None):
    """A black box with two linear regimes split on feature 0."""
    rng = np.random.default_rng(11)
    X = rng.uniform(-2, 2, (600, 3))

    def model(Z):
        left = 3.0 * Z[:, 1] + 1.0
        right = -2.0 * Z[:, 2] + 5.0
        return np.where(Z[:, 0] <= 0.0, left, right)

    return X, model


def test_recovers_regime_structure(piecewise_setup):
    X, model = piecewise_setup
    lmt = LinearModelTree(model, max_depth=1).fit(X)
    assert lmt.n_contexts == 2
    assert lmt.fidelity(X) > 0.98


def test_local_coefficients_match_active_regime(piecewise_setup):
    X, model = piecewise_setup
    lmt = LinearModelTree(model, max_depth=1, alpha=1e-6).fit(X)
    left_instance = np.array([-1.0, 0.5, 0.5])
    right_instance = np.array([1.0, 0.5, 0.5])
    left = lmt.explain(left_instance)
    right = lmt.explain(right_instance)
    assert left.values[1] == pytest.approx(3.0, abs=0.1)
    assert abs(left.values[2]) < 0.1
    assert right.values[2] == pytest.approx(-2.0, abs=0.1)
    assert abs(right.values[1]) < 0.1
    assert left.meta["leaf"] != right.meta["leaf"]


def test_context_rule_describes_the_region(piecewise_setup):
    X, model = piecewise_setup
    lmt = LinearModelTree(model, max_depth=1).fit(X)
    rule = lmt.context_of(np.array([-1.0, 0.0, 0.0]),
                          feature_names=["a", "b", "c"])
    assert len(rule) == 1
    assert rule.predicates[0].feature == 0
    assert rule.predicates[0].op == "<="


def test_beats_single_linear_surrogate(piecewise_setup):
    X, model = piecewise_setup
    flat = LinearModelTree(model, max_depth=0).fit(X)
    deep = LinearModelTree(model, max_depth=2).fit(X)
    assert deep.fidelity(X) > flat.fidelity(X)


def test_surrogate_predict_composes_leaves(piecewise_setup):
    X, model = piecewise_setup
    lmt = LinearModelTree(model, max_depth=1).fit(X)
    predictions = lmt.surrogate_predict(X[:50])
    assert predictions.shape == (50,)
    assert np.corrcoef(predictions, model(X[:50]))[0, 1] > 0.99


def test_unfitted_raises(piecewise_setup):
    X, model = piecewise_setup
    with pytest.raises(RuntimeError):
        LinearModelTree(model).explain(X[0])


def test_constant_black_box_handled():
    X = np.random.default_rng(0).normal(0, 1, (100, 2))
    lmt = LinearModelTree(lambda Z: np.full(len(Z), 0.7), max_depth=2).fit(X)
    assert lmt.n_contexts == 1
    att = lmt.explain(X[0])
    assert np.allclose(att.values, 0.0)
    assert att.base_value == pytest.approx(0.7)
